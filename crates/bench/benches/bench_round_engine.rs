//! Bench target for the layered round engine itself: the same workload
//! (the paper's full algorithm at C = 64, n = 2¹², |A| = 500) driven
//! through each execution path, so the cost of the observation layer is
//! visible in isolation:
//!
//! * `run/full_report` — the default path: metrics on, full [`RunReport`];
//! * `run_summary/no_observers` — metrics off, cheap [`RunSummary`] only;
//! * `run/trace_channels` — per-round channel outcomes recorded too.

use contention::{FullAlgorithm, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use mac_sim::{Engine, SimConfig, TraceLevel};
use std::hint::black_box;

const C: u32 = 64;
const N: u64 = 1 << 12;
const ACTIVE: usize = 500;

fn engine(config: SimConfig) -> Engine<FullAlgorithm> {
    let mut engine = Engine::new(config);
    for _ in 0..ACTIVE {
        engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
    }
    engine
}

fn bench_round_engine(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("round_engine(C=64,n=2^12,|A|=500)");
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("run/full_report", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.bench_function("run_summary/no_observers", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .max_rounds(10_000_000)
                .record_metrics(false);
            let mut eng = engine(cfg);
            black_box(eng.run_summary().expect("solves").solved_round)
        });
    });

    group.bench_function("run/trace_channels", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .max_rounds(10_000_000)
                .trace_level(TraceLevel::Channels);
            let mut eng = engine(cfg);
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_round_engine);
criterion_main!(benches);
