//! Bench target for the layered round engine itself: the same workload
//! (the paper's full algorithm at C = 64, n = 2¹², |A| = 500) driven
//! through each execution path, so the cost of the observation layer is
//! visible in isolation:
//!
//! * `run/full_report` — the default path: metrics on, full [`RunReport`];
//! * `run_summary/no_observers` — metrics off, cheap [`RunSummary`] only;
//! * `run/traffic_stream` — the dynamic-arrivals driver
//!   ([`mac_sim::run_traffic`]): a Poisson packet stream injected
//!   incrementally, continuous delivery, latency histogram recorded;
//! * `run/trace_channels` — per-round channel outcomes recorded too;
//! * `run/recorder_attached` — a [`mac_sim::obs::RunRecorder`] span-model
//!   sink riding along, quantifying the structured-telemetry overhead;
//! * `run/metrics_hub` — a [`mac_sim::TelemetrySink`] tallying the
//!   live-metrics counters and flushing into a [`mac_sim::MetricsHub`]
//!   shard per run, pricing the hub's whole hot path against
//!   `run/full_report`;
//! * `run/supervised_wrapper` — the same fleet wrapped in
//!   [`contention::Supervised`] restart-with-backoff supervision on a
//!   clean channel, pricing the wrapper on the fault-free path (where it
//!   never fires — see docs/ROBUSTNESS.md).
//!
//! A second group prices the sparse regime the active-set scheduler
//! exists for (same workload, namespace n = 2²⁰, |A| = 500):
//!
//! * `run/sparse_population` — the intended path: a
//!   [`mac_sim::SparsePopulation`] materializes only the 500 active
//!   slots;
//! * `ab/active_set` — the same ensemble with all 2²⁰ slots materialized
//!   (499 500 never-waking fillers), isolating what the agenda-driven
//!   scheduler saves once slots exist;
//! * `ab/dense_reference` — the identical materialized population on
//!   [`mac_sim::dense::DenseEngine`], the all-slots-scanned reference
//!   scheduler. `ab/active_set ÷ ab/dense_reference` is the scheduler
//!   A/B at equal memory; `run/sparse_population ÷ ab/dense_reference`
//!   is the end-to-end win of the sparse path.
//!
//! Unlike the other benches this one has a custom `main`: after the runs
//! it exports the measurements as schema-versioned JSONL
//! (`BENCH_round_engine.json` at the workspace root — `kind: "bench"`
//! records, diffable with `obsdiff`).

use contention::{
    supervised_paper_node, FullAlgorithm, Params, PhaseProtocol, RestartPolicy,
    SupervisedPaperStack,
};
use criterion::{criterion_group, take_results, Criterion};
use mac_sim::dense::DenseEngine;
use mac_sim::obs::{Json, RunRecorder, SCHEMA_VERSION};
use mac_sim::{
    run_traffic, Action, ArrivalProcess, BackoffMac, CdMode, ChannelId, Engine, Feedback,
    MetricsHub, Protocol, RoundContext, SimConfig, SparsePopulation, Status, TelemetrySink,
    TraceLevel, TrafficSpec,
};
use rand::rngs::SmallRng;
use std::hint::black_box;

const C: u32 = 64;
const N: u64 = 1 << 12;
const ACTIVE: usize = 500;

/// The sparse-regime namespace: 2²⁰ identities, |A| = 500 of them awake.
const N_SPARSE: u64 = 1 << 20;

fn engine(config: SimConfig) -> Engine<FullAlgorithm> {
    let mut engine = Engine::new(config);
    for _ in 0..ACTIVE {
        engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
    }
    engine
}

fn supervised_engine(config: SimConfig) -> Engine<PhaseProtocol<SupervisedPaperStack>> {
    let mut engine = Engine::new(config);
    for _ in 0..ACTIVE {
        engine.add_node(supervised_paper_node(
            Params::practical(),
            C,
            N,
            RestartPolicy::new(2_500_000, 4),
        ));
    }
    engine
}

fn bench_round_engine(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("round_engine(C=64,n=2^12,|A|=500)");
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("run/full_report", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.bench_function("run_summary/no_observers", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .max_rounds(10_000_000)
                .record_metrics(false);
            let mut eng = engine(cfg);
            black_box(eng.run_summary().expect("solves").solved_round)
        });
    });

    group.bench_function("run/traffic_stream", |b| {
        // The dynamic-arrivals driver: a Poisson packet stream over the
        // same engine, continuous delivery, horizon-bounded. Prices the
        // incremental agenda injection + per-delivery retirement path
        // against the one-shot runs above.
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.5 }, 2_000).horizon(2_000);
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .max_rounds(10_000_000)
                .record_metrics(false);
            let report = run_traffic(cfg, CdMode::Strong, &spec, |pkt| {
                BackoffMac::new(2, 256, pkt)
            })
            .expect("traffic run");
            black_box((report.delivered, report.latency.quantile(0.99)))
        });
    });

    group.bench_function("run/trace_channels", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .max_rounds(10_000_000)
                .trace_level(TraceLevel::Channels);
            let mut eng = engine(cfg);
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.bench_function("run/recorder_attached", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            let mut recorder = RunRecorder::new();
            let report = eng.run_observed(&mut recorder).expect("solves");
            black_box((report.solved_round, recorder.into_record(seed).rounds))
        });
    });

    group.bench_function("run/metrics_hub", |b| {
        let hub = MetricsHub::new(1);
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            let mut sink = TelemetrySink::new();
            let report = eng.run_observed(&mut sink).expect("solves");
            sink.flush_to(&hub, 0);
            black_box(report.solved_round)
        });
    });

    group.bench_function("run/supervised_wrapper", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = supervised_engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.finish();
}

/// One slot of the fully materialized sparse-regime population: boxed so
/// the 2²⁰ − |A| fillers cost a tag word each, not a full algorithm.
enum WideSlot {
    /// A real contender (slots `0..ACTIVE`, so its per-node RNG stream —
    /// derived from the slot index — matches the sparse run's exactly and
    /// all three benches execute the same ensemble of rounds).
    Active(Box<FullAlgorithm>),
    /// A materialized identity that never wakes (`start_round = u64::MAX`).
    Filler,
}

impl Protocol for WideSlot {
    type Msg = u32;

    fn on_wake(&mut self, ctx: &RoundContext, rng: &mut SmallRng) {
        if let WideSlot::Active(node) = self {
            node.on_wake(ctx, rng);
        }
    }

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u32> {
        match self {
            WideSlot::Active(node) => node.act(ctx, rng),
            // Never reached: fillers never wake, so they are never live.
            WideSlot::Filler => Action::listen(ChannelId::PRIMARY),
        }
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<u32>, rng: &mut SmallRng) {
        if let WideSlot::Active(node) = self {
            node.observe(ctx, feedback, rng);
        }
    }

    fn status(&self) -> Status {
        match self {
            WideSlot::Active(node) => node.status(),
            WideSlot::Filler => Status::Active,
        }
    }

    fn phase(&self) -> &'static str {
        match self {
            WideSlot::Active(node) => node.phase(),
            WideSlot::Filler => "asleep",
        }
    }
}

fn sparse_config(seed: u64) -> SimConfig {
    SimConfig::new(C)
        .seed(seed)
        .max_rounds(10_000_000)
        .record_metrics(false)
}

/// Materializes the full namespace: `ACTIVE` real contenders first, then
/// never-waking fillers for every other identity.
fn add_wide_slots(mut add: impl FnMut(WideSlot, u64)) {
    for _ in 0..ACTIVE {
        add(
            WideSlot::Active(Box::new(FullAlgorithm::new(
                Params::practical(),
                C,
                N_SPARSE,
            ))),
            0,
        );
    }
    for _ in ACTIVE as u64..N_SPARSE {
        add(WideSlot::Filler, u64::MAX);
    }
}

fn bench_sparse_regime(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("round_engine(C=64,n=2^20,|A|=500)");
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("run/sparse_population", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let pop = SparsePopulation::uniform(N_SPARSE, ACTIVE, 1, seed);
            let mut eng = pop.engine(sparse_config(seed), |_| {
                FullAlgorithm::new(Params::practical(), C, N_SPARSE)
            });
            black_box(eng.run_summary().expect("solves").solved_round)
        });
    });

    group.bench_function("ab/active_set", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed = (seed % 16) + 1;
            let mut eng = Engine::new(sparse_config(seed));
            add_wide_slots(|slot, wake| {
                let _ = eng.add_node_at(slot, wake);
            });
            black_box(eng.run_summary().expect("solves").solved_round)
        });
    });

    group.bench_function("ab/dense_reference", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed = (seed % 16) + 1;
            let mut eng = DenseEngine::new(sparse_config(seed));
            add_wide_slots(|slot, wake| {
                let _ = eng.add_node_at(slot, wake);
            });
            black_box(eng.run_summary().expect("solves").solved_round)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_round_engine, bench_sparse_regime);

fn main() {
    benches();
    // Export the measurements in the run-record JSONL schema so obsdiff
    // (and CI) can compare bench runs the same way it compares trials.
    let lines: Vec<String> = take_results()
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("schema_version".into(), SCHEMA_VERSION.into()),
                ("kind".into(), "bench".into()),
                ("name".into(), r.name.as_str().into()),
                ("mean_ns".into(), r.mean_ns.into()),
                ("iters".into(), r.iters.into()),
            ])
            .render()
        })
        .collect();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_round_engine.json");
    match std::fs::write(out, format!("{}\n", lines.join("\n"))) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
