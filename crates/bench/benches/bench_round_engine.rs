//! Bench target for the layered round engine itself: the same workload
//! (the paper's full algorithm at C = 64, n = 2¹², |A| = 500) driven
//! through each execution path, so the cost of the observation layer is
//! visible in isolation:
//!
//! * `run/full_report` — the default path: metrics on, full [`RunReport`];
//! * `run_summary/no_observers` — metrics off, cheap [`RunSummary`] only;
//! * `run/trace_channels` — per-round channel outcomes recorded too;
//! * `run/recorder_attached` — a [`mac_sim::obs::RunRecorder`] span-model
//!   sink riding along, quantifying the structured-telemetry overhead;
//! * `run/supervised_wrapper` — the same fleet wrapped in
//!   [`contention::Supervised`] restart-with-backoff supervision on a
//!   clean channel, pricing the wrapper on the fault-free path (where it
//!   never fires — see docs/ROBUSTNESS.md).
//!
//! Unlike the other benches this one has a custom `main`: after the runs
//! it exports the measurements as schema-versioned JSONL
//! (`BENCH_round_engine.json` at the workspace root — `kind: "bench"`
//! records, diffable with `obsdiff`).

use contention::{
    supervised_paper_node, FullAlgorithm, Params, PhaseProtocol, RestartPolicy,
    SupervisedPaperStack,
};
use criterion::{criterion_group, take_results, Criterion};
use mac_sim::obs::{Json, RunRecorder, SCHEMA_VERSION};
use mac_sim::{Engine, SimConfig, TraceLevel};
use std::hint::black_box;

const C: u32 = 64;
const N: u64 = 1 << 12;
const ACTIVE: usize = 500;

fn engine(config: SimConfig) -> Engine<FullAlgorithm> {
    let mut engine = Engine::new(config);
    for _ in 0..ACTIVE {
        engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
    }
    engine
}

fn supervised_engine(config: SimConfig) -> Engine<PhaseProtocol<SupervisedPaperStack>> {
    let mut engine = Engine::new(config);
    for _ in 0..ACTIVE {
        engine.add_node(supervised_paper_node(
            Params::practical(),
            C,
            N,
            RestartPolicy::new(2_500_000, 4),
        ));
    }
    engine
}

fn bench_round_engine(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("round_engine(C=64,n=2^12,|A|=500)");
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("run/full_report", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.bench_function("run_summary/no_observers", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .max_rounds(10_000_000)
                .record_metrics(false);
            let mut eng = engine(cfg);
            black_box(eng.run_summary().expect("solves").solved_round)
        });
    });

    group.bench_function("run/trace_channels", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .max_rounds(10_000_000)
                .trace_level(TraceLevel::Channels);
            let mut eng = engine(cfg);
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.bench_function("run/recorder_attached", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            let mut recorder = RunRecorder::new();
            let report = eng.run_observed(&mut recorder).expect("solves");
            black_box((report.solved_round, recorder.into_record(seed).rounds))
        });
    });

    group.bench_function("run/supervised_wrapper", |b| {
        let mut seed = 0;
        b.iter(|| {
            // Cycle a fixed seed set so every execution path measures the
            // exact same ensemble of runs.
            seed = (seed % 16) + 1;
            let mut eng = supervised_engine(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            black_box(eng.run().expect("solves").solved_round)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_round_engine);

fn main() {
    benches();
    // Export the measurements in the run-record JSONL schema so obsdiff
    // (and CI) can compare bench runs the same way it compares trials.
    let lines: Vec<String> = take_results()
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("schema_version".into(), SCHEMA_VERSION.into()),
                ("kind".into(), "bench".into()),
                ("name".into(), r.name.as_str().into()),
                ("mean_ns".into(), r.mean_ns.into()),
                ("iters".into(), r.iters.into()),
            ])
            .render()
        })
        .collect();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_round_engine.json");
    match std::fs::write(out, format!("{}\n", lines.join("\n"))) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
