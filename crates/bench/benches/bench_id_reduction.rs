//! Bench target for experiment **E6** (Theorem 6): renaming into `[C/2]`
//! across channel counts. Tables: `repro e6`.

use contention::{IdReduction, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mac_sim::{Engine, SimConfig, StopWhen};
use std::hint::black_box;

fn bench_id_reduction(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("id_reduction/rename(|A|=64)");
    for ce in [4u32, 8, 12] {
        let c = 1u32 << ce;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("C=2^{ce}")),
            &c,
            |b, &c| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let cfg = SimConfig::new(c)
                        .seed(seed)
                        .stop_when(StopWhen::AllTerminated)
                        .max_rounds(1_000_000);
                    let mut exec = Engine::new(cfg);
                    for _ in 0..64 {
                        exec.add_node(IdReduction::new(Params::practical(), c));
                    }
                    black_box(exec.run().expect("terminates").rounds_executed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_id_reduction);
criterion_main!(benches);
