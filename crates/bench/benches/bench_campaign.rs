//! Bench target for the campaign scheduler itself: the same sweep (a grid
//! of full-algorithm cells, each a batch of engine runs) executed three
//! ways, so the cost of trial fan-out strategy is visible in isolation:
//!
//! * `schedule/campaign_pool` — the campaign layer: one persistent worker
//!   pool spans every cell, work-stealing seed-sharded chunks;
//! * `schedule/per_cell_spawn` — the pre-campaign harness idiom: each cell
//!   spawns (and joins) its own scoped worker set, paying thread startup
//!   and a barrier per grid point;
//! * `schedule/sequential` — the single-threaded floor.
//!
//! Like `bench_round_engine`, this bench has a custom `main`: after the
//! runs it exports the measurements as schema-versioned JSONL
//! (`BENCH_campaign.json` at the workspace root — `kind: "bench"` records,
//! diffable with `obsdiff`).

use contention::{FullAlgorithm, Params};
use criterion::{criterion_group, take_results, Criterion};
use mac_sim::campaign::{Campaign, Cell, SeedStream};
use mac_sim::obs::{Json, SCHEMA_VERSION};
use mac_sim::{Engine, SimConfig};
use std::hint::black_box;

const C: u32 = 16;
const N: u64 = 1 << 12;
const ACTIVE: usize = 48;
const CELLS: usize = 24;
const TRIALS: usize = 16;

/// One trial: a full-algorithm run at a mid-size grid point — heavy enough
/// that scheduling overhead is the signal, not the noise.
fn trial(seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
    for _ in 0..ACTIVE {
        exec.add_node(FullAlgorithm::new(Params::practical(), C, N));
    }
    let report = exec.run().expect("solves");
    report
        .rounds_to_solve()
        .expect("full algorithm always solves")
}

/// The per-cell aggregate: (total rounds, trial count).
type Agg = (u64, u64);

fn seeds() -> Vec<SeedStream> {
    (0..CELLS as u64).map(SeedStream::Derived).collect()
}

fn campaign_pool() -> Vec<Agg> {
    let mut campaign = Campaign::new();
    for stream in seeds() {
        campaign.push(Cell::new(TRIALS, stream, Agg::default, |seed, acc| {
            acc.0 += trial(seed);
            acc.1 += 1;
        }));
    }
    campaign.run_collect()
}

fn per_cell_spawn(workers: usize) -> Vec<Agg> {
    seeds()
        .into_iter()
        .map(|stream| {
            // Fresh threads per cell, joined before the next cell starts —
            // the fan-out shape every experiment used before the campaign
            // layer existed.
            let partials = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let stream = &stream;
                        scope.spawn(move || {
                            let mut acc = Agg::default();
                            for i in (w..TRIALS).step_by(workers) {
                                acc.0 += trial(stream.seed(i as u64));
                                acc.1 += 1;
                            }
                            acc
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect::<Vec<_>>()
            });
            partials
                .into_iter()
                .fold(Agg::default(), |a, b| (a.0 + b.0, a.1 + b.1))
        })
        .collect()
}

fn sequential() -> Vec<Agg> {
    seeds()
        .into_iter()
        .map(|stream| {
            let mut acc = Agg::default();
            for i in 0..TRIALS as u64 {
                acc.0 += trial(stream.seed(i));
                acc.1 += 1;
            }
            acc
        })
        .collect()
}

fn bench_campaign(criterion: &mut Criterion) {
    let workers = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut group = criterion.benchmark_group(format!(
        "campaign({CELLS}cells x {TRIALS}trials,full C={C} |A|={ACTIVE})"
    ));
    group.measurement_time(std::time::Duration::from_secs(2));

    // All three paths must agree before any of them is worth timing.
    assert_eq!(campaign_pool(), sequential());
    assert_eq!(per_cell_spawn(workers), sequential());

    group.bench_function("schedule/campaign_pool", |b| {
        b.iter(|| black_box(campaign_pool()));
    });
    group.bench_function("schedule/per_cell_spawn", |b| {
        b.iter(|| black_box(per_cell_spawn(workers)));
    });
    group.bench_function("schedule/sequential", |b| {
        b.iter(|| black_box(sequential()));
    });

    group.finish();
}

criterion_group!(benches, bench_campaign);

fn main() {
    benches();
    // Export the measurements in the run-record JSONL schema so obsdiff
    // (and CI) can compare bench runs the same way it compares trials.
    let lines: Vec<String> = take_results()
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("schema_version".into(), SCHEMA_VERSION.into()),
                ("kind".into(), "bench".into()),
                ("name".into(), r.name.as_str().into()),
                ("mean_ns".into(), r.mean_ns.into()),
                ("iters".into(), r.iters.into()),
            ])
            .render()
        })
        .collect();
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    match std::fs::write(out, format!("{}\n", lines.join("\n"))) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("cannot write {out}: {e}"),
    }
}
