//! Bench target for experiment **E7** (Lemma 9): the balls-in-bins Monte
//! Carlo. Tables: `repro e7`.

use contention_analysis::balls::no_lone_ball_probability;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_balls(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("balls_in_bins/monte_carlo");
    for (balls, bins) in [(16usize, 48usize), (64, 512), (256, 2048)] {
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b={balls},m={bins}")),
            &(balls, bins),
            |b, &(balls, bins)| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(no_lone_ball_probability(balls, bins, 1000, seed))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_balls);
criterion_main!(benches);
