//! Bench target for experiment **E17** (serving all contenders): the
//! generic serializer and the Capetanakis tree algorithm. Tables:
//! `repro e17`.

use contention::baselines::{CdTournament, TreeSplit};
use contention::serialize::SerializeAll;
use contention::{FullAlgorithm, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mac_sim::{Engine, SimConfig, StopWhen};
use std::hint::black_box;

fn bench_serializers(criterion: &mut Criterion) {
    let (c, n) = (64u32, 1u64 << 10);
    let mut group = criterion.benchmark_group("serialize/drain(n=2^10)");
    for k in [16usize, 128] {
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}/pipeline")),
            &k,
            |b, &k| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let cfg = SimConfig::new(c)
                        .seed(seed)
                        .stop_when(StopWhen::AllTerminated)
                        .max_rounds(10_000_000);
                    let mut exec = Engine::new(cfg);
                    for payload in 0..k as u32 {
                        let factory = move || FullAlgorithm::new(Params::practical(), c, n);
                        exec.add_node(SerializeAll::new(factory, payload));
                    }
                    black_box(exec.run().expect("drains").rounds_executed)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}/tournament")),
            &k,
            |b, &k| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let cfg = SimConfig::new(1)
                        .seed(seed)
                        .stop_when(StopWhen::AllTerminated)
                        .max_rounds(10_000_000);
                    let mut exec = Engine::new(cfg);
                    for payload in 0..k as u32 {
                        exec.add_node(SerializeAll::new(CdTournament::new, payload));
                    }
                    black_box(exec.run().expect("drains").rounds_executed)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}/tree-split")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let cfg = SimConfig::new(1)
                        .stop_when(StopWhen::AllTerminated)
                        .max_rounds(10_000_000);
                    let mut exec = Engine::new(cfg);
                    for i in 0..k as u64 {
                        exec.add_node(TreeSplit::new(i * (n / k as u64), n));
                    }
                    black_box(exec.run().expect("drains").rounds_executed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serializers);
criterion_main!(benches);
