//! Bench target for experiment **E8** (Theorem 17): coalescing-cohorts
//! leader election across occupancy. Tables: `repro e8`.

use contention::LeafElection;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mac_sim::{Engine, SimConfig, StopWhen};
use std::hint::black_box;

fn bench_leaf_election(criterion: &mut Criterion) {
    let c = 1u32 << 12; // 2048-leaf tree
    let mut group = criterion.benchmark_group("leaf_election/elect(C=2^12)");
    for x in [4u32, 64, 1024] {
        group.throughput(Throughput::Elements(u64::from(x)));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("x={x}")),
            &x,
            |b, &x| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let cfg = SimConfig::new(c)
                        .seed(seed)
                        .stop_when(StopWhen::AllTerminated)
                        .max_rounds(1_000_000);
                    let mut exec = Engine::new(cfg);
                    for id in contention_harness::sample_distinct(2048, x as usize, seed) {
                        exec.add_node(LeafElection::new(c, id as u32 + 1));
                    }
                    black_box(exec.run().expect("elects").rounds_executed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_leaf_election);
criterion_main!(benches);
