//! Bench target for experiments **E14–E16** (extensions): the expected-O(1)
//! algorithm and cohort aggregation. Tables: `repro e14 e15 e16`.

use contention::cohort_compute::{AggregateOp, CohortAggregate};
use contention::extensions::ExpectedConstant;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mac_sim::{ChannelId, Engine, SimConfig, StopWhen};
use std::hint::black_box;

fn bench_expected_constant(criterion: &mut Criterion) {
    let n = 1u64 << 16;
    let mut group = criterion.benchmark_group("extensions/expected_o1(n=2^16,|A|=1024)");
    for c in [4u32, 18, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("C={c}")),
            &c,
            |b, &c| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
                    for _ in 0..1024 {
                        exec.add_node(ExpectedConstant::new(c, n));
                    }
                    black_box(exec.run().expect("solves").solved_round)
                });
            },
        );
    }
    group.finish();
}

fn bench_cohort_aggregate(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("extensions/cohort_aggregate");
    for p in [4u32, 32, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p={p}")),
            &p,
            |b, &p| {
                b.iter(|| {
                    let cfg = SimConfig::new(512)
                        .stop_when(StopWhen::AllTerminated)
                        .max_rounds(1000);
                    let mut exec = Engine::new(cfg);
                    for i in 1..=p {
                        exec.add_node(CohortAggregate::new(
                            ChannelId::new(2),
                            p,
                            i,
                            i64::from(i * 13 % 97),
                            AggregateOp::Max,
                        ));
                    }
                    black_box(exec.run().expect("aggregates").rounds_executed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_expected_constant, bench_cohort_aggregate);
criterion_main!(benches);
