//! Bench target for experiment **E5** (Theorem 5): the knock-out step at
//! increasing activation densities. Tables: `repro e5`.

use contention::Reduce;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mac_sim::{Engine, SimConfig, StopWhen};
use std::hint::black_box;

fn bench_reduce(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("reduce/knockout(n=2^16)");
    for active in [64usize, 1024, 16384] {
        group.throughput(Throughput::Elements(active as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("A={active}")),
            &active,
            |b, &active| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let cfg = SimConfig::new(1)
                        .seed(seed)
                        .stop_when(StopWhen::AllTerminated)
                        .max_rounds(100_000);
                    let mut exec = Engine::new(cfg);
                    for _ in 0..active {
                        exec.add_node(Reduce::new(1 << 16));
                    }
                    black_box(exec.run().expect("terminates").rounds_executed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduce);
criterion_main!(benches);
