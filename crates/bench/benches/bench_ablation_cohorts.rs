//! Bench target for experiment **E13** (coalescing-cohorts ablation):
//! `(p+1)`-ary vs forced-binary `SplitSearch`. Tables: `repro e13`.

use contention::LeafElection;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mac_sim::{Engine, SimConfig, StopWhen};
use std::hint::black_box;

fn run(c: u32, x: u32, binary: bool, seed: u64) -> u64 {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    let leaves = u64::from(c / 2);
    for id in contention_harness::sample_distinct(leaves, x as usize, seed) {
        let id = id as u32 + 1;
        exec.add_node(if binary {
            LeafElection::with_binary_search(c, id)
        } else {
            LeafElection::new(c, id)
        });
    }
    exec.run().expect("elects").rounds_executed
}

fn bench_ablation(criterion: &mut Criterion) {
    let c = 1u32 << 14;
    let mut group = criterion.benchmark_group("ablation/split_search(C=2^14)");
    for x in [16u32, 256] {
        for (label, binary) in [("cohort", false), ("binary", true)] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("x={x}/{label}")),
                &(x, binary),
                |b, &(x, binary)| {
                    let mut seed = 0;
                    b.iter(|| {
                        seed += 1;
                        black_box(run(c, x, binary, seed))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
