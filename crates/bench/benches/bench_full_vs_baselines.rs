//! Bench target for experiments **E9/E10** (Theorem 4, optimality): one
//! execution of each algorithm at the headline configuration. Tables:
//! `repro e9 e10`.

use contention::baselines::{BinaryDescent, Decay, MultiChannelNoCd};
use contention::{FullAlgorithm, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use mac_sim::{CdMode, Engine, SimConfig};
use std::hint::black_box;

const C: u32 = 256;
const N: u64 = 1 << 14;
const ACTIVE: usize = 256;

fn bench_algorithms(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("shootout(C=256,n=2^14,|A|=256)");

    group.bench_function("full_algorithm", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut exec = Engine::new(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            for _ in 0..ACTIVE {
                exec.add_node(FullAlgorithm::new(Params::practical(), C, N));
            }
            black_box(exec.run().expect("solves").solved_round)
        });
    });

    group.bench_function("binary_descent", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut exec = Engine::new(SimConfig::new(C).seed(seed).max_rounds(10_000_000));
            for id in contention_harness::sample_distinct(N, ACTIVE, seed) {
                exec.add_node(BinaryDescent::new(id, N));
            }
            black_box(exec.run().expect("solves").solved_round)
        });
    });

    group.bench_function("decay_no_cd", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .cd_mode(CdMode::None)
                .max_rounds(10_000_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..ACTIVE {
                exec.add_node(Decay::new(N));
            }
            black_box(exec.run().expect("solves").solved_round)
        });
    });

    group.bench_function("multichannel_no_cd", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let cfg = SimConfig::new(C)
                .seed(seed)
                .cd_mode(CdMode::None)
                .max_rounds(10_000_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..ACTIVE {
                exec.add_node(MultiChannelNoCd::new(C, N));
            }
            black_box(exec.run().expect("solves").solved_round)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
