//! Bench target for experiment **E4** (Lemma 3) and the CREW PRAM
//! substrate: the binary `SplitCheck` recursion and Snir's `(p+1)`-ary
//! search. Tables: `repro e4`.

use crew_pram::search::{snir_boundary, snir_lower_bound};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_snir_boundary(criterion: &mut Criterion) {
    let bits: Vec<bool> = (1..=4096).map(|j| j >= 2000).collect();
    let mut group = criterion.benchmark_group("pram/snir_boundary(m=4096)");
    for p in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p={p}")),
            &p,
            |b, &p| {
                b.iter(|| black_box(snir_boundary(&bits, p).expect("searches")));
            },
        );
    }
    group.finish();
}

fn bench_snir_lower_bound(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("pram/snir_lower_bound");
    for m in [256usize, 4096, 65536] {
        let sorted: Vec<i64> = (0..m as i64).map(|x| x * 3).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m={m}")),
            &m,
            move |b, _| {
                b.iter(|| {
                    black_box(snir_lower_bound(&sorted, 3 * (m as i64) / 2, 8).expect("searches"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_snir_boundary, bench_snir_lower_bound);
criterion_main!(benches);
