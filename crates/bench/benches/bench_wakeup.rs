//! Bench target for experiment **E12** (§3 transform): the staggered-start
//! wrapper under adversarial wake-ups. Tables: `repro e12`.

use contention::wakeup::StaggeredStart;
use contention::{FullAlgorithm, Params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mac_sim::{Engine, SimConfig};
use std::hint::black_box;

fn bench_wakeup(criterion: &mut Criterion) {
    let (c, n, active) = (64u32, 1u64 << 12, 48usize);
    let mut group = criterion.benchmark_group("wakeup/staggered_start");
    for (name, stride) in [("simultaneous", 0u64), ("offset-1", 1), ("ramp", 3)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &stride, |b, &stride| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
                for i in 0..active as u64 {
                    let off = if stride == 0 { 0 } else { (i * stride) % 13 };
                    exec.add_node_at(
                        StaggeredStart::new(FullAlgorithm::new(Params::practical(), c, n)),
                        off,
                    );
                }
                black_box(exec.run().expect("solves").solved_round)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wakeup);
criterion_main!(benches);
