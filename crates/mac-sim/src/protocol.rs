//! The [`Protocol`] trait that node algorithms implement.

use rand::rngs::SmallRng;

use crate::action::{Action, Feedback};

/// Lifecycle status of a node, as reported by its protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Status {
    /// The node is still participating in the algorithm.
    #[default]
    Active,
    /// The node has terminated believing it is the elected leader.
    Leader,
    /// The node has terminated without becoming leader (it was knocked out,
    /// renamed away, or its cohort lost a pairing round).
    Inactive,
}

impl Status {
    /// Returns `true` if the node has terminated (leader or inactive).
    #[must_use]
    pub fn is_terminated(self) -> bool {
        !matches!(self, Status::Active)
    }
}

/// Read-only context handed to a protocol every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundContext {
    /// The global round number, starting at 0.
    pub round: u64,
    /// The round number relative to this node's wake-up round (0 in the
    /// round the node wakes). Equal to `round` under simultaneous start.
    pub local_round: u64,
    /// Number of channels `C`.
    pub channels: u32,
}

/// A node algorithm, written as a synchronous-round state machine.
///
/// Each round, the executor calls [`Protocol::act`] on every awake node whose
/// [`Protocol::status`] is [`Status::Active`], resolves all channels, then
/// calls [`Protocol::observe`] with the feedback the node's radio produced.
/// A node whose status becomes [`Status::Leader`] or [`Status::Inactive`]
/// stops being scheduled.
///
/// Implementations must be deterministic given the provided RNG: all
/// randomness must come from the `rng` argument, which the executor seeds
/// per node from the master seed.
///
/// `Protocol` is the *flat* interface the engine schedules — one state
/// machine, one terminal status. Algorithms with internal structure
/// (sequenced steps, fallback branches, typed handoffs between steps) are
/// better written as composable phases and adapted down to this trait; see
/// the `contention` crate's `phase` module (`Phase`, `PhaseProtocol`), which
/// also carries a per-phase stats spine that the engine itself never needs
/// to know about.
pub trait Protocol {
    /// Message payload type carried by transmissions.
    type Msg: Clone;

    /// Called exactly once, in the round the node wakes up, before its first
    /// [`Protocol::act`]. Default: no-op.
    fn on_wake(&mut self, ctx: &RoundContext, rng: &mut SmallRng) {
        let _ = (ctx, rng);
    }

    /// Choose this round's action.
    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<Self::Msg>;

    /// Receive the feedback for the action chosen this round.
    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<Self::Msg>, rng: &mut SmallRng);

    /// Current lifecycle status. Checked after every `observe`.
    fn status(&self) -> Status;

    /// A short label for the algorithm phase the node is currently in, used
    /// for per-phase round accounting in reports. Default: `"main"`.
    ///
    /// This label is for *observation* (metrics, traces); it must never
    /// influence behavior. Composed phase stacks report their currently
    /// running child's fine-grained label here.
    fn phase(&self) -> &'static str {
        "main"
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    type Msg = P::Msg;

    fn on_wake(&mut self, ctx: &RoundContext, rng: &mut SmallRng) {
        (**self).on_wake(ctx, rng);
    }

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<Self::Msg> {
        (**self).act(ctx, rng)
    }

    fn observe(&mut self, ctx: &RoundContext, feedback: Feedback<Self::Msg>, rng: &mut SmallRng) {
        (**self).observe(ctx, feedback, rng);
    }

    fn status(&self) -> Status {
        (**self).status()
    }

    fn phase(&self) -> &'static str {
        (**self).phase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_protocols_are_protocols() {
        struct Quiet;
        impl Protocol for Quiet {
            type Msg = ();
            fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<()> {
                Action::Sleep
            }
            fn observe(&mut self, _: &RoundContext, _: Feedback<()>, _: &mut SmallRng) {}
            fn status(&self) -> Status {
                Status::Inactive
            }
        }
        let mut boxed: Box<dyn Protocol<Msg = ()>> = Box::new(Quiet);
        assert_eq!(boxed.status(), Status::Inactive);
        assert_eq!(boxed.phase(), "main");
        let ctx = RoundContext {
            round: 0,
            local_round: 0,
            channels: 1,
        };
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(0);
        boxed.on_wake(&ctx, &mut rng);
        assert!(matches!(boxed.act(&ctx, &mut rng), Action::Sleep));
        boxed.observe(&ctx, Feedback::Slept, &mut rng);
    }

    #[test]
    fn status_termination() {
        assert!(!Status::Active.is_terminated());
        assert!(Status::Leader.is_terminated());
        assert!(Status::Inactive.is_terminated());
        assert_eq!(Status::default(), Status::Active);
    }
}
