//! The trial layer: multi-seed execution fan-out, shared by experiments,
//! benches, and tests.
//!
//! A *trial* is one full engine run at one seed. Experiments need many of
//! them — round-complexity curves average hundreds of runs per point — so
//! this module spreads trials over OS threads while keeping results
//! **deterministic in the base seed regardless of thread count**: trial `i`
//! always runs at seed `base_seed + i`, and results come back in trial
//! order.
//!
//! Since the campaign refactor this layer is a thin adapter: each call
//! schedules a single-cell [`campaign`](crate::campaign) whose aggregate
//! collects results in seed order, so the trial layer and the sweep layer
//! share one scheduler (and one determinism contract). Multi-cell sweeps
//! should build a [`crate::campaign::Campaign`] directly — that is what
//! keeps the pool saturated across grid points and enables streaming
//! aggregation, progress, and resume.
//!
//! * [`run_trials`] — the common case, collecting full [`RunReport`]s;
//! * [`run_trials_with`] — map each finished engine through an `extract`
//!   closure (to read final protocol state: adopted ids, survivor flags, …);
//! * [`run_trials_summaries`] — the cheap path via [`Engine::run_summary`],
//!   skipping the metrics/trace clones entirely;
//! * [`run_trials_with_threads`] — explicit thread count, used by the
//!   thread-count-invariance test;
//! * [`run_trials_recorded`] — attach a [`RunRecorder`] per trial and get
//!   `(report, record)` pairs for structured JSONL export.

use crate::campaign::{panic_message, Campaign, Cell, Collect, SeedStream};
use crate::config::SimConfig;
use crate::engine::{Engine, RunReport, RunSummary};
use crate::error::SimError;
use crate::feedback::FeedbackModel;
use crate::obs::telemetry::{MetricsHub, TelemetrySink};
use crate::obs::{RunRecord, RunRecorder};
use crate::population::SparsePopulation;
use crate::protocol::Protocol;
use crate::traffic::{run_traffic, TrafficReport, TrafficSpec};

/// Why a guarded trial ([`guarded_verdict`]) produced no solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WedgeCause {
    /// The run finished inside its budget but never solved.
    Unsolved,
    /// The engine's [`crate::SimConfig::round_budget`] watchdog fired.
    BudgetExhausted,
    /// The engine's max-rounds cap fired.
    Timeout,
    /// The trial panicked — e.g. a `debug_assert!` encoding a
    /// clean-channel invariant tripped under injected faults. The message
    /// is rendered by [`panic_message`], the same helper campaign
    /// quarantine reports use.
    Panicked(String),
}

/// Verdict of one guarded (panic-isolated) trial run — the single
/// accounting path for "did this faulted trial wedge?", shared by the
/// fault experiments (E18/E19) and aligned with the campaign layer's
/// quarantine accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialVerdict<T> {
    /// The trial solved; `T` is whatever the closure extracted.
    Solved(T),
    /// The trial wedged: no solve, for the given cause.
    Wedged(WedgeCause),
    /// The simulation failed in a way that is *not* a fault-induced wedge
    /// (e.g. [`SimError::NoNodes`]) — an experiment bug, surfaced
    /// distinctly so callers can fail loudly instead of undercounting.
    Failed(SimError),
}

impl<T> TrialVerdict<T> {
    /// The solved value, if the trial solved.
    pub fn solved(self) -> Option<T> {
        match self {
            TrialVerdict::Solved(value) => Some(value),
            _ => None,
        }
    }

    /// Whether the trial wedged (any [`WedgeCause`]).
    #[must_use]
    pub fn is_wedged(&self) -> bool {
        matches!(self, TrialVerdict::Wedged(_))
    }
}

/// Runs one trial under panic isolation and classifies the outcome.
///
/// `run` executes the engine and returns `Ok(Some(value))` on a solve,
/// `Ok(None)` when the run finished without solving, or the engine error.
/// Panics (tripped debug assertions under faults), budget exhaustion, and
/// timeouts all map to [`TrialVerdict::Wedged`] — the same verdict, so
/// wedged-trial counts do not depend on whether a fault wedges the
/// protocol loudly (assertion) or quietly (budget).
pub fn guarded_verdict<T>(run: impl FnOnce() -> Result<Option<T>, SimError>) -> TrialVerdict<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(Ok(Some(value))) => TrialVerdict::Solved(value),
        Ok(Ok(None)) => TrialVerdict::Wedged(WedgeCause::Unsolved),
        Ok(Err(SimError::BudgetExhausted { .. })) => {
            TrialVerdict::Wedged(WedgeCause::BudgetExhausted)
        }
        Ok(Err(SimError::Timeout { .. })) => TrialVerdict::Wedged(WedgeCause::Timeout),
        Ok(Err(e)) => TrialVerdict::Failed(e),
        Err(payload) => TrialVerdict::Wedged(WedgeCause::Panicked(panic_message(payload.as_ref()))),
    }
}

/// Runs `trials` independent executions built by `build` (which receives
/// the trial's seed) and returns their reports in seed order.
///
/// Trials are spread over `std::thread::available_parallelism()` threads;
/// results are deterministic regardless of thread count because each trial
/// is fully determined by its seed.
///
/// # Panics
///
/// Panics if any trial fails (a timeout or protocol error is an experiment
/// bug, not a data point — the panic message carries the seed for replay).
pub fn run_trials<P, F, B>(trials: usize, base_seed: u64, build: B) -> Vec<RunReport>
where
    P: Protocol,
    F: FeedbackModel,
    B: Fn(u64) -> Engine<P, F> + Sync,
{
    run_trials_with(trials, base_seed, build, |_, report| report.clone())
}

/// Like [`run_trials`], but maps each finished execution through `extract`,
/// which also receives the engine so it can inspect final protocol state
/// (adopted ids, survivor flags, per-phase stats, …).
///
/// # Panics
///
/// Panics if any trial fails; the message carries the seed for replay.
pub fn run_trials_with<P, F, B, G, T>(trials: usize, base_seed: u64, build: B, extract: G) -> Vec<T>
where
    P: Protocol,
    F: FeedbackModel,
    B: Fn(u64) -> Engine<P, F> + Sync,
    G: Fn(&Engine<P, F>, &RunReport) -> T + Sync,
    T: Send,
{
    let threads = default_threads(trials);
    run_trials_with_threads(trials, base_seed, threads, build, extract)
}

/// Like [`run_trials`], but each trial uses the allocation-free
/// [`Engine::run_summary`] path: no metrics or trace clones, just the
/// [`RunSummary`] solve data. This is the right call for round-complexity
/// sweeps that only read `solved_round`.
///
/// # Panics
///
/// Panics if any trial fails; the message carries the seed for replay.
pub fn run_trials_summaries<P, F, B>(trials: usize, base_seed: u64, build: B) -> Vec<RunSummary>
where
    P: Protocol,
    F: FeedbackModel,
    B: Fn(u64) -> Engine<P, F> + Sync,
{
    single_cell(trials, base_seed, default_threads(trials), &|seed| {
        let mut engine = build(seed);
        engine
            .run_summary()
            .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
    })
}

/// Like [`run_trials_with`] with an explicit worker-thread count.
///
/// Exists so tests can assert thread-count invariance; normal callers use
/// [`run_trials_with`], which picks `available_parallelism()`.
///
/// # Panics
///
/// Panics if `threads == 0` or any trial fails.
pub fn run_trials_with_threads<P, F, B, G, T>(
    trials: usize,
    base_seed: u64,
    threads: usize,
    build: B,
    extract: G,
) -> Vec<T>
where
    P: Protocol,
    F: FeedbackModel,
    B: Fn(u64) -> Engine<P, F> + Sync,
    G: Fn(&Engine<P, F>, &RunReport) -> T + Sync,
    T: Send,
{
    single_cell(trials, base_seed, threads, &|seed| {
        let mut engine = build(seed);
        let report = engine
            .run()
            .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
        extract(&engine, &report)
    })
}

/// Sparse-population fan-out: like [`run_trials_summaries`], but each
/// trial's engine is instantiated from a [`SparsePopulation`] — exactly
/// `|A|` slots over a namespace of `pop.namespace()` identities, scheduled
/// at the population's wake rounds. `config` receives the trial seed (so
/// the master seed varies per trial); `make` receives each member's
/// namespace identity.
///
/// This is the scaling-study path: per-trial cost is a function of `|A|`,
/// not `n`, so round-complexity curves can sweep `n` to `2^22` and beyond
/// without the engine ever materializing the sleeping namespace.
///
/// # Panics
///
/// Panics if any trial fails; the message carries the seed for replay.
pub fn run_sparse_trials_summaries<P: Protocol>(
    trials: usize,
    base_seed: u64,
    pop: &SparsePopulation,
    config: impl Fn(u64) -> SimConfig + Sync,
    make: impl Fn(u64) -> P + Sync,
) -> Vec<RunSummary> {
    single_cell(trials, base_seed, default_threads(trials), &|seed| {
        let mut engine = pop.engine(config(seed), &make);
        engine
            .run_summary()
            .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
    })
}

/// Traffic fan-out: `trials` independent [`run_traffic`] executions, trial
/// `i` at seed `base_seed + i`, reports in seed order. `config` receives
/// the trial seed (and must thread it into [`SimConfig::seed`] — the
/// master seed is what drives both the arrival stream and the node RNGs);
/// `feedback` builds a fresh fault stack per trial; `make` builds the
/// protocol for each packet by arrival sequence number.
///
/// Like every trial-layer call, results are deterministic in the base
/// seed regardless of worker-thread count — the property the traffic
/// equivalence and invariance tests pin.
///
/// # Panics
///
/// Panics if any trial fails (budget exhaustion is *not* a failure — it
/// surfaces as [`crate::traffic::StopCause::BudgetExhausted`] in the
/// report); the message carries the seed for replay.
pub fn run_traffic_trials<P, F>(
    trials: usize,
    base_seed: u64,
    spec: &TrafficSpec,
    config: impl Fn(u64) -> SimConfig + Sync,
    feedback: impl Fn(u64) -> F + Sync,
    make: impl Fn(u64) -> P + Sync,
) -> Vec<TrafficReport>
where
    P: Protocol,
    F: FeedbackModel,
{
    single_cell(trials, base_seed, default_threads(trials), &|seed| {
        run_traffic(config(seed), feedback(seed), spec, &make)
            .unwrap_or_else(|e| panic!("traffic trial with seed {seed} failed: {e}"))
    })
}

/// Like [`run_traffic_trials`], but flushes every trial's
/// [`TrafficReport`] into `hub` — one flush per finished trial, into the
/// shard indexed by the trial number, mirroring [`run_trials_observed`].
/// Reports are bit-identical to [`run_traffic_trials`] at the same seeds.
///
/// # Panics
///
/// Panics if any trial fails; the message carries the seed for replay.
pub fn run_traffic_trials_observed<P, F>(
    trials: usize,
    base_seed: u64,
    hub: &MetricsHub,
    spec: &TrafficSpec,
    config: impl Fn(u64) -> SimConfig + Sync,
    feedback: impl Fn(u64) -> F + Sync,
    make: impl Fn(u64) -> P + Sync,
) -> Vec<TrafficReport>
where
    P: Protocol,
    F: FeedbackModel,
{
    single_cell(trials, base_seed, default_threads(trials), &|seed| {
        let report = run_traffic(config(seed), feedback(seed), spec, &make)
            .unwrap_or_else(|e| panic!("traffic trial with seed {seed} failed: {e}"));
        let trial = seed.wrapping_sub(base_seed) as usize;
        report.flush_to(hub, trial);
        report
    })
}

/// Like [`run_trials`], but attaches a [`RunRecorder`] to every trial and
/// returns `(report, record)` pairs — the structured-record path used by
/// record-emitting experiments and the `obsdiff record` probe. Each
/// trial's [`RunRecord`] carries its own seed.
///
/// # Panics
///
/// Panics if any trial fails; the message carries the seed for replay.
pub fn run_trials_recorded<P, F, B>(
    trials: usize,
    base_seed: u64,
    build: B,
) -> Vec<(RunReport, RunRecord)>
where
    P: Protocol,
    F: FeedbackModel,
    B: Fn(u64) -> Engine<P, F> + Sync,
{
    single_cell(trials, base_seed, default_threads(trials), &|seed| {
        let mut engine = build(seed);
        let mut recorder = RunRecorder::new();
        let report = engine
            .run_observed(&mut recorder)
            .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
        (report, recorder.into_record(seed))
    })
}

/// Like [`run_trials`], but every trial runs with a [`TelemetrySink`]
/// attached and flushes its engine-layer tallies into `hub` — one flush
/// per finished trial, into the shard indexed by the trial number, so the
/// engine hot loop never touches the shared hub. Reports are bit-identical
/// to [`run_trials`] at the same seeds: the sink draws no randomness and
/// never feeds back into scheduling.
///
/// # Panics
///
/// Panics if any trial fails; the message carries the seed for replay.
pub fn run_trials_observed<P, F, B>(
    trials: usize,
    base_seed: u64,
    hub: &MetricsHub,
    build: B,
) -> Vec<RunReport>
where
    P: Protocol,
    F: FeedbackModel,
    B: Fn(u64) -> Engine<P, F> + Sync,
{
    single_cell(trials, base_seed, default_threads(trials), &|seed| {
        let mut engine = build(seed);
        let mut sink = TelemetrySink::new();
        let report = engine
            .run_observed(&mut sink)
            .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
        let trial = seed.wrapping_sub(base_seed) as usize;
        sink.flush_to(hub, trial);
        report
    })
}

/// Default worker count: `available_parallelism()`, capped at the trial
/// count so tiny batches don't spawn idle threads.
fn default_threads(trials: usize) -> usize {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    threads.min(trials.max(1))
}

/// Schedules one cell on the campaign pool and returns its results in seed
/// order. The shard size is the historical contiguous chunking
/// (`trials.div_ceil(threads)`), so each worker's seeds stay contiguous
/// and replaying a failed chunk by seed range is trivial.
fn single_cell<T: Send>(
    trials: usize,
    base_seed: u64,
    threads: usize,
    run_one: &(dyn Fn(u64) -> T + Sync),
) -> Vec<T> {
    assert!(threads > 0, "at least one worker thread is required");
    let mut campaign = Campaign::new()
        .workers(threads)
        .shard_size(trials.div_ceil(threads).max(1));
    campaign.push(Cell::new(
        trials,
        SeedStream::Offset(base_seed),
        Collect::default,
        move |seed, acc: &mut Collect<T>| acc.0.push(run_one(seed)),
    ));
    campaign
        .run_collect()
        .into_iter()
        .next()
        .map(|c| c.0)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Feedback};
    use crate::channel::ChannelId;
    use crate::config::SimConfig;
    use crate::protocol::{RoundContext, Status};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Transmits on the primary channel with probability 1/2 each round;
    /// solves in a geometric number of rounds, different per seed.
    struct Flip;
    impl Protocol for Flip {
        type Msg = u8;
        fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u8> {
            if rng.gen_bool(0.5) {
                Action::transmit(ChannelId::PRIMARY, 0)
            } else {
                Action::listen(ChannelId::PRIMARY)
            }
        }
        fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u8>, _rng: &mut SmallRng) {}
        fn status(&self) -> Status {
            Status::Active
        }
    }

    fn build(seed: u64) -> Engine<Flip> {
        let mut engine = Engine::new(SimConfig::new(1).seed(seed).max_rounds(10_000));
        for _ in 0..4 {
            engine.add_node(Flip);
        }
        engine
    }

    #[test]
    fn trials_are_deterministic_and_seed_ordered() {
        let a: Vec<_> = run_trials(8, 100, build)
            .iter()
            .map(|r| r.solved_round)
            .collect();
        let b: Vec<_> = run_trials(8, 100, build)
            .iter()
            .map(|r| r.solved_round)
            .collect();
        assert_eq!(a, b);
        let c: Vec<_> = run_trials(8, 999, build)
            .iter()
            .map(|r| r.solved_round)
            .collect();
        assert_ne!(a, c);
        // Trial i is exactly the run at seed base + i.
        let solo = build(103).run().unwrap();
        assert_eq!(a[3], solo.solved_round);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let extract = |_: &Engine<Flip>, r: &RunReport| r.summary();
        let one = run_trials_with_threads(13, 7, 1, build, extract);
        for threads in [2, 3, 8, 32] {
            let many = run_trials_with_threads(13, 7, threads, build, extract);
            assert_eq!(one, many, "{threads} threads diverged from 1 thread");
        }
    }

    #[test]
    fn summaries_match_full_reports() {
        let reports = run_trials(6, 42, build);
        let summaries = run_trials_summaries(6, 42, build);
        let from_reports: Vec<_> = reports.iter().map(RunReport::summary).collect();
        assert_eq!(summaries, from_reports);
    }

    #[test]
    fn extract_sees_final_engine_state() {
        let lens = run_trials_with(3, 5, build, |engine, _| engine.len());
        assert_eq!(lens, vec![4, 4, 4]);
    }

    #[test]
    fn recorded_trials_match_reports() {
        let pairs = run_trials_recorded(4, 42, build);
        let reports = run_trials(4, 42, build);
        for ((report, record), plain) in pairs.iter().zip(&reports) {
            assert_eq!(report.solved_round, plain.solved_round);
            assert_eq!(record.transmissions, report.metrics.transmissions);
            assert_eq!(record.listens, report.metrics.listens);
            assert_eq!(record.rounds, report.rounds_executed);
            assert_eq!(record.solved_round, report.solved_round);
        }
        assert_eq!(pairs[2].1.seed, 44);
    }

    #[test]
    fn observed_trials_match_bare_and_tally_into_the_hub() {
        let bare: Vec<_> = run_trials(6, 42, build)
            .iter()
            .map(RunReport::summary)
            .collect();
        let hub = MetricsHub::new(3);
        let observed: Vec<_> = run_trials_observed(6, 42, &hub, build)
            .iter()
            .map(RunReport::summary)
            .collect();
        assert_eq!(bare, observed, "telemetry perturbed the runs");
        let snap = hub.snapshot();
        assert_eq!(snap.registry.counter("engine_runs_total"), 6);
        assert_eq!(snap.registry.counter("engine_solved_total"), 6);
        let rounds: u64 = run_trials(6, 42, build)
            .iter()
            .map(|r| r.rounds_executed)
            .sum();
        assert_eq!(snap.registry.counter("engine_rounds_total"), rounds);
    }

    #[test]
    fn single_trial_works() {
        assert_eq!(run_trials(1, 0, build).len(), 1);
    }

    #[test]
    fn traffic_trials_are_deterministic_and_seed_indexed() {
        use crate::config::CdMode;
        use crate::traffic::{ArrivalProcess, BackoffMac};
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.3 }, 80);
        let run = |base| {
            run_traffic_trials(
                5,
                base,
                &spec,
                |seed| SimConfig::new(2).seed(seed).max_rounds(100_000),
                |_| CdMode::Strong,
                |pkt| BackoffMac::new(2, 64, pkt),
            )
        };
        let a = run(300);
        assert_eq!(a, run(300));
        assert_ne!(a, run(301), "different base seed, different traffic");
        // Trial i is exactly the solo run at seed base + i.
        let solo = crate::traffic::run_traffic(
            SimConfig::new(2).seed(303).max_rounds(100_000),
            CdMode::Strong,
            &spec,
            |pkt| BackoffMac::new(2, 64, pkt),
        )
        .unwrap();
        assert_eq!(a[3], solo);
    }

    #[test]
    fn observed_traffic_trials_match_bare_and_tally_into_the_hub() {
        use crate::config::CdMode;
        use crate::traffic::{ArrivalProcess, BackoffMac};
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.4 }, 60);
        let config = |seed| SimConfig::new(2).seed(seed).max_rounds(100_000);
        let bare = run_traffic_trials(
            4,
            7,
            &spec,
            config,
            |_| CdMode::Strong,
            |pkt| BackoffMac::new(2, 64, pkt),
        );
        let hub = MetricsHub::new(2);
        let observed = run_traffic_trials_observed(
            4,
            7,
            &hub,
            &spec,
            config,
            |_| CdMode::Strong,
            |pkt| BackoffMac::new(2, 64, pkt),
        );
        assert_eq!(bare, observed, "telemetry perturbed the traffic runs");
        let snap = hub.snapshot();
        assert_eq!(snap.registry.counter("traffic_runs_total"), 4);
        let offered: u64 = bare.iter().map(|r| r.offered).sum();
        let delivered: u64 = bare.iter().map(|r| r.delivered).sum();
        assert_eq!(snap.registry.counter("traffic_offered_total"), offered);
        assert_eq!(snap.registry.counter("traffic_delivered_total"), delivered);
        assert_eq!(
            snap.registry.histograms()["traffic_packet_latency_rounds"].count(),
            delivered
        );
    }

    #[test]
    fn guarded_verdict_classifies_all_outcomes() {
        assert_eq!(guarded_verdict(|| Ok(Some(7u64))), TrialVerdict::Solved(7));
        assert_eq!(
            guarded_verdict::<u64>(|| Ok(None)),
            TrialVerdict::Wedged(WedgeCause::Unsolved)
        );
        assert_eq!(
            guarded_verdict::<u64>(|| Err(SimError::BudgetExhausted {
                budget: 500,
                solved: false,
            })),
            TrialVerdict::Wedged(WedgeCause::BudgetExhausted)
        );
        assert_eq!(
            guarded_verdict::<u64>(|| Err(SimError::Timeout { max_rounds: 9 })),
            TrialVerdict::Wedged(WedgeCause::Timeout)
        );
        assert_eq!(
            guarded_verdict::<u64>(|| Err(SimError::NoNodes)),
            TrialVerdict::Failed(SimError::NoNodes)
        );
    }

    #[test]
    fn guarded_verdict_isolates_panics_with_message() {
        let verdict = guarded_verdict::<u64>(|| panic!("invariant broke at round {}", 42));
        match &verdict {
            TrialVerdict::Wedged(WedgeCause::Panicked(msg)) => {
                assert!(msg.contains("invariant broke at round 42"), "{msg}");
            }
            other => panic!("expected a panicked wedge, got {other:?}"),
        }
        assert!(verdict.is_wedged());
        assert_eq!(verdict.solved(), None);
    }

    // The seed-carrying message is printed by the worker thread; the scope
    // re-panics with its own payload, so only the panic itself is asserted.
    #[test]
    #[should_panic]
    fn failing_trial_panics_with_seed() {
        let build = |seed: u64| {
            let mut engine = Engine::new(SimConfig::new(1).seed(seed).max_rounds(2));
            // Two steady transmitters collide forever: guaranteed timeout.
            struct Always;
            impl Protocol for Always {
                type Msg = u8;
                fn act(&mut self, _c: &RoundContext, _r: &mut SmallRng) -> Action<u8> {
                    Action::transmit(ChannelId::PRIMARY, 0)
                }
                fn observe(&mut self, _c: &RoundContext, _f: Feedback<u8>, _r: &mut SmallRng) {}
                fn status(&self) -> Status {
                    Status::Active
                }
            }
            engine.add_node(Always);
            engine.add_node(Always);
            engine
        };
        let _ = run_trials(2, 0, build);
    }
}
