//! The round engine: the per-round hot loop of the simulator.
//!
//! [`Engine`] runs a population of [`Protocol`] state machines over shared
//! channels, one synchronous round at a time, on preallocated scratch — the
//! steady-state loop performs no heap allocation and clones a transmitted
//! message only when a participant actually receives it.
//!
//! The engine is the bottom of a three-layer architecture:
//!
//! * **engine** (this module) — wakes nodes, collects actions, resolves
//!   channels, detects the solve, advances the round;
//! * **feedback** ([`crate::feedback`]) — a pluggable [`FeedbackModel`]
//!   decides what each node hears; the paper's collision-detection modes
//!   ([`CdMode`]) are the default model;
//! * **observation** ([`crate::sink`]) — [`EventSink`] observers
//!   ([`Metrics`], [`Trace`], or anything user-supplied via
//!   [`Engine::run_observed`]) record what happened.
//!
//! # Active-set scheduling
//!
//! The paper's regime is a huge namespace `n` of *possible* nodes of which
//! only a small unknown subset `A` is ever active. The engine therefore
//! never iterates "all nodes" per round: each node slot carries a
//! [`SlotState`] and the round loop touches only the **live set** — a
//! NodeId-ordered vector of the currently schedulable node indices — fed
//! by a *wake agenda* (slots indexed by scheduled wake round, drained as
//! the clock passes them) and drained by *retirement* (terminated or
//! crashed slots are compacted out at the end of the round). Per-round
//! cost is `O(|live| + dirty channels)` regardless of how many slots were
//! ever added; see `docs/MODEL.md` for the complexity table and
//! [`crate::dense`] for the O(n) reference scheduler the equivalence
//! suite pins this against.
//!
//! **Ordering contract.** The live set is kept sorted by [`NodeId`] at all
//! times, so acting, delivery, and event-sink order are exactly the
//! insertion order of the dense scan they replaced — this is load-bearing
//! for bit-determinism, because seeded fault layers
//! ([`crate::fault::NoisyCd`]) consume their RNG stream in delivery
//! order. Reports ([`RunReport::leaders`], [`RunReport::active_remaining`])
//! are produced by a NodeId-ordered slot scan, independent of live-set
//! internals.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::action::Action;
use crate::channel::{ChannelId, ChannelOutcome, OutcomeKind};
use crate::config::{CdMode, SimConfig, StopWhen};
use crate::error::SimError;
use crate::feedback::{ChannelState, FeedbackModel};
use crate::metrics::Metrics;
use crate::protocol::{Protocol, RoundContext, Status};
use crate::rng::derive_node_seed;
use crate::sink::EventSink;
use crate::trace::{Trace, TraceLevel};

/// Index of a node within an [`Engine`], assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Scheduler lifecycle of one node slot.
///
/// The state machine replaces the old `woken` boolean (plus the implicit
/// "status says terminated" and "fault layer says crashed" side channels)
/// with one explicit enum, so illegal combinations — a crashed node that
/// still transmits, a terminated node that re-enters the round loop — are
/// unrepresentable. All transitions go through the engine's single
/// retirement/wake path:
///
/// ```text
/// Pending ──wake agenda──▶ Live ──status terminated──▶ Terminated
///    │                      │
///    └──────fault layer─────┴──────────────────────▶ Crashed
/// ```
///
/// `Terminated` and `Crashed` are absorbing: retired slots keep their
/// final protocol state readable via [`Engine::node`] but are never
/// scheduled again (which is also the documented [`Protocol::status`]
/// contract — termination is permanent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotState {
    /// Scheduled on the wake agenda; `on_wake` has not run yet.
    Pending,
    /// In the live set: acts, is delivered feedback, and observes.
    Live,
    /// Retired by its own protocol reporting a terminated
    /// [`Status`](crate::Status).
    Terminated,
    /// Retired by a fault layer ([`crate::fault::CrashStop`]); the
    /// protocol was never informed and its status stays whatever it was.
    Crashed,
}

impl SlotState {
    /// Whether the slot is retired (terminated or crashed) — i.e. it will
    /// never be scheduled again.
    #[must_use]
    pub fn is_retired(self) -> bool {
        matches!(self, SlotState::Terminated | SlotState::Crashed)
    }
}

impl fmt::Display for SlotState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SlotState::Pending => "pending",
            SlotState::Live => "live",
            SlotState::Terminated => "terminated",
            SlotState::Crashed => "crashed",
        })
    }
}

struct NodeSlot<P> {
    protocol: P,
    rng: SmallRng,
    start_round: u64,
    state: SlotState,
}

/// The cheap result of a run: solve data only, no metrics or trace clones.
///
/// Returned by [`Engine::run_summary`]; callers that need transmission
/// counts, phase breakdowns, leaders, or traces use [`Engine::run`] and get
/// a full [`RunReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// The first round (0-based) in which exactly one node transmitted on
    /// the primary channel — or `None` if the run ended without solving.
    pub solved_round: Option<u64>,
    /// The node that made that lone primary-channel transmission.
    pub solver: Option<NodeId>,
    /// Total rounds executed before stopping.
    pub rounds_executed: u64,
}

impl RunSummary {
    /// Rounds needed to solve the problem: `solved_round + 1` (round numbers
    /// are 0-based but "solved in r rounds" counts rounds). `None` if the
    /// run never solved the problem.
    #[must_use]
    pub fn rounds_to_solve(&self) -> Option<u64> {
        self.solved_round.map(|r| r + 1)
    }

    /// Returns `true` if the run solved contention resolution.
    #[must_use]
    pub fn is_solved(&self) -> bool {
        self.solved_round.is_some()
    }
}

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The first round (0-based) in which exactly one node transmitted on
    /// the primary channel, i.e. the round the problem was solved — or
    /// `None` if the run ended without solving it.
    pub solved_round: Option<u64>,
    /// The node that made that lone primary-channel transmission.
    pub solver: Option<NodeId>,
    /// Total rounds executed before stopping.
    pub rounds_executed: u64,
    /// Nodes whose final status is [`Status::Leader`].
    pub leaders: Vec<NodeId>,
    /// Nodes still [`Status::Active`] when the run stopped.
    pub active_remaining: Vec<NodeId>,
    /// Transmission counts and per-phase round accounting (zeroed when
    /// [`SimConfig::record_metrics`] is off).
    pub metrics: Metrics,
    /// The recorded trace, empty unless tracing was enabled.
    pub trace: Trace,
}

impl RunReport {
    /// Rounds needed to solve the problem: `solved_round + 1` (round numbers
    /// are 0-based but "solved in r rounds" counts rounds). `None` if the
    /// run never solved the problem.
    #[must_use]
    pub fn rounds_to_solve(&self) -> Option<u64> {
        self.solved_round.map(|r| r + 1)
    }

    /// Returns `true` if the run solved contention resolution.
    #[must_use]
    pub fn is_solved(&self) -> bool {
        self.solved_round.is_some()
    }

    /// This report's solve data as a [`RunSummary`].
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            solved_round: self.solved_round,
            solver: self.solver,
            rounds_executed: self.rounds_executed,
        }
    }
}

/// Result of one [`Engine::step`]: is the run's stop condition met?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The stop condition is not yet met; more rounds may follow.
    Running,
    /// The stop condition is met; further `step` calls are no-ops.
    Finished,
}

/// Mutable per-run bookkeeping, kept inside the engine so execution can
/// proceed one round at a time ([`Engine::step`]) with full state
/// inspection between rounds.
struct RunState {
    metrics: Metrics,
    trace: Trace,
    solved_round: Option<u64>,
    solver: Option<NodeId>,
    /// Packets delivered under [`SimConfig::continuous_delivery`]; stays 0
    /// in one-shot mode.
    deliveries: u64,
    round: u64,
    finished: bool,
}

/// Runs a population of [`Protocol`] state machines over shared channels.
///
/// Execution can be driven three ways:
///
/// * [`Engine::run`] — loop to the configured stop condition (the common
///   case); [`Engine::run_summary`] is the same loop returning only the
///   cheap [`RunSummary`];
/// * [`Engine::run_observed`] — like `run`, streaming events into a
///   caller-supplied [`EventSink`];
/// * [`Engine::step`] / [`Engine::step_observed`] — advance exactly one
///   round, inspect node state via [`Engine::node`] / [`Engine::report`],
///   repeat. Used by invariant audits that need to see protocols mid-flight.
///
/// The second type parameter is the [`FeedbackModel`]; [`Engine::new`]
/// installs the [`CdMode`] from the configuration, and
/// [`Engine::with_feedback`] accepts any custom model.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Engine<P: Protocol, F: FeedbackModel = CdMode> {
    config: SimConfig,
    feedback: F,
    nodes: Vec<NodeSlot<P>>,
    run: RunState,
    /// Highest `start_round` over all nodes, maintained on insertion.
    latest_wake: u64,
    /// Slots still [`SlotState::Pending`], including never-wakeable ones
    /// (a slot added with a `start_round` already in the past never fires).
    unwoken: usize,
    /// The wake agenda: pending slot indices keyed by scheduled wake
    /// round, drained with one `O(log W)` lookup per round instead of an
    /// `O(n)` scan.
    agenda: BTreeMap<u64, Vec<usize>>,
    /// The live set: indices of [`SlotState::Live`] slots, always sorted
    /// in NodeId order (see the module docs' ordering contract). The
    /// per-round loops iterate this instead of `nodes`.
    live: Vec<usize>,
    /// Slots in [`SlotState::Crashed`]; blocks the all-terminated stop
    /// condition exactly like the still-`Active` status of a crashed node
    /// used to.
    crashed_count: usize,
    /// Whether any live slot retired this round (live set needs compaction).
    retired_this_round: bool,
    /// Reusable buffer for [`FeedbackModel::drain_crashed`].
    crash_buf: Vec<NodeId>,
    actions: Vec<(usize, Action<P::Msg>)>,
    // Reusable per-channel scratch, indexed by `ChannelId::index()`.
    tx_count: Vec<u32>,
    rx_count: Vec<u32>,
    /// Index into `actions` of the lone transmitter per channel
    /// (`usize::MAX` when the channel has zero or multiple transmitters).
    lone_act: Vec<usize>,
    dirty: Vec<usize>,
    /// Reusable buffer for per-round channel outcomes.
    outcomes: Vec<ChannelOutcome>,
}

impl<P: Protocol> Engine<P> {
    /// Creates an engine for the given configuration with no nodes yet,
    /// using the configuration's [`CdMode`] as the feedback model.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let cd_mode = config.cd_mode;
        Engine::with_feedback(config, cd_mode)
    }
}

impl<P: Protocol, F: FeedbackModel> Engine<P, F> {
    /// Creates an engine with a custom [`FeedbackModel`] (an adversarial or
    /// noisy radio layer; see [`crate::adversary::JammedChannel`]).
    ///
    /// The model replaces the configuration's `cd_mode` entirely — it alone
    /// decides what nodes hear. The model is bound to the configuration
    /// here ([`FeedbackModel::bind`]), which is where seeded fault models
    /// ([`crate::fault`]) derive their RNG streams from the master seed.
    #[must_use]
    pub fn with_feedback(config: SimConfig, mut feedback: F) -> Self {
        feedback.bind(&config);
        let c = config.channels as usize;
        Engine {
            config,
            feedback,
            nodes: Vec::new(),
            run: RunState {
                metrics: Metrics::new(0),
                trace: Trace::new(),
                solved_round: None,
                solver: None,
                deliveries: 0,
                round: 0,
                finished: false,
            },
            latest_wake: 0,
            unwoken: 0,
            agenda: BTreeMap::new(),
            live: Vec::new(),
            crashed_count: 0,
            retired_this_round: false,
            crash_buf: Vec::new(),
            actions: Vec::new(),
            tx_count: vec![0; c],
            rx_count: vec![0; c],
            lone_act: vec![usize::MAX; c],
            dirty: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// The configuration this engine runs with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The feedback model, e.g. for post-run adversary inspection.
    #[must_use]
    pub fn feedback(&self) -> &F {
        &self.feedback
    }

    /// Adds a node that wakes in round 0. Returns its id.
    pub fn add_node(&mut self, protocol: P) -> NodeId {
        self.add_node_at(protocol, 0)
    }

    /// Adds a node that wakes in round `start_round`. Returns its id.
    ///
    /// Staggered wake-ups model the harder non-simultaneous variant of the
    /// problem discussed in §3 of the paper. May also be called *mid-run*
    /// (between [`Engine::step`] calls) to inject arrivals incrementally —
    /// the [`crate::traffic`] layer does exactly that: the new slot lands
    /// in its agenda bucket in O(log W) without touching the live set, and
    /// a latched stop condition is re-armed, since a population with a
    /// pending slot is no longer all-terminated.
    pub fn add_node_at(&mut self, protocol: P, start_round: u64) -> NodeId {
        self.run.finished = false;
        let id = NodeId(self.nodes.len());
        let seed = derive_node_seed(self.config.master_seed, id.0 as u64);
        self.nodes.push(NodeSlot {
            protocol,
            rng: SmallRng::seed_from_u64(seed),
            start_round,
            state: SlotState::Pending,
        });
        self.latest_wake = self.latest_wake.max(start_round);
        self.unwoken += 1;
        // Nodes are added in NodeId order, so each agenda bucket stays
        // NodeId-sorted by construction — which keeps wake-time merges
        // into the live set cheap and order-stable.
        self.agenda.entry(start_round).or_default().push(id.0);
        self.run.metrics.transmissions_per_node.push(0);
        id
    }

    /// The scheduler state of a node's slot — e.g. for debugging a run
    /// mid-flight between [`Engine::step`] calls, or for fault post-mortems
    /// (a [`SlotState::Crashed`] node's protocol was never told it died).
    #[must_use]
    pub fn slot_state(&self, id: NodeId) -> SlotState {
        self.nodes[id.0].state
    }

    /// Number of currently live (schedulable) nodes. Per-round work is
    /// proportional to this, not to [`Engine::len`].
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Number of [`SlotState::Pending`] slots: added but not yet woken.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.unwoken
    }

    /// Packets delivered so far under [`SimConfig::continuous_delivery`]
    /// (one per lone primary-channel transmission the feedback model let
    /// through). Always 0 in one-shot mode.
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.run.deliveries
    }

    /// Number of nodes added.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's protocol, e.g. for post-run assertions.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.0].protocol
    }

    /// Iterates over all node protocols in id order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter().map(|slot| &slot.protocol)
    }

    /// The single retirement transition: every path that removes a node
    /// from scheduling — the park path (protocol terminated) and the fault
    /// path (crash-stop) — funnels through here, so the `SlotState`
    /// machine and the scheduler counters can never disagree.
    ///
    /// Retiring an already-retired slot is a no-op (fault layers may
    /// announce the same victim more than once); out-of-range ids from a
    /// misconfigured fault schedule are ignored. Returns whether a slot
    /// actually transitioned, so callers holding the event sink can
    /// report exactly one retirement per node.
    fn retire(&mut self, idx: usize, to: SlotState) -> bool {
        debug_assert!(to.is_retired());
        let Some(slot) = self.nodes.get_mut(idx) else {
            return false;
        };
        match slot.state {
            SlotState::Pending => {
                // Died before it ever woke: drop it from the wake path.
                // Its agenda entry stays behind and is skipped (cheaply)
                // when the bucket drains.
                slot.state = to;
                self.unwoken -= 1;
                if to == SlotState::Crashed {
                    self.crashed_count += 1;
                }
                true
            }
            SlotState::Live => {
                slot.state = to;
                self.retired_this_round = true;
                if to == SlotState::Crashed {
                    self.crashed_count += 1;
                }
                true
            }
            SlotState::Terminated | SlotState::Crashed => false,
        }
    }

    /// Compacts retired slots out of the live set, preserving NodeId
    /// order (`retain` is stable). Called at most once per round, only
    /// when [`Engine::retire`] actually retired a live slot.
    fn compact_live(&mut self) {
        let nodes = &self.nodes;
        self.live.retain(|&idx| nodes[idx].state == SlotState::Live);
        self.retired_this_round = false;
    }

    /// Runs rounds until the configured stop condition is met.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoNodes`] if no node was added;
    /// * [`SimError::ChannelOutOfRange`] if a protocol picks an invalid
    ///   channel;
    /// * [`SimError::Timeout`] if `max_rounds` elapse without meeting the
    ///   stop condition.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        self.run_observed(&mut ())
    }

    /// Like [`Engine::run`], but returns only the cheap [`RunSummary`] —
    /// no [`Metrics`] or [`Trace`] clones.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`].
    pub fn run_summary(&mut self) -> Result<RunSummary, SimError> {
        self.run_to_finish(&mut ())?;
        Ok(self.summary())
    }

    /// Like [`Engine::run`], but streams events into `sink` as the run
    /// executes (in addition to the built-in metrics/trace observers).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`].
    pub fn run_observed<S: EventSink>(&mut self, sink: &mut S) -> Result<RunReport, SimError> {
        self.run_to_finish(sink)?;
        Ok(self.report())
    }

    fn run_to_finish<S: EventSink>(&mut self, sink: &mut S) -> Result<(), SimError> {
        while !self.run.finished {
            if self.run.round >= self.config.max_rounds {
                return Err(SimError::Timeout {
                    max_rounds: self.config.max_rounds,
                });
            }
            self.step_observed(sink)?;
        }
        Ok(())
    }

    /// Executes exactly one round (waking, acting, channel resolution,
    /// feedback, stop-condition check). Returns whether the stop condition
    /// has been met; once it has, further calls change nothing and keep
    /// returning [`StepStatus::Finished`].
    ///
    /// `step` ignores `max_rounds` — the cap belongs to [`Engine::run`]'s
    /// loop; a manual driver decides its own limits.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoNodes`] if no node was added;
    /// * [`SimError::ChannelOutOfRange`] if a protocol picks an invalid
    ///   channel.
    pub fn step(&mut self) -> Result<StepStatus, SimError> {
        self.step_observed(&mut ())
    }

    /// Like [`Engine::step`], but streams the round's events into `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::step`].
    pub fn step_observed<S: EventSink>(&mut self, sink: &mut S) -> Result<StepStatus, SimError> {
        if self.nodes.is_empty() {
            return Err(SimError::NoNodes);
        }
        if self.run.finished {
            return Ok(StepStatus::Finished);
        }
        // The round-budget watchdog: enforced here (not only in `run`'s
        // loop) so fault-injected runs driven manually via `step` also
        // terminate with a structured error instead of spinning.
        if let Some(budget) = self.config.round_budget {
            if self.run.round >= budget {
                return Err(SimError::BudgetExhausted {
                    budget,
                    solved: self.run.solved_round.is_some(),
                });
            }
        }
        let round = self.run.round;
        let record_metrics = self.config.record_metrics;
        self.feedback.begin_round(round);

        // Fault-layer retirements: crash-stop models report who died so the
        // engine can retire the slots through the same transition the park
        // path uses. Drained before wake-ups, so a node crashed at (or
        // before) its wake round never enters the live set, and a live
        // victim stops being scheduled from this round on — exactly when
        // its actions used to start being filtered to `Sleep`.
        let mut crash_buf = std::mem::take(&mut self.crash_buf);
        self.feedback.drain_crashed(&mut crash_buf);
        for id in crash_buf.drain(..) {
            if self.retire(id.0, SlotState::Crashed) {
                sink.on_retired(round, id, SlotState::Crashed);
            }
        }
        self.crash_buf = crash_buf;
        if self.retired_this_round {
            self.compact_live();
        }

        // Wake-ups scheduled for this round: one agenda lookup, touching
        // only the slots that actually wake now.
        if self.unwoken > 0 {
            if let Some(batch) = self.agenda.remove(&round) {
                let mut appended = 0usize;
                for idx in batch {
                    let slot = &mut self.nodes[idx];
                    if slot.state != SlotState::Pending {
                        continue; // crashed before it ever woke
                    }
                    slot.state = SlotState::Live;
                    self.unwoken -= 1;
                    let ctx = RoundContext {
                        round,
                        local_round: 0,
                        channels: self.config.channels,
                    };
                    slot.protocol.on_wake(&ctx, &mut slot.rng);
                    if slot.protocol.status().is_terminated() {
                        // Terminated inside on_wake: park without ever
                        // entering the live set.
                        slot.state = SlotState::Terminated;
                        sink.on_retired(round, NodeId(idx), SlotState::Terminated);
                        continue;
                    }
                    self.live.push(idx);
                    appended += 1;
                }
                // Restore the NodeId ordering contract. Agenda buckets are
                // NodeId-sorted, so appending is already correct unless a
                // later wake round brings in smaller ids than the tail.
                if appended > 0 {
                    let split = self.live.len() - appended;
                    if split > 0 && self.live[split - 1] > self.live[split] {
                        self.live.sort_unstable();
                    }
                }
            }
        }

        // Phase accounting: the paper's algorithms keep all active nodes
        // in lockstep, so the first live node (lowest NodeId, by the
        // ordering contract) is representative. Sinks that opt into
        // per-node labels (`wants_node_phases`) get each acting node's own
        // label instead — exact under staggered wake-ups, where the
        // representative label misattributes rounds.
        let phase = self
            .live
            .first()
            .map_or("idle", |&idx| self.nodes[idx].protocol.phase());
        let node_phases = sink.wants_node_phases();

        // Collect actions from the live set only — every live slot is
        // schedulable by invariant, so no per-node status filtering.
        self.actions.clear();
        for li in 0..self.live.len() {
            let idx = self.live[li];
            let slot = &mut self.nodes[idx];
            let ctx = RoundContext {
                round,
                local_round: round - slot.start_round,
                channels: self.config.channels,
            };
            let action = slot.protocol.act(&ctx, &mut slot.rng);
            if let Some(channel) = action.channel() {
                if channel.get() > self.config.channels {
                    return Err(SimError::ChannelOutOfRange {
                        node: NodeId(idx),
                        round,
                        channel,
                        channels: self.config.channels,
                    });
                }
            }
            // The fault layer's physical hook: jamming/erasure models may
            // still rewrite actions (identity for clean models).
            let action = self.feedback.filter_action(NodeId(idx), action);
            self.actions.push((idx, action));
        }

        // Resolve channels on the reusable scratch.
        for &d in &self.dirty {
            self.tx_count[d] = 0;
            self.rx_count[d] = 0;
            self.lone_act[d] = usize::MAX;
        }
        self.dirty.clear();
        for (ai, (idx, action)) in self.actions.iter().enumerate() {
            match action {
                Action::Transmit { channel, .. } => {
                    let ci = channel.index();
                    if self.tx_count[ci] == 0 && self.rx_count[ci] == 0 {
                        self.dirty.push(ci);
                    }
                    self.tx_count[ci] += 1;
                    self.lone_act[ci] = if self.tx_count[ci] == 1 {
                        ai
                    } else {
                        usize::MAX
                    };
                    if record_metrics {
                        self.run
                            .metrics
                            .on_transmission(round, NodeId(*idx), *channel, phase);
                    }
                    // Per-node labels are read *after* `act`, so the label
                    // names the phase that actually produced the action
                    // (matching `PhaseMeter`'s attribution).
                    let label = if node_phases {
                        self.nodes[*idx].protocol.phase()
                    } else {
                        phase
                    };
                    sink.on_transmission(round, NodeId(*idx), *channel, label);
                }
                Action::Listen { channel } => {
                    let ci = channel.index();
                    if self.tx_count[ci] == 0 && self.rx_count[ci] == 0 {
                        self.dirty.push(ci);
                    }
                    self.rx_count[ci] += 1;
                    if record_metrics {
                        self.run
                            .metrics
                            .on_listen(round, NodeId(*idx), *channel, phase);
                    }
                    let label = if node_phases {
                        self.nodes[*idx].protocol.phase()
                    } else {
                        phase
                    };
                    sink.on_listen(round, NodeId(*idx), *channel, label);
                }
                Action::Sleep => {}
            }
        }

        // Solve detection: exactly one transmitter on the *physical*
        // primary channel. The candidate solver is always a real physical
        // transmitter (crashed nodes were retired before acting, so faults
        // cannot manufacture a spurious solve), and the feedback model may
        // still veto a round it jammed, erased, or assassinated.
        //
        // In one-shot mode the detection latches once; with
        // `continuous_delivery` every such round is a packet delivery, and
        // the solver is force-retired below so the channel frees up for the
        // next arrival.
        let primary = ChannelId::PRIMARY.index();
        let mut delivered: Option<usize> = None;
        if self.tx_count[primary] == 1
            && (self.run.solved_round.is_none() || self.config.continuous_delivery)
        {
            let solver_idx = self.actions[self.lone_act[primary]].0;
            let solver = NodeId(solver_idx);
            if self.feedback.allows_solve(solver) {
                if self.run.solved_round.is_none() {
                    self.run.solved_round = Some(round);
                    self.run.solver = Some(solver);
                }
                if self.config.continuous_delivery {
                    self.run.deliveries += 1;
                    delivered = Some(solver_idx);
                }
                sink.on_solved(round, solver);
            }
        }

        // Close the round out through the observation layer. Channel
        // outcomes are built (on the reusable buffer) only if an attached
        // observer reads them.
        let tracing = self.config.trace_level == TraceLevel::Channels;
        self.outcomes.clear();
        if tracing || sink.wants_outcomes() {
            self.dirty.sort_unstable();
            for &ci in &self.dirty {
                self.outcomes.push(ChannelOutcome {
                    channel: ChannelId::new(ci as u32 + 1),
                    kind: OutcomeKind::from_transmitters(self.tx_count[ci] as usize),
                    transmitters: self.tx_count[ci] as usize,
                    listeners: self.rx_count[ci] as usize,
                });
            }
        }
        if record_metrics {
            self.run.metrics.on_round(round, phase, &self.outcomes);
        }
        if tracing {
            self.run.trace.on_round(round, phase, &self.outcomes);
        }
        sink.on_round(round, phase, &self.outcomes);

        // Deliver feedback. The actions buffer is moved out so the borrow
        // checker can see it is disjoint from the node slots; it is moved
        // back afterwards, so its capacity is reused across rounds.
        let actions = std::mem::take(&mut self.actions);
        {
            let state = ChannelState {
                tx_count: &self.tx_count,
                rx_count: &self.rx_count,
                actions: &actions,
                lone_act: &self.lone_act,
            };
            for (idx, action) in &actions {
                let feedback = self.feedback.deliver(action, &state);
                let slot = &mut self.nodes[*idx];
                let ctx = RoundContext {
                    round,
                    local_round: round - slot.start_round,
                    channels: self.config.channels,
                };
                slot.protocol.observe(&ctx, feedback, &mut slot.rng);
            }
        }
        self.actions = actions;

        // A delivered packet's sender is done regardless of what its
        // protocol could observe (under weak CD a transmitter cannot tell
        // it succeeded): the engine retires it through the same shared
        // transition the park and fault paths use.
        if let Some(idx) = delivered {
            if self.retire(idx, SlotState::Terminated) {
                sink.on_retired(round, NodeId(idx), SlotState::Terminated);
            }
        }

        // Park: retire live slots whose protocol terminated this round, so
        // they drop out of the per-round loops for good. This is the same
        // shared transition the fault path uses (`retire`), keeping the
        // `SlotState` machine single-sourced.
        for li in 0..self.live.len() {
            let idx = self.live[li];
            if self.nodes[idx].protocol.status().is_terminated()
                && self.retire(idx, SlotState::Terminated)
            {
                sink.on_retired(round, NodeId(idx), SlotState::Terminated);
            }
        }
        if self.retired_this_round {
            self.compact_live();
        }

        self.run.round += 1;

        // Stop conditions — O(1) from the scheduler's counters: no slot is
        // pending, none is live, and none is crashed (a crashed node never
        // reports a terminated status, exactly as before the refactor).
        let all_terminated = self.run.round > self.latest_wake
            && self.unwoken == 0
            && self.live.is_empty()
            && self.crashed_count == 0;
        let finished = match self.config.stop_when {
            // The deadlock guard: everyone terminated without solving also
            // ends a Solved-mode run.
            StopWhen::Solved => self.run.solved_round.is_some() || all_terminated,
            StopWhen::AllTerminated => all_terminated,
        };
        self.run.finished = finished;
        if finished {
            if record_metrics {
                self.run.metrics.on_finished(self.run.round);
            }
            if tracing {
                self.run.trace.on_finished(self.run.round);
            }
            sink.on_finished(self.run.round);
        }
        Ok(if finished {
            StepStatus::Finished
        } else {
            StepStatus::Running
        })
    }

    /// The current round number: how many rounds have been executed so far.
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.run.round
    }

    /// Whether the stop condition has been met.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.run.finished
    }

    /// A snapshot of the solve data so far — callable at any point, also
    /// mid-run between [`Engine::step`] calls. Never clones.
    #[must_use]
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            solved_round: self.run.solved_round,
            solver: self.run.solver,
            rounds_executed: self.run.round,
        }
    }

    /// A snapshot report of the run so far — callable at any point, also
    /// mid-run between [`Engine::step`] calls.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let leaders = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.protocol.status() == Status::Leader)
            .map(|(idx, _)| NodeId(idx))
            .collect();
        // NodeId-ordered slot scan (not live-set iteration): report order
        // is part of the record schema and must not depend on scheduler
        // internals. Crashed slots count as still-active — the node never
        // terminated, the radio just lost it.
        let active_remaining = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, slot)| {
                matches!(slot.state, SlotState::Live | SlotState::Crashed)
                    && slot.protocol.status() == Status::Active
            })
            .map(|(idx, _)| NodeId(idx))
            .collect();

        RunReport {
            solved_round: self.run.solved_round,
            solver: self.run.solver,
            rounds_executed: self.run.round,
            leaders,
            active_remaining,
            metrics: self.run.metrics.clone(),
            trace: self.run.trace.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Feedback;
    use crate::sink::EventSink;

    /// What a test node does every round.
    enum Role {
        /// Transmit a fixed payload on a fixed channel, forever.
        Tx(ChannelId, u8),
        /// Listen on a fixed channel, forever.
        Rx(ChannelId),
        /// Terminate immediately with the given status.
        Quit(Status),
    }

    /// A single configurable test protocol, so engines can host mixtures.
    struct Rig {
        role: Role,
        heard: Vec<Feedback<u8>>,
    }

    impl Rig {
        fn tx(channel: ChannelId, payload: u8) -> Self {
            Rig {
                role: Role::Tx(channel, payload),
                heard: Vec::new(),
            }
        }
        fn rx(channel: ChannelId) -> Self {
            Rig {
                role: Role::Rx(channel),
                heard: Vec::new(),
            }
        }
        fn quit(status: Status) -> Self {
            Rig {
                role: Role::Quit(status),
                heard: Vec::new(),
            }
        }
    }

    impl Protocol for Rig {
        type Msg = u8;
        fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u8> {
            match self.role {
                Role::Tx(channel, payload) => Action::transmit(channel, payload),
                Role::Rx(channel) => Action::listen(channel),
                Role::Quit(_) => Action::Sleep,
            }
        }
        fn observe(&mut self, _ctx: &RoundContext, fb: Feedback<u8>, _rng: &mut SmallRng) {
            self.heard.push(fb);
        }
        fn status(&self) -> Status {
            match self.role {
                Role::Quit(status) => status,
                _ => Status::Active,
            }
        }
    }

    #[test]
    fn lone_primary_transmitter_solves_in_round_zero() {
        let mut engine = Engine::new(SimConfig::new(4));
        let id = engine.add_node(Rig::tx(ChannelId::PRIMARY, 42));
        let report = engine.run().unwrap();
        assert_eq!(report.solved_round, Some(0));
        assert_eq!(report.solver, Some(id));
        assert_eq!(report.rounds_to_solve(), Some(1));
        assert!(report.is_solved());
        assert_eq!(report.rounds_executed, 1);
    }

    #[test]
    fn two_primary_transmitters_collide_forever_and_time_out() {
        let mut engine = Engine::new(SimConfig::new(4).max_rounds(50));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 2));
        let err = engine.run().unwrap_err();
        assert_eq!(err, SimError::Timeout { max_rounds: 50 });
    }

    #[test]
    fn lone_transmitter_on_secondary_channel_does_not_solve() {
        let mut engine = Engine::new(SimConfig::new(4).max_rounds(10));
        engine.add_node(Rig::tx(ChannelId::new(2), 1));
        let err = engine.run().unwrap_err();
        assert_eq!(err, SimError::Timeout { max_rounds: 10 });
    }

    #[test]
    fn listener_hears_message_then_collision() {
        // Round-by-round content check with a staggered second beacon.
        let mut engine = Engine::new(
            SimConfig::new(4)
                .max_rounds(3)
                .stop_when(StopWhen::AllTerminated),
        );
        engine.add_node(Rig::tx(ChannelId::new(2), 7));
        engine.add_node_at(Rig::tx(ChannelId::new(2), 8), 1);
        let ear = engine.add_node(Rig::rx(ChannelId::new(2)));
        // Nothing terminates, so this will time out; inspect state afterwards.
        let _ = engine.run();
        let heard = &engine.node(ear).heard;
        assert_eq!(heard[0], Feedback::Message(7));
        assert_eq!(heard[1], Feedback::Collision);
        assert_eq!(heard[2], Feedback::Collision);
    }

    #[test]
    fn transmitter_detects_collision_under_strong_cd() {
        let mut engine = Engine::new(SimConfig::new(2).max_rounds(1));
        let a = engine.add_node(Rig::tx(ChannelId::new(2), 1));
        let b = engine.add_node(Rig::tx(ChannelId::new(2), 2));
        let _ = engine.run();
        assert_eq!(engine.node(a).heard[0], Feedback::Collision);
        assert_eq!(engine.node(b).heard[0], Feedback::Collision);
    }

    #[test]
    fn lone_transmitter_hears_own_message_under_strong_cd() {
        let mut engine = Engine::new(SimConfig::new(2).max_rounds(1));
        let a = engine.add_node(Rig::tx(ChannelId::new(2), 9));
        let _ = engine.run();
        assert_eq!(engine.node(a).heard[0], Feedback::Message(9));
    }

    #[test]
    fn receiver_only_cd_blinds_transmitters() {
        let cfg = SimConfig::new(2)
            .max_rounds(1)
            .cd_mode(CdMode::ReceiverOnly);
        let mut engine = Engine::new(cfg);
        let a = engine.add_node(Rig::tx(ChannelId::new(2), 1));
        let b = engine.add_node(Rig::tx(ChannelId::new(2), 2));
        let ear = engine.add_node(Rig::rx(ChannelId::new(2)));
        let _ = engine.run();
        assert_eq!(engine.node(a).heard[0], Feedback::TransmittedBlind);
        assert_eq!(engine.node(b).heard[0], Feedback::TransmittedBlind);
        assert_eq!(engine.node(ear).heard[0], Feedback::Collision);
    }

    #[test]
    fn no_cd_turns_collisions_into_silence_for_listeners() {
        let cfg = SimConfig::new(2).max_rounds(1).cd_mode(CdMode::None);
        let mut engine = Engine::new(cfg);
        engine.add_node(Rig::tx(ChannelId::new(2), 1));
        engine.add_node(Rig::tx(ChannelId::new(2), 2));
        let ear = engine.add_node(Rig::rx(ChannelId::new(2)));
        let _ = engine.run();
        assert_eq!(engine.node(ear).heard[0], Feedback::Silence);
    }

    #[test]
    fn no_cd_still_delivers_lone_messages() {
        let cfg = SimConfig::new(2).max_rounds(1).cd_mode(CdMode::None);
        let mut engine = Engine::new(cfg);
        engine.add_node(Rig::tx(ChannelId::new(2), 5));
        let ear = engine.add_node(Rig::rx(ChannelId::new(2)));
        let _ = engine.run();
        assert_eq!(engine.node(ear).heard[0], Feedback::Message(5));
    }

    #[test]
    fn empty_channel_is_silence() {
        let mut engine = Engine::new(SimConfig::new(2).max_rounds(1));
        let ear = engine.add_node(Rig::rx(ChannelId::new(2)));
        let _ = engine.run();
        assert_eq!(engine.node(ear).heard[0], Feedback::Silence);
    }

    #[test]
    fn out_of_range_channel_is_an_error() {
        let mut engine = Engine::new(SimConfig::new(2).max_rounds(5));
        engine.add_node(Rig::tx(ChannelId::new(3), 0));
        let err = engine.run().unwrap_err();
        assert!(matches!(err, SimError::ChannelOutOfRange { .. }));
    }

    #[test]
    fn no_nodes_is_an_error() {
        let mut engine: Engine<Rig> = Engine::new(SimConfig::new(2));
        assert_eq!(engine.run().unwrap_err(), SimError::NoNodes);
        assert!(engine.is_empty());
        assert_eq!(engine.len(), 0);
    }

    #[test]
    fn all_terminated_without_solving_ends_run() {
        let mut engine = Engine::new(SimConfig::new(2).max_rounds(100));
        engine.add_node(Rig::quit(Status::Inactive));
        let report = engine.run().unwrap();
        assert!(!report.is_solved());
        assert!(report.leaders.is_empty());
        assert!(report.active_remaining.is_empty());
    }

    #[test]
    fn leaders_are_reported() {
        let cfg = SimConfig::new(2)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10);
        let mut engine = Engine::new(cfg);
        let a = engine.add_node(Rig::quit(Status::Leader));
        engine.add_node(Rig::quit(Status::Inactive));
        let report = engine.run().unwrap();
        assert_eq!(report.leaders, vec![a]);
    }

    #[test]
    fn transmission_metrics_count_energy() {
        let mut engine = Engine::new(SimConfig::new(4).max_rounds(3));
        engine.add_node(Rig::tx(ChannelId::new(2), 1));
        engine.add_node(Rig::tx(ChannelId::new(3), 2));
        let err = engine.run().unwrap_err();
        assert_eq!(err, SimError::Timeout { max_rounds: 3 });
        // Re-run with a fresh engine to get a report that includes metrics.
        let mut engine = Engine::new(SimConfig::new(4).max_rounds(3));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        let report = engine.run().unwrap();
        assert_eq!(report.metrics.transmissions, 1);
        assert_eq!(report.metrics.transmissions_per_node, vec![1]);
    }

    #[test]
    fn staggered_wakeup_respects_start_round() {
        let cfg = SimConfig::new(2).max_rounds(5);
        let mut engine = Engine::new(cfg);
        engine.add_node_at(Rig::tx(ChannelId::PRIMARY, 1), 3);
        let report = engine.run().unwrap();
        // The beacon only exists from round 3, so that is the solve round.
        assert_eq!(report.solved_round, Some(3));
    }

    #[test]
    fn trace_records_channel_outcomes() {
        let cfg = SimConfig::new(4)
            .max_rounds(1)
            .trace_level(TraceLevel::Channels);
        let mut engine = Engine::new(cfg);
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        engine.add_node(Rig::tx(ChannelId::new(3), 1));
        engine.add_node(Rig::tx(ChannelId::new(3), 2));
        let report = engine.run().unwrap();
        assert_eq!(report.trace.len(), 1);
        let outcomes = &report.trace.rounds()[0].outcomes;
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].kind, OutcomeKind::Message);
        assert_eq!(outcomes[1].kind, OutcomeKind::Collision);
        assert_eq!(outcomes[1].transmitters, 2);
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        use rand::Rng;

        /// Random-channel beacon used to exercise the per-node RNG.
        struct RandomBeacon {
            last: Vec<u32>,
        }
        impl Protocol for RandomBeacon {
            type Msg = u8;
            fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u8> {
                let ch = rng.gen_range(1..=ctx.channels);
                self.last.push(ch);
                Action::transmit(ChannelId::new(ch), 0)
            }
            fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u8>, _rng: &mut SmallRng) {}
            fn status(&self) -> Status {
                Status::Active
            }
        }

        let run = |seed: u64| {
            let mut engine = Engine::new(SimConfig::new(16).seed(seed).max_rounds(20));
            let a = engine.add_node(RandomBeacon { last: Vec::new() });
            let b = engine.add_node(RandomBeacon { last: Vec::new() });
            let _ = engine.run();
            (engine.node(a).last.clone(), engine.node(b).last.clone())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        let (a, b) = run(5);
        assert_ne!(a, b, "node RNG streams must differ");
    }

    #[test]
    fn phase_accounting_uses_first_active_node() {
        struct Phased {
            rounds: u64,
        }
        impl Protocol for Phased {
            type Msg = u8;
            fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u8> {
                self.rounds += 1;
                Action::Sleep
            }
            fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u8>, _rng: &mut SmallRng) {}
            fn status(&self) -> Status {
                if self.rounds >= 4 {
                    Status::Inactive
                } else {
                    Status::Active
                }
            }
            fn phase(&self) -> &'static str {
                if self.rounds < 2 {
                    "warmup"
                } else {
                    "work"
                }
            }
        }
        let cfg = SimConfig::new(1)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10);
        let mut engine = Engine::new(cfg);
        engine.add_node(Phased { rounds: 0 });
        let report = engine.run().unwrap();
        assert_eq!(report.metrics.phases.rounds_in("warmup"), 2);
        assert_eq!(report.metrics.phases.rounds_in("work"), 2);
    }

    #[test]
    fn run_summary_matches_full_report() {
        let build = || {
            let mut engine = Engine::new(SimConfig::new(4).seed(12).max_rounds(100));
            engine.add_node_at(Rig::tx(ChannelId::PRIMARY, 1), 2);
            engine
        };
        let report = build().run().unwrap();
        let summary = build().run_summary().unwrap();
        assert_eq!(summary, report.summary());
        assert_eq!(summary.solved_round, Some(2));
        assert_eq!(summary.rounds_to_solve(), Some(3));
        assert!(summary.is_solved());
    }

    #[test]
    fn disabling_metrics_changes_no_outcome() {
        let run = |record: bool| {
            let cfg = SimConfig::new(4)
                .seed(3)
                .max_rounds(100)
                .record_metrics(record);
            let mut engine = Engine::new(cfg);
            engine.add_node_at(Rig::tx(ChannelId::PRIMARY, 1), 1);
            engine.add_node(Rig::rx(ChannelId::PRIMARY));
            engine.run().unwrap()
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with.solved_round, without.solved_round);
        assert_eq!(with.rounds_executed, without.rounds_executed);
        assert_eq!(with.metrics.transmissions, 1);
        assert_eq!(without.metrics.transmissions, 0);
        assert_eq!(without.metrics.phases.total(), 0);
    }

    #[test]
    fn external_sink_observes_the_run() {
        #[derive(Default)]
        struct Spy {
            tx: usize,
            rx: usize,
            rounds: usize,
            solved: Option<(u64, NodeId)>,
            finished: Option<u64>,
            outcome_rounds: usize,
        }
        impl EventSink for Spy {
            fn on_transmission(
                &mut self,
                _round: u64,
                _node: NodeId,
                _channel: ChannelId,
                _phase: &'static str,
            ) {
                self.tx += 1;
            }
            fn on_listen(
                &mut self,
                _round: u64,
                _node: NodeId,
                _channel: ChannelId,
                _phase: &'static str,
            ) {
                self.rx += 1;
            }
            fn on_solved(&mut self, round: u64, solver: NodeId) {
                self.solved = Some((round, solver));
            }
            fn on_round(&mut self, _round: u64, _phase: &'static str, outcomes: &[ChannelOutcome]) {
                self.rounds += 1;
                if !outcomes.is_empty() {
                    self.outcome_rounds += 1;
                }
            }
            fn on_finished(&mut self, rounds: u64) {
                self.finished = Some(rounds);
            }
        }

        let mut engine = Engine::new(SimConfig::new(4).max_rounds(100));
        let beacon = engine.add_node_at(Rig::tx(ChannelId::PRIMARY, 1), 1);
        engine.add_node(Rig::rx(ChannelId::PRIMARY));
        let mut spy = Spy::default();
        let report = engine.run_observed(&mut spy).unwrap();
        assert_eq!(spy.tx, 1);
        assert_eq!(spy.rx, 2, "listener listens in rounds 0 and 1");
        assert_eq!(spy.rounds, report.rounds_executed as usize);
        assert_eq!(spy.solved, Some((1, beacon)));
        assert_eq!(spy.finished, Some(2));
        // Spy keeps the default wants_outcomes() == true, so outcomes were
        // built even with tracing off.
        assert_eq!(spy.outcome_rounds, 2);
    }

    #[test]
    fn custom_feedback_model_is_consulted() {
        /// Delivers silence to everyone, always, and vetoes every solve.
        struct Void;
        impl FeedbackModel for Void {
            fn deliver<M: Clone>(
                &mut self,
                _action: &Action<M>,
                _state: &ChannelState<'_, M>,
            ) -> Feedback<M> {
                Feedback::Silence
            }
            fn allows_solve(&mut self, _solver: NodeId) -> bool {
                false
            }
        }

        let mut engine = Engine::with_feedback(SimConfig::new(2).max_rounds(3), Void);
        let a = engine.add_node(Rig::tx(ChannelId::PRIMARY, 9));
        let err = engine.run().unwrap_err();
        // The lone transmission was vetoed, so the run times out unsolved...
        assert_eq!(err, SimError::Timeout { max_rounds: 3 });
        assert_eq!(engine.summary().solved_round, None);
        // ...and the transmitter heard silence instead of its own message.
        assert_eq!(engine.node(a).heard, vec![Feedback::Silence; 3]);
    }

    #[test]
    fn round_budget_watchdog_fires_with_structured_error() {
        let mut engine = Engine::new(SimConfig::new(4).max_rounds(1_000_000).round_budget(50));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 2));
        let err = engine.run().unwrap_err();
        assert_eq!(
            err,
            SimError::BudgetExhausted {
                budget: 50,
                solved: false,
            }
        );
        assert_eq!(engine.current_round(), 50);
    }

    #[test]
    fn round_budget_guards_manual_stepping_too() {
        let mut engine = Engine::new(SimConfig::new(4).round_budget(3));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 2));
        for _ in 0..3 {
            assert_eq!(engine.step().unwrap(), StepStatus::Running);
        }
        // `step` ignores max_rounds but honors the watchdog.
        assert!(matches!(
            engine.step().unwrap_err(),
            SimError::BudgetExhausted { budget: 3, .. }
        ));
    }

    #[test]
    fn round_budget_reports_solved_when_waiting_for_termination() {
        let cfg = SimConfig::new(4)
            .stop_when(StopWhen::AllTerminated)
            .round_budget(10);
        let mut engine = Engine::new(cfg);
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        let err = engine.run().unwrap_err();
        assert_eq!(
            err,
            SimError::BudgetExhausted {
                budget: 10,
                solved: true,
            }
        );
        assert_eq!(engine.summary().solved_round, Some(0));
    }

    #[test]
    fn unarmed_budget_leaves_runs_untouched() {
        let mut engine = Engine::new(SimConfig::new(4).max_rounds(20));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        engine.add_node(Rig::tx(ChannelId::PRIMARY, 2));
        assert_eq!(
            engine.run().unwrap_err(),
            SimError::Timeout { max_rounds: 20 }
        );
    }

    #[test]
    fn feedback_accessor_returns_model() {
        let engine: Engine<Rig> = Engine::new(SimConfig::new(2).cd_mode(CdMode::None));
        assert_eq!(*engine.feedback(), CdMode::None);
    }
}
