//! The observation layer: [`EventSink`], the single trait through which the
//! round engine reports what happened.
//!
//! The engine core never records anything itself — it *emits* events, and
//! observers accumulate them. [`crate::Metrics`] and [`crate::Trace`] are
//! both implemented as sinks (the engine drives them through this trait when
//! [`crate::SimConfig::record_metrics`] / [`crate::TraceLevel::Channels`]
//! are enabled), and [`crate::render::ActivityRecorder`] shows how an
//! external observer plugs in via [`crate::Engine::run_observed`].
//!
//! All methods have no-op defaults, so a sink implements only what it cares
//! about. `()` is the null sink.

use crate::channel::{ChannelId, ChannelOutcome};
use crate::engine::{NodeId, SlotState};
use crate::metrics::Metrics;
use crate::trace::{RoundTrace, Trace};

/// Receives execution events from the round engine.
///
/// Event order within a round: [`on_transmission`](EventSink::on_transmission)
/// / [`on_listen`](EventSink::on_listen) for each acting node (in node-id
/// order), then [`on_solved`](EventSink::on_solved) if this round's lone
/// primary-channel transmission solved the problem, then
/// [`on_round`](EventSink::on_round) closing the round. When the stop
/// condition is met, [`on_finished`](EventSink::on_finished) fires once.
pub trait EventSink {
    /// One node transmitted on `channel` this round.
    fn on_transmission(
        &mut self,
        round: u64,
        node: NodeId,
        channel: ChannelId,
        phase: &'static str,
    ) {
        let _ = (round, node, channel, phase);
    }

    /// One node listened on `channel` this round.
    ///
    /// `phase` is the round's representative label by default; when the
    /// sink opts into [`wants_node_phases`](EventSink::wants_node_phases)
    /// it is the listening node's own label.
    fn on_listen(&mut self, round: u64, node: NodeId, channel: ChannelId, phase: &'static str) {
        let _ = (round, node, channel, phase);
    }

    /// The problem was solved this round by `solver`'s lone transmission on
    /// the primary channel. Fires at most once per run.
    fn on_solved(&mut self, round: u64, solver: NodeId) {
        let _ = (round, solver);
    }

    /// The round is complete. `outcomes` covers the channels that had at
    /// least one participant, sorted by channel — but it is only populated
    /// when some attached sink returns `true` from
    /// [`wants_outcomes`](EventSink::wants_outcomes); otherwise it is empty.
    fn on_round(&mut self, round: u64, phase: &'static str, outcomes: &[ChannelOutcome]) {
        let _ = (round, phase, outcomes);
    }

    /// Node `node` left the live population this round: `state` is
    /// [`SlotState::Terminated`] (clean protocol exit, including
    /// termination inside `on_wake`) or [`SlotState::Crashed`] (a fault
    /// layer killed it). Fires once per node, in the order retirements
    /// are processed within the round.
    fn on_retired(&mut self, round: u64, node: NodeId, state: SlotState) {
        let _ = (round, node, state);
    }

    /// The stop condition was met after `rounds_executed` rounds.
    fn on_finished(&mut self, rounds_executed: u64) {
        let _ = rounds_executed;
    }

    /// Whether this sink reads the `outcomes` slice of
    /// [`on_round`](EventSink::on_round). Sinks that do not (the default
    /// implementations don't) should return `false` so the engine can skip
    /// building per-channel outcome records entirely.
    fn wants_outcomes(&self) -> bool {
        true
    }

    /// Whether this sink needs *per-node* phase labels on
    /// [`on_transmission`](EventSink::on_transmission) /
    /// [`on_listen`](EventSink::on_listen). By default the engine passes
    /// every event the round's single representative label (the phase of
    /// the lowest-indexed active node) — exact for the paper's lockstep
    /// algorithms, and free. Sinks that account per-phase activity under
    /// staggered wake-ups or heterogeneous populations (notably
    /// [`crate::obs::RunRecorder`]) return `true`, and the engine then
    /// labels each event with the acting node's own phase, read right
    /// after its `act` call.
    fn wants_node_phases(&self) -> bool {
        false
    }
}

/// The null sink: observes nothing.
impl EventSink for () {
    fn wants_outcomes(&self) -> bool {
        false
    }
}

/// Delegation, so `&mut sink` and `&mut dyn EventSink` are themselves sinks.
impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn on_transmission(
        &mut self,
        round: u64,
        node: NodeId,
        channel: ChannelId,
        phase: &'static str,
    ) {
        (**self).on_transmission(round, node, channel, phase);
    }
    fn on_listen(&mut self, round: u64, node: NodeId, channel: ChannelId, phase: &'static str) {
        (**self).on_listen(round, node, channel, phase);
    }
    fn on_solved(&mut self, round: u64, solver: NodeId) {
        (**self).on_solved(round, solver);
    }
    fn on_round(&mut self, round: u64, phase: &'static str, outcomes: &[ChannelOutcome]) {
        (**self).on_round(round, phase, outcomes);
    }
    fn on_retired(&mut self, round: u64, node: NodeId, state: SlotState) {
        (**self).on_retired(round, node, state);
    }
    fn on_finished(&mut self, rounds_executed: u64) {
        (**self).on_finished(rounds_executed);
    }
    fn wants_outcomes(&self) -> bool {
        (**self).wants_outcomes()
    }
    fn wants_node_phases(&self) -> bool {
        (**self).wants_node_phases()
    }
}

/// Fan-out: a pair of sinks both observe every event.
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    fn on_transmission(
        &mut self,
        round: u64,
        node: NodeId,
        channel: ChannelId,
        phase: &'static str,
    ) {
        self.0.on_transmission(round, node, channel, phase);
        self.1.on_transmission(round, node, channel, phase);
    }
    fn on_listen(&mut self, round: u64, node: NodeId, channel: ChannelId, phase: &'static str) {
        self.0.on_listen(round, node, channel, phase);
        self.1.on_listen(round, node, channel, phase);
    }
    fn on_solved(&mut self, round: u64, solver: NodeId) {
        self.0.on_solved(round, solver);
        self.1.on_solved(round, solver);
    }
    fn on_round(&mut self, round: u64, phase: &'static str, outcomes: &[ChannelOutcome]) {
        self.0.on_round(round, phase, outcomes);
        self.1.on_round(round, phase, outcomes);
    }
    fn on_retired(&mut self, round: u64, node: NodeId, state: SlotState) {
        self.0.on_retired(round, node, state);
        self.1.on_retired(round, node, state);
    }
    fn on_finished(&mut self, rounds_executed: u64) {
        self.0.on_finished(rounds_executed);
        self.1.on_finished(rounds_executed);
    }
    fn wants_outcomes(&self) -> bool {
        self.0.wants_outcomes() || self.1.wants_outcomes()
    }
    fn wants_node_phases(&self) -> bool {
        self.0.wants_node_phases() || self.1.wants_node_phases()
    }
}

/// [`Metrics`] observes transmissions, listens, and per-phase rounds. It
/// never reads channel outcomes.
impl EventSink for Metrics {
    fn on_transmission(
        &mut self,
        _round: u64,
        node: NodeId,
        _channel: ChannelId,
        phase: &'static str,
    ) {
        self.record_transmission(node.0, phase);
    }
    fn on_listen(&mut self, _round: u64, _node: NodeId, _channel: ChannelId, _phase: &'static str) {
        self.record_listen();
    }
    fn on_round(&mut self, _round: u64, phase: &'static str, _outcomes: &[ChannelOutcome]) {
        self.phases.record(phase);
    }
    fn wants_outcomes(&self) -> bool {
        false
    }
}

/// [`Trace`] records one [`RoundTrace`] per round, channel outcomes
/// included.
impl EventSink for Trace {
    fn on_round(&mut self, round: u64, phase: &'static str, outcomes: &[ChannelOutcome]) {
        self.push(RoundTrace {
            round,
            outcomes: outcomes.to_vec(),
            phase,
        });
    }
    fn wants_outcomes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::OutcomeKind;

    #[derive(Default)]
    struct Counter {
        tx: usize,
        rx: usize,
        rounds: usize,
        solved: Option<(u64, NodeId)>,
        finished: Option<u64>,
    }

    impl EventSink for Counter {
        fn on_transmission(&mut self, _r: u64, _n: NodeId, _c: ChannelId, _p: &'static str) {
            self.tx += 1;
        }
        fn on_listen(&mut self, _r: u64, _n: NodeId, _c: ChannelId, _p: &'static str) {
            self.rx += 1;
        }
        fn on_solved(&mut self, round: u64, solver: NodeId) {
            self.solved = Some((round, solver));
        }
        fn on_round(&mut self, _r: u64, _p: &'static str, _o: &[ChannelOutcome]) {
            self.rounds += 1;
        }
        fn on_finished(&mut self, rounds: u64) {
            self.finished = Some(rounds);
        }
        fn wants_outcomes(&self) -> bool {
            false
        }
    }

    fn outcome(ch: u32, tx: usize) -> ChannelOutcome {
        ChannelOutcome {
            channel: ChannelId::new(ch),
            kind: OutcomeKind::from_transmitters(tx),
            transmitters: tx,
            listeners: 0,
        }
    }

    #[test]
    fn pair_sink_fans_out() {
        let mut pair = (Counter::default(), Counter::default());
        pair.on_transmission(0, NodeId(1), ChannelId::PRIMARY, "main");
        pair.on_listen(0, NodeId(2), ChannelId::PRIMARY, "main");
        pair.on_round(0, "main", &[]);
        pair.on_finished(1);
        assert_eq!((pair.0.tx, pair.1.tx), (1, 1));
        assert_eq!((pair.0.rx, pair.1.rx), (1, 1));
        assert_eq!((pair.0.rounds, pair.1.rounds), (1, 1));
        assert_eq!(pair.0.finished, Some(1));
    }

    #[test]
    fn wants_outcomes_combines() {
        assert!(!().wants_outcomes());
        assert!(!(Counter::default(), Counter::default()).wants_outcomes());
        assert!((Counter::default(), Trace::new()).wants_outcomes());
    }

    #[test]
    fn metrics_as_sink_matches_direct_recording() {
        let mut via_sink = Metrics::new(2);
        via_sink.on_transmission(0, NodeId(0), ChannelId::PRIMARY, "a");
        via_sink.on_transmission(1, NodeId(1), ChannelId::PRIMARY, "b");
        via_sink.on_listen(1, NodeId(0), ChannelId::PRIMARY, "a");
        via_sink.on_round(0, "a", &[]);
        via_sink.on_round(1, "b", &[]);

        let mut direct = Metrics::new(2);
        direct.record_transmission(0, "a");
        direct.record_transmission(1, "b");
        direct.record_listen();
        direct.phases.record("a");
        direct.phases.record("b");

        assert_eq!(via_sink, direct);
    }

    #[test]
    fn trace_as_sink_records_rounds() {
        let mut trace = Trace::new();
        trace.on_round(0, "main", &[outcome(1, 2)]);
        trace.on_round(1, "main", &[]);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.rounds()[0].outcomes[0].kind, OutcomeKind::Collision);
        assert!(trace.rounds()[1].outcomes.is_empty());
    }
}
