//! The dense O(n) reference scheduler: the semantics oracle for the
//! active-set [`Engine`](crate::Engine).
//!
//! [`DenseEngine`] executes exactly the same round semantics as
//! [`Engine`](crate::Engine) — same wake rules, same retirement
//! transitions, same RNG derivation, same observation hooks — but with the
//! pre-refactor *data model*: every per-round step is a full scan over all
//! node slots, so per-round cost is O(n) in the number of slots ever
//! added, regardless of how many are live.
//!
//! It exists for two reasons:
//!
//! * **Equivalence pinning.** The property suite
//!   (`crates/mac-sim/tests/active_set_equivalence.rs`) runs random
//!   workloads — staggered wake schedules × CD modes × fault layers —
//!   through both engines and asserts bit-identical [`RunReport`]s and
//!   event streams. Any divergence between the active-set scheduler's
//!   agenda/live-set/retirement bookkeeping and the plain-scan semantics
//!   is a test failure, which keeps the refactored hot loop honest.
//! * **A/B benchmarking.** `bench_round_engine` runs the same sparse
//!   workload (n = 2²⁰ slots, |A| = 500 active) on both engines, so the
//!   committed `BENCH_round_engine.json` records the active-set speedup
//!   rather than asserting it.
//!
//! The implementation deliberately duplicates the round loop instead of
//! sharing it: a reference that reuses the optimised scheduler's code
//! would pin nothing. Keep the two loops in sync when the *semantics*
//! change; they are free to diverge in data-structure choices — that is
//! the point.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::action::Action;
use crate::channel::{ChannelId, ChannelOutcome, OutcomeKind};
use crate::config::{CdMode, SimConfig, StopWhen};
use crate::engine::{NodeId, RunReport, RunSummary, SlotState, StepStatus};
use crate::error::SimError;
use crate::feedback::{ChannelState, FeedbackModel};
use crate::metrics::Metrics;
use crate::protocol::{Protocol, RoundContext, Status};
use crate::rng::derive_node_seed;
use crate::sink::EventSink;
use crate::trace::{Trace, TraceLevel};

struct DenseSlot<P> {
    protocol: P,
    rng: SmallRng,
    start_round: u64,
    state: SlotState,
}

/// The O(n)-per-round reference engine. Same API shape and semantics as
/// [`Engine`](crate::Engine), dense-scan data model. See the module docs.
pub struct DenseEngine<P: Protocol, F: FeedbackModel = CdMode> {
    config: SimConfig,
    feedback: F,
    nodes: Vec<DenseSlot<P>>,
    metrics: Metrics,
    trace: Trace,
    solved_round: Option<u64>,
    solver: Option<NodeId>,
    deliveries: u64,
    round: u64,
    finished: bool,
    latest_wake: u64,
    crash_buf: Vec<NodeId>,
    actions: Vec<(usize, Action<P::Msg>)>,
    tx_count: Vec<u32>,
    rx_count: Vec<u32>,
    lone_act: Vec<usize>,
    dirty: Vec<usize>,
    outcomes: Vec<ChannelOutcome>,
}

impl<P: Protocol> DenseEngine<P> {
    /// Creates a dense reference engine using the configuration's
    /// [`CdMode`] as the feedback model.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let cd_mode = config.cd_mode;
        DenseEngine::with_feedback(config, cd_mode)
    }
}

impl<P: Protocol, F: FeedbackModel> DenseEngine<P, F> {
    /// Creates a dense reference engine with a custom [`FeedbackModel`].
    #[must_use]
    pub fn with_feedback(config: SimConfig, mut feedback: F) -> Self {
        feedback.bind(&config);
        let c = config.channels as usize;
        DenseEngine {
            config,
            feedback,
            nodes: Vec::new(),
            metrics: Metrics::new(0),
            trace: Trace::new(),
            solved_round: None,
            solver: None,
            deliveries: 0,
            round: 0,
            finished: false,
            latest_wake: 0,
            crash_buf: Vec::new(),
            actions: Vec::new(),
            tx_count: vec![0; c],
            rx_count: vec![0; c],
            lone_act: vec![usize::MAX; c],
            dirty: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// Adds a node that wakes in round 0. Returns its id.
    pub fn add_node(&mut self, protocol: P) -> NodeId {
        self.add_node_at(protocol, 0)
    }

    /// Adds a node that wakes in round `start_round`. Returns its id. Like
    /// the active-set engine, a latched stop condition is re-armed so
    /// mid-run arrival injection can continue stepping.
    pub fn add_node_at(&mut self, protocol: P, start_round: u64) -> NodeId {
        self.finished = false;
        let id = NodeId(self.nodes.len());
        let seed = derive_node_seed(self.config.master_seed, id.0 as u64);
        self.nodes.push(DenseSlot {
            protocol,
            rng: SmallRng::seed_from_u64(seed),
            start_round,
            state: SlotState::Pending,
        });
        self.latest_wake = self.latest_wake.max(start_round);
        self.metrics.transmissions_per_node.push(0);
        id
    }

    /// Number of nodes added.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's protocol.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.0].protocol
    }

    /// The scheduler state of a node's slot.
    #[must_use]
    pub fn slot_state(&self, id: NodeId) -> SlotState {
        self.nodes[id.0].state
    }

    /// Number of [`SlotState::Live`] slots — full scan, this is the
    /// reference engine.
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.nodes
            .iter()
            .filter(|slot| slot.state == SlotState::Live)
            .count()
    }

    /// Number of [`SlotState::Pending`] slots — full scan.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.nodes
            .iter()
            .filter(|slot| slot.state == SlotState::Pending)
            .count()
    }

    /// Packets delivered under [`SimConfig::continuous_delivery`]; 0 in
    /// one-shot mode. Mirrors [`Engine::deliveries`](crate::Engine::deliveries).
    #[must_use]
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// The next round to be executed. Mirrors
    /// [`Engine::current_round`](crate::Engine::current_round).
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Runs rounds until the configured stop condition is met.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`](crate::Engine::run).
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        self.run_observed(&mut ())
    }

    /// Like [`DenseEngine::run`], returning only the cheap [`RunSummary`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`](crate::Engine::run).
    pub fn run_summary(&mut self) -> Result<RunSummary, SimError> {
        self.run_to_finish(&mut ())?;
        Ok(RunSummary {
            solved_round: self.solved_round,
            solver: self.solver,
            rounds_executed: self.round,
        })
    }

    /// Like [`DenseEngine::run`], streaming events into `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run`](crate::Engine::run).
    pub fn run_observed<S: EventSink>(&mut self, sink: &mut S) -> Result<RunReport, SimError> {
        self.run_to_finish(sink)?;
        Ok(self.report())
    }

    fn run_to_finish<S: EventSink>(&mut self, sink: &mut S) -> Result<(), SimError> {
        while !self.finished {
            if self.round >= self.config.max_rounds {
                return Err(SimError::Timeout {
                    max_rounds: self.config.max_rounds,
                });
            }
            self.step_observed(sink)?;
        }
        Ok(())
    }

    /// Executes exactly one round with a full O(n) slot scan per step.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::step`](crate::Engine::step).
    #[allow(clippy::too_many_lines)]
    pub fn step_observed<S: EventSink>(&mut self, sink: &mut S) -> Result<StepStatus, SimError> {
        if self.nodes.is_empty() {
            return Err(SimError::NoNodes);
        }
        if self.finished {
            return Ok(StepStatus::Finished);
        }
        if let Some(budget) = self.config.round_budget {
            if self.round >= budget {
                return Err(SimError::BudgetExhausted {
                    budget,
                    solved: self.solved_round.is_some(),
                });
            }
        }
        let round = self.round;
        let record_metrics = self.config.record_metrics;
        self.feedback.begin_round(round);

        // Fault-layer retirements, before wake-ups (same order as the
        // active-set engine).
        let mut crash_buf = std::mem::take(&mut self.crash_buf);
        self.feedback.drain_crashed(&mut crash_buf);
        for id in crash_buf.drain(..) {
            if let Some(slot) = self.nodes.get_mut(id.0) {
                if !slot.state.is_retired() {
                    slot.state = SlotState::Crashed;
                }
            }
        }
        self.crash_buf = crash_buf;

        // Wake-ups: full scan for slots scheduled to wake now.
        for slot in &mut self.nodes {
            if slot.state == SlotState::Pending && slot.start_round == round {
                slot.state = SlotState::Live;
                let ctx = RoundContext {
                    round,
                    local_round: 0,
                    channels: self.config.channels,
                };
                slot.protocol.on_wake(&ctx, &mut slot.rng);
                if slot.protocol.status().is_terminated() {
                    slot.state = SlotState::Terminated;
                }
            }
        }

        // Phase representative: first live slot in NodeId order.
        let phase = self
            .nodes
            .iter()
            .find(|slot| slot.state == SlotState::Live)
            .map_or("idle", |slot| slot.protocol.phase());
        let node_phases = sink.wants_node_phases();

        // Collect actions: full scan, skipping non-live slots.
        self.actions.clear();
        for (idx, slot) in self.nodes.iter_mut().enumerate() {
            if slot.state != SlotState::Live {
                continue;
            }
            let ctx = RoundContext {
                round,
                local_round: round - slot.start_round,
                channels: self.config.channels,
            };
            let action = slot.protocol.act(&ctx, &mut slot.rng);
            if let Some(channel) = action.channel() {
                if channel.get() > self.config.channels {
                    return Err(SimError::ChannelOutOfRange {
                        node: NodeId(idx),
                        round,
                        channel,
                        channels: self.config.channels,
                    });
                }
            }
            let action = self.feedback.filter_action(NodeId(idx), action);
            self.actions.push((idx, action));
        }

        // Channel resolution — identical to the active-set engine.
        for &d in &self.dirty {
            self.tx_count[d] = 0;
            self.rx_count[d] = 0;
            self.lone_act[d] = usize::MAX;
        }
        self.dirty.clear();
        for (ai, (idx, action)) in self.actions.iter().enumerate() {
            match action {
                Action::Transmit { channel, .. } => {
                    let ci = channel.index();
                    if self.tx_count[ci] == 0 && self.rx_count[ci] == 0 {
                        self.dirty.push(ci);
                    }
                    self.tx_count[ci] += 1;
                    self.lone_act[ci] = if self.tx_count[ci] == 1 {
                        ai
                    } else {
                        usize::MAX
                    };
                    if record_metrics {
                        self.metrics
                            .on_transmission(round, NodeId(*idx), *channel, phase);
                    }
                    let label = if node_phases {
                        self.nodes[*idx].protocol.phase()
                    } else {
                        phase
                    };
                    sink.on_transmission(round, NodeId(*idx), *channel, label);
                }
                Action::Listen { channel } => {
                    let ci = channel.index();
                    if self.tx_count[ci] == 0 && self.rx_count[ci] == 0 {
                        self.dirty.push(ci);
                    }
                    self.rx_count[ci] += 1;
                    if record_metrics {
                        self.metrics.on_listen(round, NodeId(*idx), *channel, phase);
                    }
                    let label = if node_phases {
                        self.nodes[*idx].protocol.phase()
                    } else {
                        phase
                    };
                    sink.on_listen(round, NodeId(*idx), *channel, label);
                }
                Action::Sleep => {}
            }
        }

        // Solve detection; with `continuous_delivery`, every allowed lone
        // primary transmission is a delivery (same rule as the active-set
        // engine).
        let primary = ChannelId::PRIMARY.index();
        let mut delivered: Option<usize> = None;
        if self.tx_count[primary] == 1
            && (self.solved_round.is_none() || self.config.continuous_delivery)
        {
            let solver_idx = self.actions[self.lone_act[primary]].0;
            let solver = NodeId(solver_idx);
            if self.feedback.allows_solve(solver) {
                if self.solved_round.is_none() {
                    self.solved_round = Some(round);
                    self.solver = Some(solver);
                }
                if self.config.continuous_delivery {
                    self.deliveries += 1;
                    delivered = Some(solver_idx);
                }
                sink.on_solved(round, solver);
            }
        }

        // Round close-out through the observation layer.
        let tracing = self.config.trace_level == TraceLevel::Channels;
        self.outcomes.clear();
        if tracing || sink.wants_outcomes() {
            self.dirty.sort_unstable();
            for &ci in &self.dirty {
                self.outcomes.push(ChannelOutcome {
                    channel: ChannelId::new(ci as u32 + 1),
                    kind: OutcomeKind::from_transmitters(self.tx_count[ci] as usize),
                    transmitters: self.tx_count[ci] as usize,
                    listeners: self.rx_count[ci] as usize,
                });
            }
        }
        if record_metrics {
            self.metrics.on_round(round, phase, &self.outcomes);
        }
        if tracing {
            self.trace.on_round(round, phase, &self.outcomes);
        }
        sink.on_round(round, phase, &self.outcomes);

        // Deliver feedback.
        let actions = std::mem::take(&mut self.actions);
        {
            let state = ChannelState {
                tx_count: &self.tx_count,
                rx_count: &self.rx_count,
                actions: &actions,
                lone_act: &self.lone_act,
            };
            for (idx, action) in &actions {
                let feedback = self.feedback.deliver(action, &state);
                let slot = &mut self.nodes[*idx];
                let ctx = RoundContext {
                    round,
                    local_round: round - slot.start_round,
                    channels: self.config.channels,
                };
                slot.protocol.observe(&ctx, feedback, &mut slot.rng);
            }
        }
        self.actions = actions;

        // A delivered packet's sender retires regardless of what its
        // protocol observed (mirrors the active-set engine's forced
        // retirement).
        if let Some(idx) = delivered {
            let slot = &mut self.nodes[idx];
            if slot.state == SlotState::Live {
                slot.state = SlotState::Terminated;
            }
        }

        // Park terminated slots: full scan.
        for slot in &mut self.nodes {
            if slot.state == SlotState::Live && slot.protocol.status().is_terminated() {
                slot.state = SlotState::Terminated;
            }
        }

        self.round += 1;

        // Stop conditions: full scan over slot states.
        let all_terminated = self.round > self.latest_wake
            && self
                .nodes
                .iter()
                .all(|slot| slot.state == SlotState::Terminated);
        let finished = match self.config.stop_when {
            StopWhen::Solved => self.solved_round.is_some() || all_terminated,
            StopWhen::AllTerminated => all_terminated,
        };
        self.finished = finished;
        if finished {
            if record_metrics {
                self.metrics.on_finished(self.round);
            }
            if tracing {
                self.trace.on_finished(self.round);
            }
            sink.on_finished(self.round);
        }
        Ok(if finished {
            StepStatus::Finished
        } else {
            StepStatus::Running
        })
    }

    /// A snapshot report of the run so far, field-compatible with
    /// [`Engine::report`](crate::Engine::report).
    #[must_use]
    pub fn report(&self) -> RunReport {
        let leaders = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.protocol.status() == Status::Leader)
            .map(|(idx, _)| NodeId(idx))
            .collect();
        let active_remaining = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, slot)| {
                matches!(slot.state, SlotState::Live | SlotState::Crashed)
                    && slot.protocol.status() == Status::Active
            })
            .map(|(idx, _)| NodeId(idx))
            .collect();
        RunReport {
            solved_round: self.solved_round,
            solver: self.solver,
            rounds_executed: self.round,
            leaders,
            active_remaining,
            metrics: self.metrics.clone(),
            trace: self.trace.clone(),
        }
    }
}
