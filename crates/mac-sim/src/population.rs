//! Sparse populations: activation schedules over a huge namespace.
//!
//! The paper's regime separates the *namespace* size `n` (how many node
//! identities exist — `2^20` and up) from the *active set* `A ⊆ V` (who
//! actually wakes — typically a few hundred, unknown to the protocol).
//! The active-set engine already pays per-round cost proportional to
//! `|live|` only; [`SparsePopulation`] completes the path by never even
//! *materializing* slots for the `n − |A|` nodes that stay asleep: a
//! population is an explicit activation schedule — `(virtual id, wake
//! round)` pairs over the namespace — and building an engine from it
//! allocates exactly `|A|` slots.
//!
//! ```
//! use mac_sim::population::SparsePopulation;
//! use mac_sim::SimConfig;
//! # use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
//! # use rand::rngs::SmallRng;
//! # struct Node { _id: u64 }
//! # impl Protocol for Node {
//! #     type Msg = u8;
//! #     fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u8> {
//! #         Action::transmit(ChannelId::PRIMARY, 1)
//! #     }
//! #     fn observe(&mut self, _: &RoundContext, _: Feedback<u8>, _: &mut SmallRng) {}
//! #     fn status(&self) -> Status { Status::Active }
//! # }
//!
//! // One active node in a namespace of a million: the engine holds one slot.
//! let pop = SparsePopulation::uniform(1 << 20, 1, 1, 42);
//! let mut engine = pop.engine(SimConfig::new(4), |virtual_id| Node { _id: virtual_id });
//! assert_eq!(engine.len(), 1);
//! assert!(engine.run().expect("a lone node solves").is_solved());
//! ```
//!
//! Engine [`NodeId`]s remain dense slot indices (`0..|A|`, in activation
//! order); the member's namespace identity is handed to the protocol
//! factory, which is where algorithms that use ids (renaming, size
//! estimation) pick it up.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::engine::{Engine, NodeId};
use crate::feedback::FeedbackModel;
use crate::obs::RunManifest;
use crate::protocol::Protocol;
use crate::rng::derive_stream_seed;
use crate::traffic::{ArrivalProcess, ArrivalStream};

/// Salt separating the identity-drawing RNG of
/// [`SparsePopulation::from_arrivals`] from the arrival stream itself.
const ARRIVAL_ID_STREAM: u64 = 0x4944_u64; // "ID"

/// One activated member of a sparse population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    /// The node's identity in the namespace `0..n`.
    pub virtual_id: u64,
    /// The round this node wakes.
    pub wake_round: u64,
}

/// An activation schedule over a namespace of `n` possible nodes: which
/// (few) identities wake, and when. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePopulation {
    namespace: u64,
    members: Vec<Member>,
}

impl SparsePopulation {
    /// An empty population over a namespace of `n` identities.
    ///
    /// # Panics
    ///
    /// Panics if `namespace == 0`.
    #[must_use]
    pub fn new(namespace: u64) -> Self {
        assert!(namespace >= 1, "namespace must be non-empty");
        SparsePopulation {
            namespace,
            members: Vec::new(),
        }
    }

    /// Activates `virtual_id` at round 0.
    ///
    /// # Panics
    ///
    /// Panics if `virtual_id` is outside the namespace.
    #[must_use]
    pub fn activate(self, virtual_id: u64) -> Self {
        self.activate_at(virtual_id, 0)
    }

    /// Activates `virtual_id` at `wake_round`.
    ///
    /// # Panics
    ///
    /// Panics if `virtual_id` is outside the namespace.
    #[must_use]
    pub fn activate_at(mut self, virtual_id: u64, wake_round: u64) -> Self {
        assert!(
            virtual_id < self.namespace,
            "virtual id {virtual_id} outside namespace 0..{}",
            self.namespace
        );
        self.members.push(Member {
            virtual_id,
            wake_round,
        });
        self
    }

    /// `active` distinct identities drawn uniformly from the namespace,
    /// each waking at a seeded uniform round in `0..window` (`window == 1`
    /// is simultaneous wake-up). Pure in `(namespace, active, window,
    /// seed)`: the same arguments always produce the same population.
    ///
    /// # Panics
    ///
    /// Panics if `namespace == 0`, `active as u64 > namespace`, or
    /// `window == 0`.
    #[must_use]
    pub fn uniform(namespace: u64, active: usize, window: u64, seed: u64) -> Self {
        assert!(
            (active as u64) <= namespace,
            "cannot activate {active} of {namespace} identities"
        );
        assert!(window >= 1, "wake window must be positive");
        let mut pop = SparsePopulation::new(namespace);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Distinct ids by rejection: |A| ≪ n in the sparse regime, so
        // collisions are rare and this terminates fast.
        let mut chosen = HashSet::with_capacity(active);
        while chosen.len() < active {
            chosen.insert(rng.gen_range(0..namespace));
        }
        let mut ids: Vec<u64> = chosen.into_iter().collect();
        ids.sort_unstable();
        for virtual_id in ids {
            let wake_round = if window == 1 {
                0
            } else {
                rng.gen_range(0..window)
            };
            pop = pop.activate_at(virtual_id, wake_round);
        }
        pop
    }

    /// A population whose wake schedule is drawn from a traffic
    /// [`ArrivalProcess`] over rounds `[0, window)`: every arriving packet
    /// becomes one member with a distinct uniformly-drawn namespace
    /// identity, waking at its arrival round. This is the bridge between
    /// the dynamic-arrivals workload model ([`crate::traffic`]) and the
    /// one-shot sparse-population experiments: the *same* seeded arrival
    /// schedule can drive either a one-shot election run or a continuous
    /// traffic run. Pure in `(namespace, process, window, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `namespace == 0` or the stream produces more arrivals
    /// than the namespace has identities.
    #[must_use]
    pub fn from_arrivals(namespace: u64, process: ArrivalProcess, window: u64, seed: u64) -> Self {
        let mut stream = ArrivalStream::new(process, window, seed);
        let mut pop = SparsePopulation::new(namespace);
        let mut rng = SmallRng::seed_from_u64(derive_stream_seed(seed, ARRIVAL_ID_STREAM));
        let mut chosen = HashSet::new();
        while let Some((round, count)) = stream.next_batch() {
            for _ in 0..count {
                assert!(
                    (chosen.len() as u64) < namespace,
                    "arrival stream produced more than {namespace} members"
                );
                let mut virtual_id = rng.gen_range(0..namespace);
                while !chosen.insert(virtual_id) {
                    virtual_id = rng.gen_range(0..namespace);
                }
                pop = pop.activate_at(virtual_id, round);
            }
        }
        pop
    }

    /// The namespace size `n`.
    #[must_use]
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Number of activated identities `|A|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if nothing is activated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The activated members, in activation (= engine [`NodeId`]) order.
    #[must_use]
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The last wake round in the schedule (0 for an empty population).
    #[must_use]
    pub fn latest_wake(&self) -> u64 {
        self.members.iter().map(|m| m.wake_round).max().unwrap_or(0)
    }

    /// Builds an engine holding exactly `|A|` slots, one per member, each
    /// scheduled at its member's wake round. The factory receives the
    /// member's namespace identity. Returns the engine; slot `NodeId(i)`
    /// corresponds to `self.members()[i]`.
    #[must_use]
    pub fn engine<P: Protocol>(&self, config: SimConfig, make: impl FnMut(u64) -> P) -> Engine<P> {
        let cd_mode = config.cd_mode;
        self.engine_with(config, cd_mode, make)
    }

    /// Like [`SparsePopulation::engine`] with a custom [`FeedbackModel`]
    /// (fault layers compose with sparse populations like with any other
    /// engine).
    #[must_use]
    pub fn engine_with<P: Protocol, F: FeedbackModel>(
        &self,
        config: SimConfig,
        feedback: F,
        mut make: impl FnMut(u64) -> P,
    ) -> Engine<P, F> {
        let mut engine = Engine::with_feedback(config, feedback);
        for member in &self.members {
            let id = engine.add_node_at(make(member.virtual_id), member.wake_round);
            debug_assert!(id.0 < self.members.len());
        }
        engine
    }

    /// Stamps this population's shape (`n`, `|A|`) onto a run manifest, so
    /// campaign exports record the sparse regime they measured.
    #[must_use]
    pub fn stamp(&self, manifest: RunManifest) -> RunManifest {
        manifest.n(self.namespace).active(self.members.len() as u64)
    }

    /// The engine slot id of `virtual_id`, if activated.
    #[must_use]
    pub fn slot_of(&self, virtual_id: u64) -> Option<NodeId> {
        self.members
            .iter()
            .position(|m| m.virtual_id == virtual_id)
            .map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_distinct_and_sorted() {
        let a = SparsePopulation::uniform(1 << 20, 100, 64, 7);
        let b = SparsePopulation::uniform(1 << 20, 100, 64, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let ids: Vec<u64> = a.members().iter().map(|m| m.virtual_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "ids must be distinct and sorted");
        assert!(a.members().iter().all(|m| m.wake_round < 64));
        assert!(a.latest_wake() < 64);
    }

    #[test]
    fn window_one_is_simultaneous() {
        let pop = SparsePopulation::uniform(1 << 16, 50, 1, 3);
        assert!(pop.members().iter().all(|m| m.wake_round == 0));
        assert_eq!(pop.latest_wake(), 0);
    }

    #[test]
    fn slot_of_maps_back_to_activation_order() {
        let pop = SparsePopulation::new(1000).activate_at(900, 5).activate(17);
        assert_eq!(pop.slot_of(900), Some(NodeId(0)));
        assert_eq!(pop.slot_of(17), Some(NodeId(1)));
        assert_eq!(pop.slot_of(3), None);
    }

    #[test]
    #[should_panic(expected = "outside namespace")]
    fn activation_outside_namespace_panics() {
        let _ = SparsePopulation::new(10).activate(10);
    }

    #[test]
    fn from_arrivals_is_deterministic_with_distinct_ids() {
        let process = ArrivalProcess::Poisson { rate: 0.5 };
        let a = SparsePopulation::from_arrivals(1 << 20, process, 100, 11);
        let b = SparsePopulation::from_arrivals(1 << 20, process, 100, 11);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let mut ids: Vec<u64> = a.members().iter().map(|m| m.virtual_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "identities must be distinct");
        assert!(a.members().iter().all(|m| m.wake_round < 100));
        let mut wakes: Vec<u64> = a.members().iter().map(|m| m.wake_round).collect();
        let sorted = {
            let mut w = wakes.clone();
            w.sort_unstable();
            w
        };
        assert_eq!(wakes, sorted, "members activate in arrival order");
        wakes.dedup();
        assert!(!wakes.is_empty());
    }

    #[test]
    fn from_arrivals_matches_the_traffic_schedule() {
        let process = ArrivalProcess::FixedRate {
            period: 5,
            batch: 2,
        };
        let pop = SparsePopulation::from_arrivals(1 << 16, process, 20, 3);
        assert_eq!(pop.len(), 8, "4 batches of 2 in [0, 20)");
        let wakes: Vec<u64> = pop.members().iter().map(|m| m.wake_round).collect();
        assert_eq!(wakes, vec![0, 0, 5, 5, 10, 10, 15, 15]);
    }
}
