//! The campaign layer: one work-stealing worker pool for a whole sweep.
//!
//! The [`trials`](crate::trials) layer fans one cell's trials over threads;
//! a *campaign* schedules **all cells of a sweep at once**. Worker threads
//! are spawned once per campaign and steal seed-sharded trial chunks from a
//! single global queue, so a cell with slow trials cannot strand idle cores
//! while the next cell waits — the pool stays saturated across the whole
//! sweep instead of draining and refilling at every grid point.
//!
//! Results stream: every trial folds into a per-shard [`Aggregate`]
//! (`O(1)`-ish memory), shard aggregates merge **in shard-index order**,
//! and completed cells are delivered **in cell order** through a callback.
//! Because the shard decomposition is a pure function of `(trials,
//! shard_size)` and the merge order is fixed, the output is bit-identical
//! for every worker count — even for aggregates whose merge is not exactly
//! associative. The deterministic-merge contract is what lets the harness
//! checkpoint cells to disk and resume a killed sweep bit-identically.
//!
//! Cooperative cancellation rides on a [`CancelToken`] (flag or deadline),
//! checked between trials: a cancelled campaign stops claiming work,
//! delivers the in-order prefix of completed cells, and reports how far it
//! got. Progress streams through a [`ProgressSink`], giving one ETA for the
//! whole sweep instead of a garbled line per cell.
//!
//! ## Self-healing
//!
//! By default a panicking trial propagates and kills the sweep (a failed
//! trial is an experiment bug, not a data point). Long campaigns can opt
//! into *self-healing* with [`Campaign::self_heal`]: each trial then runs
//! under `catch_unwind` into a fresh aggregate that is merged in only on
//! success, panicking trials are retried up to a bounded attempt count,
//! and trials that fail every attempt are **quarantined** — the sweep
//! completes without them and reports each [`Quarantined`] trial in the
//! [`CampaignOutcome`]. A [`Campaign::stuck_after`] watchdog additionally
//! arms a per-shard deadline on the cancellation machinery: a shard that
//! exceeds it is recorded in [`CampaignOutcome::stuck_shards`] and the
//! campaign winds down cooperatively (an in-flight trial that never
//! returns still blocks exit — kill the process; the harness
//! checkpoint/resume layer recovers the sweep).
//!
//! ```
//! use mac_sim::campaign::{Campaign, Cell, Collect, SeedStream};
//!
//! let mut campaign = Campaign::new();
//! for k in 1u64..=3 {
//!     campaign.push(Cell::new(
//!         4,
//!         SeedStream::Offset(100 * k),
//!         Collect::default,
//!         move |seed, acc: &mut Collect<u64>| acc.0.push(seed * k),
//!     ));
//! }
//! let mut rows = Vec::new();
//! let outcome = campaign.run(|cell, acc| rows.push((cell, acc.0)));
//! assert_eq!(outcome.cells_delivered, 3);
//! assert_eq!(rows[0], (0, vec![100, 101, 102, 103]));
//! ```

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::obs::telemetry::{MetricsHub, PowHistogram, Registry};
use crate::rng::derive_stream_seed;

/// Extracts a human-readable message from a panic payload (the `Box<dyn
/// Any>` that [`std::panic::catch_unwind`] returns). The shared helper
/// behind campaign quarantine reports and the harness's wedged-trial
/// accounting, so every layer renders panics the same way.
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A streaming accumulator for trial results.
///
/// Shard aggregates are merged in shard-index order, so implementations
/// need not be exactly associative for campaign output to be deterministic
/// — but associative, commutative merges (exact integer moments, counters,
/// canonical histograms) additionally make the result independent of the
/// shard decomposition itself, which is what the resume layer relies on.
pub trait Aggregate: Send {
    /// Folds `other` — the aggregate of the *next* shard in seed order —
    /// into `self`.
    fn merge(&mut self, other: Self);
}

/// The simplest aggregate: collect every extracted value in seed order.
///
/// `merge` appends, and shards merge in seed order, so the final vector is
/// ordered exactly as the sequential loop would produce it. This is the
/// bridge that lets the [`trials`](crate::trials) layer (and tests that
/// want full sample vectors) run on the campaign pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collect<T>(pub Vec<T>);

impl<T> Default for Collect<T> {
    fn default() -> Self {
        Collect(Vec::new())
    }
}

impl<T: Send> Aggregate for Collect<T> {
    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

/// Unit aggregate for cells run purely for their side effects on shared
/// state (rare; prefer a real aggregate).
impl Aggregate for () {
    fn merge(&mut self, (): Self) {}
}

/// A plain counter: merge adds.
impl Aggregate for u64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// A running sum. Floating-point addition is not associative, but the
/// campaign merges shards in a fixed order, so the result is still
/// bit-identical for every worker count.
impl Aggregate for f64 {
    fn merge(&mut self, other: Self) {
        *self += other;
    }
}

/// Power-of-two histograms merge exactly (integer bucket counts, min/max,
/// sum), so traffic latency distributions aggregated across shards are
/// independent of the shard decomposition — the property the E21 tables'
/// worker-count invariance rests on.
impl Aggregate for PowHistogram {
    fn merge(&mut self, other: Self) {
        PowHistogram::merge(self, &other);
    }
}

/// Element-wise merge; `other` may be longer (its tail is appended), which
/// lets cells grow a per-phase vector lazily.
impl<A: Aggregate> Aggregate for Vec<A> {
    fn merge(&mut self, other: Self) {
        let mut other = other.into_iter();
        for slot in self.iter_mut() {
            let Some(elem) = other.next() else { return };
            slot.merge(elem);
        }
        self.extend(other);
    }
}

macro_rules! tuple_aggregate {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Aggregate),+> Aggregate for ($($name,)+) {
            fn merge(&mut self, other: Self) {
                $(self.$idx.merge(other.$idx);)+
            }
        }
    };
}
tuple_aggregate!(A0: 0);
tuple_aggregate!(A0: 0, A1: 1);
tuple_aggregate!(A0: 0, A1: 1, A2: 2);
tuple_aggregate!(A0: 0, A1: 1, A2: 2, A3: 3);

/// How a cell maps trial indices to engine seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedStream {
    /// Trial `i` runs at seed `base + i` (wrapping). The historical trial
    /// layer convention — existing experiment tables were recorded under
    /// it, so migrated sweeps keep their numbers.
    Offset(u64),
    /// Trial `i` runs at [`derive_stream_seed`]`(master, i)`: audited
    /// SplitMix64 expansion, decorrelated even across near-identical
    /// masters. The right choice for new sweeps and shard seeding.
    Derived(u64),
}

impl SeedStream {
    /// The engine seed for trial `trial`.
    #[must_use]
    pub fn seed(&self, trial: u64) -> u64 {
        match *self {
            SeedStream::Offset(base) => base.wrapping_add(trial),
            SeedStream::Derived(master) => derive_stream_seed(master, trial),
        }
    }
}

/// The boxed trial closure of a [`Cell`]: runs the trial at one engine
/// seed and folds the result into the shard aggregate.
type TrialFn<'a, A> = Box<dyn Fn(u64, &mut A) + Send + Sync + 'a>;

/// One grid point of a sweep: a trial count, a seed stream, and the two
/// closures the pool needs — `make` builds an empty aggregate, `run`
/// executes the trial at one seed and folds the result in.
pub struct Cell<'a, A> {
    trials: usize,
    seeds: SeedStream,
    make: Box<dyn Fn() -> A + Send + Sync + 'a>,
    run: TrialFn<'a, A>,
}

impl<'a, A> Cell<'a, A> {
    /// Builds a cell. The closures may borrow from the caller: the pool
    /// runs on scoped threads, so nothing needs `'static`.
    pub fn new(
        trials: usize,
        seeds: SeedStream,
        make: impl Fn() -> A + Send + Sync + 'a,
        run: impl Fn(u64, &mut A) + Send + Sync + 'a,
    ) -> Self {
        Cell {
            trials,
            seeds,
            make: Box::new(make),
            run: Box::new(run),
        }
    }

    /// The cell's trial count.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }
}

/// A cooperative cancellation handle: flips on [`CancelToken::cancel`] or
/// when a deadline passes. Checked between trials; an in-flight trial is
/// never interrupted.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Default)]
struct CancelInner {
    flag: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

impl CancelToken {
    /// A token that never fires until [`CancelToken::cancel`] is called.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Arms a deadline `timeout` from now; the token reports cancelled
    /// once the deadline passes.
    pub fn set_deadline(&self, timeout: Duration) {
        let mut deadline = self.inner.deadline.lock().expect("deadline lock");
        *deadline = Some(Instant::now() + timeout);
    }

    /// Whether cancellation has been requested or the deadline passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        let deadline = self.inner.deadline.lock().expect("deadline lock");
        match *deadline {
            Some(at) if Instant::now() >= at => {
                drop(deadline);
                self.inner.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Receives campaign progress events. Implementations throttle and render;
/// the pool just reports every completed trial and cell.
///
/// Events are forwarded through a **bounded** queue on a dedicated
/// thread: a slow implementation can never stall the worker pool. When
/// the queue is full, events are dropped (and counted in
/// [`CampaignOutcome::progress_dropped`]); every event therefore carries
/// a running total rather than a delta, so the latest delivered event is
/// always an accurate picture regardless of drops.
pub trait ProgressSink: Send + Sync {
    /// `done` of `total` trials have completed (across all cells).
    fn on_trial(&self, done: u64, total: u64);
    /// `done` of `total` cells have been delivered.
    fn on_cell(&self, done: usize, total: usize) {
        let _ = (done, total);
    }
    /// Self-healing re-attempted a panicked trial; `retries` is the
    /// cumulative retry count for the campaign.
    fn on_retry(&self, retries: u64) {
        let _ = retries;
    }
    /// A trial failed every self-healing attempt; `quarantined` is the
    /// cumulative quarantine count for the campaign.
    fn on_quarantine(&self, quarantined: u64) {
        let _ = quarantined;
    }
    /// The stuck-shard watchdog flagged a shard; `stuck` is the
    /// cumulative count of flagged shards.
    fn on_stuck(&self, stuck: u64) {
        let _ = stuck;
    }
}

/// One event in the bounded progress queue (see [`ProgressSink`]).
enum ProgressEvent {
    Trial(u64, u64),
    Cell(usize, usize),
    Retry(u64),
    Quarantine(u64),
    Stuck(u64),
}

/// Capacity of the bounded progress queue. Deep enough that a consumer
/// keeping up with a normal sweep never drops an event; shallow enough
/// that a wedged consumer costs bounded memory and zero worker stalls.
const PROGRESS_QUEUE_CAP: usize = 1024;

/// One trial that failed every self-healing attempt and was excluded from
/// its cell's aggregate (see [`Campaign::self_heal`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// Index of the cell the trial belonged to.
    pub cell: usize,
    /// Trial index within the cell.
    pub trial: u64,
    /// The engine seed the trial ran at.
    pub seed: u64,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The last attempt's panic message.
    pub error: String,
}

/// What a finished (or cancelled) campaign reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Cells in the campaign.
    pub cells_total: usize,
    /// Cells delivered to the callback — always the in-order prefix
    /// `0..cells_delivered`.
    pub cells_delivered: usize,
    /// Trials that ran to completion and contributed to an aggregate
    /// (quarantined trials are not counted).
    pub trials_run: u64,
    /// Whether the campaign stopped on a [`CancelToken`].
    pub cancelled: bool,
    /// Trials excluded by self-healing, sorted by `(cell, trial)`. Always
    /// empty unless [`Campaign::self_heal`] was enabled.
    pub quarantined: Vec<Quarantined>,
    /// Shard indices the [`Campaign::stuck_after`] watchdog flagged,
    /// sorted ascending. Always empty without a watchdog.
    pub stuck_shards: Vec<usize>,
    /// Progress events dropped because the bounded [`ProgressSink`] queue
    /// was full (the consumer could not keep up). Dropped events never
    /// stall the pool, and every delivered event carries running totals,
    /// so drops cost display granularity only — never accuracy.
    pub progress_dropped: u64,
}

impl CampaignOutcome {
    /// Whether the campaign finished without cancellation, quarantined
    /// trials, or stuck shards.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.cancelled && self.quarantined.is_empty() && self.stuck_shards.is_empty()
    }
}

/// A sweep scheduled as one unit: cells × trials, one worker pool.
pub struct Campaign<'a, A> {
    cells: Vec<Cell<'a, A>>,
    shard_size: usize,
    workers: Option<usize>,
    cancel: Option<CancelToken>,
    progress: Option<Arc<dyn ProgressSink>>,
    telemetry: Option<Arc<MetricsHub>>,
    heal_attempts: Option<u32>,
    stuck_after: Option<Duration>,
}

/// Default trials per shard: small enough to load-balance sweeps whose
/// cells have wildly different per-trial cost, big enough that shard
/// bookkeeping stays noise.
pub const DEFAULT_SHARD_SIZE: usize = 8;

impl<A: Aggregate> Default for Campaign<'_, A> {
    fn default() -> Self {
        Campaign::new()
    }
}

impl<'a, A: Aggregate> Campaign<'a, A> {
    /// An empty campaign with default shard size and worker count.
    #[must_use]
    pub fn new() -> Self {
        Campaign {
            cells: Vec::new(),
            shard_size: DEFAULT_SHARD_SIZE,
            workers: None,
            cancel: None,
            progress: None,
            telemetry: None,
            heal_attempts: None,
            stuck_after: None,
        }
    }

    /// Sets the trials-per-shard granularity. The shard decomposition (and
    /// therefore the exact merge bracketing) is a pure function of
    /// `(trials, shard_size)` — never of the worker count.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero.
    #[must_use]
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shard size must be positive");
        self.shard_size = shard_size;
        self
    }

    /// Pins the worker count (default: `available_parallelism()`).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        self.workers = Some(workers);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a progress sink.
    #[must_use]
    pub fn progress(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Attaches a metrics hub. Each worker tallies into a private
    /// [`Registry`] and absorbs it into the hub's shard for its worker
    /// index when it exits, so the hot trial loop never takes a shared
    /// lock; scheduler-level gauges (worker count, queue depth, dropped
    /// progress events) land in shard 0 after the pool drains. Purely
    /// observational: trial seeds, shard decomposition, and aggregates
    /// are bit-identical with or without a hub attached.
    #[must_use]
    pub fn telemetry(mut self, hub: Arc<MetricsHub>) -> Self {
        self.telemetry = Some(hub);
        self
    }

    /// Enables self-healing: every trial runs under `catch_unwind` into a
    /// fresh aggregate merged in only on success; a panicking trial is
    /// retried up to `attempts` times in total, then *quarantined* —
    /// excluded from its cell's aggregate and reported in
    /// [`CampaignOutcome::quarantined`] — instead of killing the sweep.
    ///
    /// The fresh-aggregate-then-merge fold is exactly equivalent to the
    /// direct fold for associative aggregates (all the integer-moment,
    /// counter, and collect aggregates the harness uses), so enabling
    /// self-healing does not change panic-free results.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    #[must_use]
    pub fn self_heal(mut self, attempts: u32) -> Self {
        assert!(attempts >= 1, "self-healing needs at least one attempt");
        self.heal_attempts = Some(attempts);
        self
    }

    /// Arms a stuck-shard watchdog: a shard still in flight after `limit`
    /// is recorded in [`CampaignOutcome::stuck_shards`] and the campaign
    /// is cancelled (through the attached [`CancelToken`], or an internal
    /// one if none was attached) so healthy workers stop claiming work.
    /// Cooperative only: a trial that never returns still blocks campaign
    /// exit — kill the process and resume from checkpoints.
    #[must_use]
    pub fn stuck_after(mut self, limit: Duration) -> Self {
        self.stuck_after = Some(limit);
        self
    }

    /// Appends a cell; returns its index (= delivery order).
    pub fn push(&mut self, cell: Cell<'a, A>) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Number of cells queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total trials across all cells.
    #[must_use]
    pub fn total_trials(&self) -> u64 {
        self.cells.iter().map(|c| c.trials as u64).sum()
    }

    /// Runs the campaign: spawns the pool once, streams every finished
    /// cell's aggregate to `on_cell(cell_index, aggregate)` **in cell
    /// order**, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Propagates panics from cell closures (a failed trial is an
    /// experiment bug, not a data point) — unless [`Campaign::self_heal`]
    /// is enabled, in which case failing trials are quarantined instead.
    pub fn run<F>(self, on_cell: F) -> CampaignOutcome
    where
        F: FnMut(usize, A) + Send,
    {
        let Campaign {
            cells,
            shard_size,
            workers,
            cancel,
            progress,
            telemetry,
            heal_attempts,
            stuck_after,
        } = self;

        // The watchdog needs a token to fire; make an internal one if the
        // caller did not attach their own.
        let cancel = match (cancel, stuck_after) {
            (None, Some(_)) => Some(CancelToken::new()),
            (cancel, _) => cancel,
        };

        // The fixed shard decomposition: every cell's trial range cut into
        // `shard_size` chunks, queued cell-major.
        struct Shard {
            cell: usize,
            index: usize,
            start: u64,
            len: u64,
        }
        let mut shards = Vec::new();
        let mut shard_counts = vec![0usize; cells.len()];
        for (cell_idx, cell) in cells.iter().enumerate() {
            let count = cell.trials.div_ceil(shard_size);
            shard_counts[cell_idx] = count;
            for index in 0..count {
                let start = (index * shard_size) as u64;
                let len = (cell.trials - index * shard_size).min(shard_size) as u64;
                shards.push(Shard {
                    cell: cell_idx,
                    index,
                    start,
                    len,
                });
            }
        }
        let total_trials: u64 = cells.iter().map(|c| c.trials as u64).sum();

        // Per-cell ordered-merge state.
        struct Merging<A> {
            next_shard: usize,
            pending: BTreeMap<usize, A>,
            acc: Option<A>,
        }
        let merging: Vec<Mutex<Merging<A>>> = cells
            .iter()
            .map(|_| {
                Mutex::new(Merging {
                    next_shard: 0,
                    pending: BTreeMap::new(),
                    acc: None,
                })
            })
            .collect();

        // In-cell-order delivery state.
        struct Delivery<A, F> {
            next_cell: usize,
            ready: BTreeMap<usize, A>,
            on_cell: F,
            delivered: usize,
        }
        let delivery = Mutex::new(Delivery {
            next_cell: 0,
            ready: BTreeMap::new(),
            on_cell,
            delivered: 0,
        });

        let next_shard = AtomicUsize::new(0);
        let trials_done = AtomicU64::new(0);
        let cells_total = cells.len();
        let quarantined: Mutex<Vec<Quarantined>> = Mutex::new(Vec::new());
        let stuck_shards: Mutex<Vec<usize>> = Mutex::new(Vec::new());

        // Progress decoupling: workers enqueue events into a bounded
        // channel drained by one forwarder thread, so a slow or wedged
        // sink can never stall the pool. `try_send` failures are counted,
        // not retried — every event carries running totals, so the next
        // delivered event heals the gap. The forwarder is a plain
        // (unscoped) thread: the `Arc<dyn ProgressSink>` moves into it,
        // and it exits when the sender side drops after the pool joins.
        let progress_dropped = AtomicU64::new(0);
        let retries_total = AtomicU64::new(0);
        let quarantined_total = AtomicU64::new(0);
        let stuck_total = AtomicU64::new(0);
        let (progress_tx, forwarder) = match progress {
            Some(sink) => {
                let (tx, rx) = sync_channel::<ProgressEvent>(PROGRESS_QUEUE_CAP);
                let handle = std::thread::spawn(move || {
                    while let Ok(event) = rx.recv() {
                        match event {
                            ProgressEvent::Trial(done, total) => sink.on_trial(done, total),
                            ProgressEvent::Cell(done, total) => sink.on_cell(done, total),
                            ProgressEvent::Retry(n) => sink.on_retry(n),
                            ProgressEvent::Quarantine(n) => sink.on_quarantine(n),
                            ProgressEvent::Stuck(n) => sink.on_stuck(n),
                        }
                    }
                });
                (Some(tx), Some(handle))
            }
            None => (None, None),
        };
        let emit = |event: ProgressEvent| {
            if let Some(tx) = &progress_tx {
                if tx.try_send(event).is_err() {
                    progress_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        };

        let deliver = |cell_idx: usize, acc: A| {
            let mut delivery = delivery.lock().expect("delivery lock");
            delivery.ready.insert(cell_idx, acc);
            loop {
                let cell = delivery.next_cell;
                let Some(acc) = delivery.ready.remove(&cell) else {
                    break;
                };
                (delivery.on_cell)(cell, acc);
                delivery.next_cell += 1;
                delivery.delivered += 1;
                emit(ProgressEvent::Cell(delivery.delivered, cells_total));
            }
        };

        let submit = |cell_idx: usize, shard_index: usize, agg: A| {
            let mut state = merging[cell_idx].lock().expect("merge lock");
            state.pending.insert(shard_index, agg);
            while let Some(agg) = {
                let key = state.next_shard;
                state.pending.remove(&key)
            } {
                match state.acc.as_mut() {
                    Some(acc) => acc.merge(agg),
                    None => state.acc = Some(agg),
                }
                state.next_shard += 1;
            }
            if state.next_shard == shard_counts[cell_idx] {
                let acc = state.acc.take().expect("completed cell has an aggregate");
                drop(state);
                deliver(cell_idx, acc);
            }
        };

        // Zero-trial cells complete immediately with an empty aggregate;
        // no shard will ever submit to them.
        for (cell_idx, cell) in cells.iter().enumerate() {
            if shard_counts[cell_idx] == 0 {
                deliver(cell_idx, (cell.make)());
            }
        }

        let worker_count = workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
            })
            .min(shards.len().max(1));

        let cancelled = || cancel.as_ref().is_some_and(CancelToken::is_cancelled);

        // Stuck-shard watchdog state: one claim slot per worker, plus a
        // live-worker count the watchdog thread uses to know when to exit
        // (it must not outlive the workers, or the scope join would hang).
        let claim_slots: Vec<Mutex<Option<(usize, Instant)>>> =
            (0..worker_count).map(|_| Mutex::new(None)).collect();
        let workers_alive = AtomicUsize::new(worker_count);

        std::thread::scope(|scope| {
            for (worker_idx, claim_slot) in claim_slots.iter().enumerate() {
                let quarantined = &quarantined;
                let workers_alive = &workers_alive;
                let cells = &cells;
                let shards = &shards;
                let next_shard = &next_shard;
                let trials_done = &trials_done;
                let retries_total = &retries_total;
                let quarantined_total = &quarantined_total;
                let telemetry = &telemetry;
                let emit = &emit;
                let submit = &submit;
                let cancelled = &cancelled;
                scope.spawn(move || {
                    // Worker-private tallies; absorbed into the hub only
                    // once, at worker exit, so the trial loop stays
                    // lock-free with respect to other workers.
                    let mut local = Registry::new();
                    loop {
                        if cancelled() {
                            break;
                        }
                        let claim = next_shard.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(claim) else {
                            break;
                        };
                        *claim_slot.lock().expect("claim slot") = Some((claim, Instant::now()));
                        let shard_started = Instant::now();
                        let cell = &cells[shard.cell];
                        let mut agg = (cell.make)();
                        let mut abandoned = false;
                        for trial in shard.start..shard.start + shard.len {
                            if trial != shard.start && cancelled() {
                                abandoned = true;
                                break;
                            }
                            let seed = cell.seeds.seed(trial);
                            match heal_attempts {
                                None => (cell.run)(seed, &mut agg),
                                Some(max_attempts) => {
                                    // Healed trials fold into a fresh
                                    // aggregate merged in on success, so a
                                    // mid-mutation panic cannot tear the
                                    // shard aggregate.
                                    let mut attempt = 0;
                                    loop {
                                        attempt += 1;
                                        let one = catch_unwind(AssertUnwindSafe(|| {
                                            let mut one = (cell.make)();
                                            (cell.run)(seed, &mut one);
                                            one
                                        }));
                                        match one {
                                            Ok(one) => {
                                                agg.merge(one);
                                                break;
                                            }
                                            Err(payload) if attempt >= max_attempts => {
                                                quarantined.lock().expect("quarantine lock").push(
                                                    Quarantined {
                                                        cell: shard.cell,
                                                        trial,
                                                        seed,
                                                        attempts: attempt,
                                                        error: panic_message(payload.as_ref()),
                                                    },
                                                );
                                                let n = quarantined_total
                                                    .fetch_add(1, Ordering::Relaxed)
                                                    + 1;
                                                emit(ProgressEvent::Quarantine(n));
                                                local.count("campaign_trials_quarantined_total", 1);
                                                break;
                                            }
                                            Err(_) => {
                                                let n = retries_total
                                                    .fetch_add(1, Ordering::Relaxed)
                                                    + 1;
                                                emit(ProgressEvent::Retry(n));
                                                local.count("campaign_trials_retried_total", 1);
                                            }
                                        }
                                    }
                                }
                            }
                            let done = trials_done.fetch_add(1, Ordering::Relaxed) + 1;
                            local.count("campaign_trials_done_total", 1);
                            emit(ProgressEvent::Trial(done, total_trials));
                        }
                        *claim_slot.lock().expect("claim slot") = None;
                        let shard_ns =
                            u64::try_from(shard_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        local.count("campaign_shards_claimed_total", 1);
                        local.count("campaign_worker_busy_ns_total", shard_ns);
                        local.observe("campaign_shard_wall_ns", shard_ns);
                        if abandoned {
                            break;
                        }
                        submit(shard.cell, shard.index, agg);
                    }
                    *claim_slot.lock().expect("claim slot") = None;
                    if let Some(hub) = telemetry {
                        hub.absorb(worker_idx, &local);
                    }
                    workers_alive.fetch_sub(1, Ordering::Release);
                });
            }

            if let Some(limit) = stuck_after {
                let token = cancel.as_ref().expect("watchdog token").clone();
                let claim_slots = &claim_slots;
                let workers_alive = &workers_alive;
                let stuck_shards = &stuck_shards;
                let stuck_total = &stuck_total;
                let emit = &emit;
                scope.spawn(move || {
                    while workers_alive.load(Ordering::Acquire) > 0 {
                        let now = Instant::now();
                        for slot in claim_slots {
                            let slot = slot.lock().expect("claim slot");
                            if let Some((shard_idx, since)) = *slot {
                                if now.duration_since(since) >= limit {
                                    let mut stuck = stuck_shards.lock().expect("stuck-shard lock");
                                    if !stuck.contains(&shard_idx) {
                                        stuck.push(shard_idx);
                                        let n = stuck_total.fetch_add(1, Ordering::Relaxed) + 1;
                                        emit(ProgressEvent::Stuck(n));
                                    }
                                    token.cancel();
                                }
                            }
                        }
                        std::thread::sleep(limit.min(Duration::from_millis(20)));
                    }
                });
            }
        });

        // Close the progress queue and drain it: dropping the sender ends
        // the forwarder's `recv` loop after the in-flight backlog is
        // delivered. If overflow dropped any live events, send one final
        // *blocking* trial event first — the pool is already done, so
        // waiting on the consumer here costs nothing — so the sink always
        // converges on the true totals.
        if progress_dropped.load(Ordering::Relaxed) > 0 {
            if let Some(tx) = &progress_tx {
                let _ = tx.send(ProgressEvent::Trial(
                    trials_done.load(Ordering::Relaxed),
                    total_trials,
                ));
            }
        }
        drop(progress_tx);
        if let Some(handle) = forwarder {
            let _ = handle.join();
        }

        let delivery = delivery.into_inner().expect("delivery lock");
        let mut quarantined = quarantined.into_inner().expect("quarantine lock");
        quarantined.sort_by_key(|q| (q.cell, q.trial));
        let mut stuck_shards = stuck_shards.into_inner().expect("stuck-shard lock");
        stuck_shards.sort_unstable();
        let trials_attempted = trials_done.into_inner();
        let was_cancelled = cancelled();

        // Scheduler-level tallies that only exist once per campaign land
        // in shard 0 after the pool drains (the workers' own shards hold
        // the per-worker trial/shard counters).
        if let Some(hub) = &telemetry {
            let mut tail = Registry::new();
            tail.gauge_max("campaign_workers", worker_count as u64);
            tail.gauge_max("campaign_cells_total", cells_total as u64);
            tail.gauge_max("campaign_shards_total", shards.len() as u64);
            tail.gauge_max(
                "campaign_queue_depth",
                shards.len().saturating_sub(next_shard.into_inner()) as u64,
            );
            tail.count("campaign_cells_delivered_total", delivery.delivered as u64);
            tail.count(
                "campaign_progress_dropped_total",
                progress_dropped.load(Ordering::Relaxed),
            );
            if was_cancelled {
                tail.count("campaign_cancelled_total", 1);
            }
            hub.absorb(0, &tail);
        }

        CampaignOutcome {
            cells_total,
            cells_delivered: delivery.delivered,
            trials_run: trials_attempted - quarantined.len() as u64,
            cancelled: was_cancelled,
            quarantined,
            stuck_shards,
            progress_dropped: progress_dropped.into_inner(),
        }
    }

    /// Runs the campaign and collects every cell's aggregate in cell
    /// order. Convenience for callers without streaming needs (tests,
    /// benches, the trial layer).
    ///
    /// # Panics
    ///
    /// Panics if the campaign was cancelled before every cell completed.
    #[must_use]
    pub fn run_collect(self) -> Vec<A> {
        let total = self.len();
        let mut out: Vec<Option<A>> = (0..total).map(|_| None).collect();
        let outcome = self.run(|cell, acc| out[cell] = Some(acc));
        assert!(
            outcome.cells_delivered == total,
            "campaign cancelled after {} of {total} cells",
            outcome.cells_delivered
        );
        out.into_iter().map(|c| c.expect("delivered")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic "workload": collatz-ish step count, varies by seed.
    fn work(seed: u64) -> u64 {
        let mut x = seed | 1;
        let mut steps = 0u64;
        while x != 1 && steps < 200 {
            x = if x.is_multiple_of(2) {
                x / 2
            } else {
                3 * x + 1
            };
            steps += 1;
        }
        steps
    }

    fn sum_campaign(cells: usize, trials: usize) -> Campaign<'static, Collect<u64>> {
        let mut campaign = Campaign::new();
        for c in 0..cells {
            campaign.push(Cell::new(
                trials,
                SeedStream::Offset(1000 * c as u64),
                Collect::default,
                |seed, acc: &mut Collect<u64>| acc.0.push(work(seed)),
            ));
        }
        campaign
    }

    #[test]
    fn cells_deliver_in_order_with_seed_ordered_contents() {
        let mut order = Vec::new();
        let outcome = sum_campaign(5, 20).run(|cell, acc| {
            assert_eq!(acc.0.len(), 20);
            let expect: Vec<u64> = (0..20).map(|i| work(1000 * cell as u64 + i)).collect();
            assert_eq!(acc.0, expect, "cell {cell} is not in seed order");
            order.push(cell);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(outcome.cells_delivered, 5);
        assert_eq!(outcome.trials_run, 100);
        assert!(!outcome.cancelled);
    }

    #[test]
    fn output_is_worker_count_invariant() {
        let collect = |workers: usize| -> Vec<Vec<u64>> {
            sum_campaign(3, 17)
                .workers(workers)
                .shard_size(4)
                .run_collect()
                .into_iter()
                .map(|c| c.0)
                .collect()
        };
        let one = collect(1);
        for workers in [2, 3, 8, 32] {
            assert_eq!(one, collect(workers), "{workers} workers diverged");
        }
    }

    #[test]
    fn shard_size_does_not_change_collected_output() {
        let collect = |shard: usize| {
            sum_campaign(2, 23)
                .shard_size(shard)
                .run_collect()
                .into_iter()
                .map(|c| c.0)
                .collect::<Vec<_>>()
        };
        let baseline = collect(1);
        for shard in [2, 5, 23, 100] {
            assert_eq!(baseline, collect(shard));
        }
    }

    #[test]
    fn cancellation_delivers_a_prefix() {
        let token = CancelToken::new();
        token.cancel();
        let mut delivered = Vec::new();
        let outcome = sum_campaign(4, 50)
            .cancel_token(token)
            .run(|cell, _| delivered.push(cell));
        assert!(outcome.cancelled);
        assert!(outcome.cells_delivered <= 4);
        let expect: Vec<usize> = (0..outcome.cells_delivered).collect();
        assert_eq!(delivered, expect, "delivery is not an in-order prefix");
    }

    #[test]
    fn deadline_cancels() {
        let token = CancelToken::new();
        token.set_deadline(Duration::from_secs(0));
        assert!(token.is_cancelled());
    }

    #[test]
    fn zero_trial_cells_complete_empty() {
        let mut campaign: Campaign<Collect<u64>> = Campaign::new();
        campaign.push(Cell::new(
            0,
            SeedStream::Offset(0),
            Collect::default,
            |_, _| panic!("no trials to run"),
        ));
        let cells = campaign.run_collect();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].0.is_empty());
    }

    #[test]
    fn empty_campaign_returns_clean_outcome() {
        // A campaign with no cells at all must complete cleanly, not
        // panic: zero cells, zero trials, nothing delivered, not
        // cancelled.
        let campaign: Campaign<Collect<u64>> = Campaign::new();
        assert!(campaign.is_empty());
        let mut delivered = 0usize;
        let outcome = campaign.run(|_, _| delivered += 1);
        assert_eq!(delivered, 0);
        assert_eq!(
            outcome,
            CampaignOutcome {
                cells_total: 0,
                cells_delivered: 0,
                trials_run: 0,
                cancelled: false,
                quarantined: Vec::new(),
                stuck_shards: Vec::new(),
                progress_dropped: 0,
            }
        );
        assert!(outcome.is_clean());
        // run_collect on an empty campaign is an empty vector.
        let campaign: Campaign<Collect<u64>> = Campaign::new();
        assert!(campaign.run_collect().is_empty());
    }

    #[test]
    fn self_heal_quarantines_deterministic_panics() {
        let poison = 1005u64;
        let mut campaign: Campaign<Collect<u64>> = Campaign::new().self_heal(2).shard_size(3);
        for c in 0..2u64 {
            campaign.push(Cell::new(
                10,
                SeedStream::Offset(1000 * (c + 1)),
                Collect::default,
                move |seed, acc: &mut Collect<u64>| {
                    assert!(seed != poison, "poisoned seed {seed}");
                    acc.0.push(work(seed));
                },
            ));
        }
        let mut rows = Vec::new();
        let outcome = campaign.run(|cell, acc| rows.push((cell, acc.0)));
        assert_eq!(outcome.cells_delivered, 2, "sweep completes");
        assert!(!outcome.cancelled);
        assert_eq!(outcome.trials_run, 19, "one trial quarantined");
        assert_eq!(outcome.quarantined.len(), 1);
        let q = &outcome.quarantined[0];
        assert_eq!((q.cell, q.trial, q.seed, q.attempts), (0, 5, poison, 2));
        assert!(q.error.contains("poisoned seed 1005"), "{}", q.error);
        // The poisoned cell's aggregate holds the other nine trials, in
        // seed order; the healthy cell is untouched.
        let expect0: Vec<u64> = (1000..1010).filter(|&s| s != poison).map(work).collect();
        let expect1: Vec<u64> = (2000..2010).map(work).collect();
        assert_eq!(rows, vec![(0, expect0), (1, expect1)]);
    }

    #[test]
    fn self_heal_retries_transient_panics() {
        let failures = AtomicU64::new(2);
        let mut campaign: Campaign<Collect<u64>> = Campaign::new().self_heal(3);
        campaign.push(Cell::new(
            4,
            SeedStream::Offset(0),
            Collect::default,
            |seed, acc: &mut Collect<u64>| {
                if seed == 2 && failures.load(Ordering::Relaxed) > 0 {
                    failures.fetch_sub(1, Ordering::Relaxed);
                    panic!("transient");
                }
                acc.0.push(seed);
            },
        ));
        let mut rows = Vec::new();
        let outcome = campaign.run(|_, acc| rows.push(acc.0));
        assert!(outcome.quarantined.is_empty(), "retry healed the trial");
        assert_eq!(outcome.trials_run, 4);
        assert_eq!(rows, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn self_heal_is_bit_identical_on_panic_free_sweeps() {
        let plain: Vec<Vec<u64>> = sum_campaign(3, 17)
            .shard_size(4)
            .run_collect()
            .into_iter()
            .map(|c| c.0)
            .collect();
        let healed: Vec<Vec<u64>> = sum_campaign(3, 17)
            .shard_size(4)
            .self_heal(2)
            .run_collect()
            .into_iter()
            .map(|c| c.0)
            .collect();
        assert_eq!(plain, healed);
    }

    #[test]
    fn watchdog_flags_a_stuck_shard_and_cancels() {
        let mut campaign: Campaign<Collect<u64>> = Campaign::new()
            .shard_size(1)
            .workers(2)
            .stuck_after(Duration::from_millis(40));
        campaign.push(Cell::new(
            6,
            SeedStream::Offset(0),
            Collect::default,
            |seed, acc: &mut Collect<u64>| {
                if seed == 0 {
                    // Slow (but finite) trial: the watchdog fires while it
                    // runs, the campaign winds down cooperatively.
                    std::thread::sleep(Duration::from_millis(200));
                }
                acc.0.push(seed);
            },
        ));
        let outcome = campaign.run(|_, _| {});
        assert!(outcome.cancelled, "watchdog cancelled the campaign");
        assert_eq!(outcome.stuck_shards, vec![0], "shard 0 was flagged");
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let caught = catch_unwind(|| panic!("plain literal")).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "plain literal");
        let caught = catch_unwind(|| panic!("formatted {}", 7)).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
        let caught = catch_unwind(|| std::panic::panic_any(42i32)).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "non-string panic payload");
    }

    #[test]
    fn derived_seed_stream_uses_the_audited_helper() {
        let s = SeedStream::Derived(42);
        assert_eq!(s.seed(0), derive_stream_seed(42, 0));
        assert_eq!(s.seed(9), derive_stream_seed(42, 9));
        let o = SeedStream::Offset(u64::MAX);
        assert_eq!(o.seed(1), 0, "offset streams wrap");
    }

    #[test]
    fn scalar_and_tuple_aggregates_merge() {
        let mut campaign: Campaign<(u64, f64, Vec<u64>)> = Campaign::new().shard_size(3);
        campaign.push(Cell::new(
            10,
            SeedStream::Offset(0),
            <(u64, f64, Vec<u64>)>::default,
            |seed, acc| {
                acc.0 += seed;
                acc.1 += 0.5;
                if acc.2.is_empty() {
                    acc.2.push(0);
                }
                acc.2[0] += 1;
            },
        ));
        let (count, half, v) = campaign.run_collect().remove(0);
        assert_eq!(count, 45);
        assert!((half - 5.0).abs() < 1e-12);
        assert_eq!(v, vec![10]);
    }

    #[test]
    fn progress_reports_every_trial_and_cell() {
        struct CountSink {
            trials: AtomicU64,
            cells: AtomicUsize,
        }
        impl ProgressSink for CountSink {
            fn on_trial(&self, _done: u64, total: u64) {
                assert_eq!(total, 12);
                self.trials.fetch_add(1, Ordering::Relaxed);
            }
            fn on_cell(&self, _done: usize, total: usize) {
                assert_eq!(total, 3);
                self.cells.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(CountSink {
            trials: AtomicU64::new(0),
            cells: AtomicUsize::new(0),
        });
        let outcome = sum_campaign(3, 4).progress(sink.clone()).run(|_, _| {});
        assert_eq!(sink.trials.load(Ordering::Relaxed), 12);
        assert_eq!(sink.cells.load(Ordering::Relaxed), 3);
        assert_eq!(outcome.progress_dropped, 0, "fast consumer drops nothing");
    }

    #[test]
    fn slow_progress_consumer_drops_events_without_stalling_the_pool() {
        // A sink that takes ~1ms per event against thousands of
        // near-instant trials: the bounded queue must overflow (drops
        // counted, workers never blocked) and the campaign must finish
        // far sooner than a synchronous delivery of every event would
        // allow. Running totals mean the final delivered trial event
        // still reflects true progress.
        struct SlowSink {
            events: AtomicU64,
            last_done: AtomicU64,
        }
        impl ProgressSink for SlowSink {
            fn on_trial(&self, done: u64, _total: u64) {
                std::thread::sleep(Duration::from_millis(1));
                self.events.fetch_add(1, Ordering::Relaxed);
                self.last_done.fetch_max(done, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(SlowSink {
            events: AtomicU64::new(0),
            last_done: AtomicU64::new(0),
        });
        let trials = 4000usize;
        let mut campaign: Campaign<u64> = Campaign::new().shard_size(16).workers(4);
        campaign.push(Cell::new(
            trials,
            SeedStream::Offset(0),
            || 0u64,
            |seed, acc| {
                *acc += seed;
            },
        ));
        let outcome = campaign.progress(sink.clone()).run(|_, _| {});
        assert_eq!(outcome.trials_run, trials as u64, "no trial was lost");
        assert!(
            outcome.progress_dropped > 0,
            "a 1ms/event consumer against {trials} instant trials must overflow the queue"
        );
        let delivered = sink.events.load(Ordering::Relaxed);
        assert!(
            delivered as usize + outcome.progress_dropped as usize >= trials,
            "delivered {delivered} + dropped {} < emitted {trials}",
            outcome.progress_dropped
        );
        assert_eq!(
            sink.last_done.load(Ordering::Relaxed),
            trials as u64,
            "the final trial event survives the post-pool drain"
        );
    }

    #[test]
    fn progress_reports_retries_quarantines_and_running_totals() {
        struct HealSink {
            retries: AtomicU64,
            quarantines: AtomicU64,
        }
        impl ProgressSink for HealSink {
            fn on_trial(&self, _done: u64, _total: u64) {}
            fn on_retry(&self, retries: u64) {
                self.retries.fetch_max(retries, Ordering::Relaxed);
            }
            fn on_quarantine(&self, quarantined: u64) {
                self.quarantines.fetch_max(quarantined, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(HealSink {
            retries: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        });
        let mut campaign: Campaign<Collect<u64>> = Campaign::new().self_heal(2);
        campaign.push(Cell::new(
            6,
            SeedStream::Offset(0),
            Collect::default,
            |seed, acc: &mut Collect<u64>| {
                assert!(seed != 3, "poisoned seed {seed}");
                acc.0.push(seed);
            },
        ));
        let outcome = campaign.progress(sink.clone()).run(|_, _| {});
        assert_eq!(outcome.quarantined.len(), 1);
        // Seed 3 fails both attempts: attempt 1 is a retry, attempt 2
        // quarantines. Events carry cumulative totals.
        assert_eq!(sink.retries.load(Ordering::Relaxed), 1);
        assert_eq!(sink.quarantines.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn telemetry_hub_tallies_scheduler_counters() {
        let hub = Arc::new(MetricsHub::new(4));
        let outcome = sum_campaign(3, 17)
            .shard_size(4)
            .workers(4)
            .telemetry(hub.clone())
            .run(|_, _| {});
        assert_eq!(outcome.trials_run, 51);
        let snap = hub.snapshot();
        let reg = &snap.registry;
        assert_eq!(reg.counter("campaign_trials_done_total"), 51);
        assert_eq!(reg.counter("campaign_cells_delivered_total"), 3);
        // 3 cells × ceil(17/4) = 15 shards, all claimed exactly once.
        assert_eq!(reg.counter("campaign_shards_claimed_total"), 15);
        assert_eq!(reg.counter("campaign_progress_dropped_total"), 0);
        assert_eq!(reg.gauges().get("campaign_workers"), Some(&4));
        assert_eq!(reg.gauges().get("campaign_cells_total"), Some(&3));
        assert_eq!(reg.gauges().get("campaign_shards_total"), Some(&15));
        assert_eq!(reg.gauges().get("campaign_queue_depth"), Some(&0));
        let wall = reg
            .histograms()
            .get("campaign_shard_wall_ns")
            .expect("histogram");
        assert_eq!(wall.count(), 15, "one latency sample per shard");
        assert!(reg.counter("campaign_worker_busy_ns_total") >= wall.sum());
    }

    #[test]
    fn telemetry_attachment_does_not_change_aggregates() {
        let bare: Vec<Vec<u64>> = sum_campaign(3, 17)
            .shard_size(4)
            .run_collect()
            .into_iter()
            .map(|c| c.0)
            .collect();
        let hub = Arc::new(MetricsHub::new(2));
        let mut observed = Vec::new();
        let outcome = sum_campaign(3, 17)
            .shard_size(4)
            .telemetry(hub)
            .run(|cell, acc| observed.push((cell, acc.0)));
        let observed: Vec<Vec<u64>> = observed.into_iter().map(|(_, v)| v).collect();
        assert_eq!(bare, observed, "hub attachment perturbed results");
        assert!(outcome.is_clean());
    }
}
