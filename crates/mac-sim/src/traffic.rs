//! Dynamic-arrivals traffic: continuous packet streams over the round
//! engine, with per-packet latency and delivered-throughput accounting.
//!
//! Everything else in this crate runs *one-shot* workloads: a fixed
//! population wakes on a fixed schedule, the run ends at the first solve
//! (or total termination). This module is the queueing view of contention
//! resolution instead — the one Bender et al. and Chen–Jiang–Zheng analyze
//! — where packets keep *arriving* over time:
//!
//! * a seeded [`ArrivalProcess`] (Poisson, bursty on/off, fixed-rate,
//!   adversarial batch) decides how many packets arrive each round;
//! * each arrival becomes one engine slot, injected **incrementally** into
//!   the active-set wake agenda via
//!   [`Engine::add_node_at`](crate::Engine::add_node_at) — per-round cost
//!   stays O(|live| + touched channels), never O(total arrivals);
//! * a lone primary-channel transmission *delivers* that sender's packet
//!   and retires the slot ([`SimConfig::continuous_delivery`]), optionally
//!   re-arming the sender with a fresh packet ([`TrafficSpec::rearm`]);
//! * the run ends at a round [`TrafficSpec::horizon`], or when the backlog
//!   drains after the arrival window closes, or when
//!   [`SimConfig::round_budget`] trips — never by a global solve.
//!
//! The result is a [`TrafficReport`]: delivered / offered / dropped
//! counts, backlog peak and mean, and a [`PowHistogram`] of per-packet
//! latencies ready for the telemetry hub
//! ([`TrafficReport::flush_to`]).
//!
//! Determinism contract: a traffic run is a pure function of
//! (configuration, spec, master seed). The same driver runs on the
//! active-set [`Engine`] ([`run_traffic`]) and on the
//! O(n)-scan [`DenseEngine`] reference
//! ([`run_traffic_dense`]); `crates/mac-sim/tests/traffic_equivalence.rs`
//! pins the two bit-identical across arrival processes × CD modes × fault
//! stacks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::action::{Action, Feedback};
use crate::channel::ChannelId;
use crate::config::{SimConfig, StopWhen};
use crate::dense::DenseEngine;
use crate::engine::{Engine, NodeId, SlotState, StepStatus};
use crate::error::SimError;
use crate::feedback::FeedbackModel;
use crate::obs::telemetry::{MetricsHub, PowHistogram, Registry};
use crate::protocol::{Protocol, RoundContext, Status};
use crate::rng::derive_stream_seed;
use crate::sink::EventSink;

/// Salt separating the arrival stream's RNG from node and fault streams
/// derived from the same master seed.
const ARRIVAL_STREAM: u64 = 0x0074_5241_4646_4943_u64; // "TRAFFIC"

/// How packets arrive over time. All randomness comes from one RNG stream
/// derived from the master seed, so the arrival schedule is independent of
/// node count, worker count, and everything the protocols do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson(`rate`) packets per round — the memoryless baseline of the
    /// queueing literature. `rate` is the offered load in packets/round.
    Poisson {
        /// Mean packets per round.
        rate: f64,
    },
    /// On/off modulated Poisson: while *on*, Poisson(`burst_rate`)
    /// arrivals per round; while *off*, none. The phase flips with the
    /// given per-round probabilities (sampled after each round's count, so
    /// the draw order is fixed). Mean load is
    /// `burst_rate · off_to_on / (on_to_off + off_to_on)`.
    Bursty {
        /// Mean packets per round while the source is on.
        burst_rate: f64,
        /// Per-round probability of switching on → off.
        on_to_off: f64,
        /// Per-round probability of switching off → on.
        off_to_on: f64,
    },
    /// Deterministic: `batch` packets every `period` rounds, starting at
    /// round 0.
    FixedRate {
        /// Rounds between batches (≥ 1).
        period: u64,
        /// Packets per batch.
        batch: u32,
    },
    /// Adversarial batch: `size` packets all at once at round `at`, and
    /// every `period` rounds after that if `period` is `Some` — the
    /// burst-arrival worst case of the dynamic analyses.
    Batch {
        /// Round of the first batch.
        at: u64,
        /// Packets per batch.
        size: u32,
        /// Repeat interval, if any (≥ 1).
        period: Option<u64>,
    },
}

/// A seeded, replayable stream of `(round, packet count)` batches drawn
/// from an [`ArrivalProcess`] over the arrival window `[0, window)`.
///
/// Batches come out in strictly increasing round order with nonzero
/// counts; the stream is exhausted when [`ArrivalStream::next_batch`]
/// returns `None`. Two streams with the same process, window, and seed
/// yield bit-identical schedules.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    process: ArrivalProcess,
    rng: SmallRng,
    window: u64,
    next_round: u64,
    /// Bursty-source phase; sources start on.
    on: bool,
}

impl ArrivalStream {
    /// A stream over `[0, window)` seeded from `master_seed` (salted, so
    /// it never collides with node or fault RNG streams).
    #[must_use]
    pub fn new(process: ArrivalProcess, window: u64, master_seed: u64) -> Self {
        ArrivalStream {
            process,
            rng: SmallRng::seed_from_u64(derive_stream_seed(master_seed, ARRIVAL_STREAM)),
            window,
            next_round: 0,
            on: true,
        }
    }

    /// Knuth's product-of-uniforms Poisson sampler; fine for the per-round
    /// rates traffic sweeps use (λ ≲ 30).
    fn poisson(rng: &mut SmallRng, rate: f64) -> u32 {
        if rate <= 0.0 {
            return 0;
        }
        let limit = (-rate).exp();
        let mut k = 0u32;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen_range(0.0..1.0);
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Packet count arriving in `round`. Must be called for consecutive
    /// rounds — [`ArrivalStream::next_batch`] does.
    fn count_at(&mut self, round: u64) -> u32 {
        match self.process {
            ArrivalProcess::Poisson { rate } => Self::poisson(&mut self.rng, rate),
            ArrivalProcess::Bursty {
                burst_rate,
                on_to_off,
                off_to_on,
            } => {
                let count = if self.on {
                    Self::poisson(&mut self.rng, burst_rate)
                } else {
                    0
                };
                let flip_p = if self.on { on_to_off } else { off_to_on };
                if self.rng.gen_bool(flip_p.clamp(0.0, 1.0)) {
                    self.on = !self.on;
                }
                count
            }
            ArrivalProcess::FixedRate { period, batch } => {
                if round.is_multiple_of(period.max(1)) {
                    batch
                } else {
                    0
                }
            }
            ArrivalProcess::Batch { at, size, period } => match period {
                _ if round < at => 0,
                Some(p) if (round - at).is_multiple_of(p.max(1)) => size,
                None if round == at => size,
                _ => 0,
            },
        }
    }

    /// The next nonzero batch, or `None` once the window is exhausted.
    pub fn next_batch(&mut self) -> Option<(u64, u32)> {
        while self.next_round < self.window {
            let round = self.next_round;
            self.next_round += 1;
            let count = self.count_at(round);
            if count > 0 {
                return Some((round, count));
            }
        }
        None
    }
}

/// One traffic workload: the arrival process plus run-shape knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// How packets arrive.
    pub process: ArrivalProcess,
    /// Arrivals occur in rounds `[0, window)`; after that the stream is
    /// dry and a horizonless run drains its backlog.
    pub window: u64,
    /// Hard round horizon: the run stops entering rounds `≥ horizon`.
    /// `None` runs until the backlog drains (bound it with
    /// [`SimConfig::round_budget`] under faults that can starve delivery).
    pub horizon: Option<u64>,
    /// If `Some(delay)`, every packet delivered in the arrival window
    /// re-arms its source: a fresh packet arrives `max(delay, 1)` rounds
    /// after the delivery — the closed-loop "saturated users" workload.
    pub rearm: Option<u64>,
}

impl TrafficSpec {
    /// A spec with the given process and arrival window, no horizon, no
    /// re-arming.
    #[must_use]
    pub fn new(process: ArrivalProcess, window: u64) -> Self {
        TrafficSpec {
            process,
            window,
            horizon: None,
            rearm: None,
        }
    }

    /// Sets a hard round horizon.
    #[must_use]
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Enables re-arming with the given delay.
    #[must_use]
    pub fn rearm(mut self, delay: u64) -> Self {
        self.rearm = Some(delay);
        self
    }
}

/// Why a traffic run stopped. Unlike one-shot runs there is no "solved"
/// terminal state; all three causes are expected outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The arrival window closed and the backlog drained (crashed slots
    /// don't block the drain; their packets count as dropped).
    Drained,
    /// The round horizon was reached.
    Horizon,
    /// [`SimConfig::round_budget`] tripped — the structured watchdog for
    /// horizonless runs under faults, never a wedge.
    BudgetExhausted,
}

/// The result of one traffic run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficReport {
    /// Packets that arrived (stream arrivals + re-arms).
    pub offered: u64,
    /// Packets delivered: lone primary-channel transmissions the feedback
    /// model let through.
    pub delivered: u64,
    /// Packets lost to crashed slots.
    pub dropped: u64,
    /// Packets still queued (live or pending) when the run stopped.
    pub backlog_final: u64,
    /// Largest end-of-round backlog observed.
    pub backlog_peak: u64,
    /// Sum of end-of-round backlogs — mean backlog is
    /// [`TrafficReport::mean_backlog`].
    pub backlog_sum: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Why the run stopped.
    pub stop: StopCause,
    /// Per-packet latency in rounds (delivery − arrival + 1), one sample
    /// per delivered packet.
    pub latency: PowHistogram,
    /// Every delivery as `(round, node)`, in round order.
    pub deliveries: Vec<(u64, NodeId)>,
}

impl TrafficReport {
    /// Delivered throughput in packets per executed round.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn throughput(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.delivered as f64 / self.rounds as f64
        }
    }

    /// Mean end-of-round backlog over the executed rounds.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean_backlog(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.backlog_sum as f64 / self.rounds as f64
        }
    }

    /// Round of the first delivery, if any (the one-shot `solved_round`).
    #[must_use]
    pub fn first_delivery(&self) -> Option<u64> {
        self.deliveries.first().map(|&(round, _)| round)
    }

    /// Latency quantile in rounds (see [`PowHistogram::quantile`]).
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> u64 {
        self.latency.quantile(q)
    }

    /// Tallies this run into a telemetry registry: `traffic_*` counters,
    /// backlog gauges (max-merged), and the packet-latency histogram.
    pub fn flush_into(&self, reg: &mut Registry) {
        reg.count("traffic_runs_total", 1);
        reg.count("traffic_offered_total", self.offered);
        reg.count("traffic_delivered_total", self.delivered);
        reg.count("traffic_dropped_total", self.dropped);
        reg.count("traffic_rounds_total", self.rounds);
        reg.gauge_max("traffic_backlog_peak", self.backlog_peak);
        reg.gauge_max("traffic_backlog_final", self.backlog_final);
        reg.merge_histogram("traffic_packet_latency_rounds", &self.latency);
    }

    /// Like [`TrafficReport::flush_into`], directly into a hub shard.
    pub fn flush_to(&self, hub: &MetricsHub, shard: usize) {
        hub.with_shard(shard, |reg| self.flush_into(reg));
    }
}

/// The engine surface the traffic driver needs. Implemented by both the
/// active-set [`Engine`] and the [`DenseEngine`] reference, so one driver
/// (same injection order, same RNG draws) runs on either — which is what
/// makes the dense-equivalence proptest pin the *scheduler*, not the
/// driver.
trait TrafficEngine<P: Protocol> {
    fn add_node_at(&mut self, protocol: P, start_round: u64) -> NodeId;
    fn step_observed<S: EventSink>(&mut self, sink: &mut S) -> Result<StepStatus, SimError>;
    fn current_round(&self) -> u64;
    fn live_len(&self) -> usize;
    fn pending_len(&self) -> usize;
    fn slot_state(&self, id: NodeId) -> SlotState;
}

impl<P: Protocol, F: FeedbackModel> TrafficEngine<P> for Engine<P, F> {
    fn add_node_at(&mut self, protocol: P, start_round: u64) -> NodeId {
        Engine::add_node_at(self, protocol, start_round)
    }
    fn step_observed<S: EventSink>(&mut self, sink: &mut S) -> Result<StepStatus, SimError> {
        Engine::step_observed(self, sink)
    }
    fn current_round(&self) -> u64 {
        Engine::current_round(self)
    }
    fn live_len(&self) -> usize {
        Engine::live_len(self)
    }
    fn pending_len(&self) -> usize {
        Engine::pending_len(self)
    }
    fn slot_state(&self, id: NodeId) -> SlotState {
        Engine::slot_state(self, id)
    }
}

impl<P: Protocol, F: FeedbackModel> TrafficEngine<P> for DenseEngine<P, F> {
    fn add_node_at(&mut self, protocol: P, start_round: u64) -> NodeId {
        DenseEngine::add_node_at(self, protocol, start_round)
    }
    fn step_observed<S: EventSink>(&mut self, sink: &mut S) -> Result<StepStatus, SimError> {
        DenseEngine::step_observed(self, sink)
    }
    fn current_round(&self) -> u64 {
        DenseEngine::current_round(self)
    }
    fn live_len(&self) -> usize {
        DenseEngine::live_len(self)
    }
    fn pending_len(&self) -> usize {
        DenseEngine::pending_len(self)
    }
    fn slot_state(&self, id: NodeId) -> SlotState {
        DenseEngine::slot_state(self, id)
    }
}

/// Captures per-round deliveries from the engine's `on_solved` events
/// (which fire once per delivery under continuous-delivery mode).
#[derive(Default)]
struct DeliveryCapture {
    delivered: Vec<(u64, NodeId)>,
}

impl EventSink for DeliveryCapture {
    fn on_solved(&mut self, round: u64, solver: NodeId) {
        self.delivered.push((round, solver));
    }
    fn wants_outcomes(&self) -> bool {
        false
    }
}

/// Forces the run shape traffic needs, whatever the caller passed:
/// continuous delivery on, and no stop at the first solve.
fn traffic_config(config: SimConfig) -> SimConfig {
    config
        .continuous_delivery(true)
        .stop_when(StopWhen::AllTerminated)
}

/// Runs a traffic workload on the active-set engine.
///
/// `make` builds the protocol for the `i`-th packet (0-based arrival
/// sequence number); its RNG is derived per node from the master seed as
/// usual. The configuration's `stop_when` is overridden (traffic never
/// stops on a solve) and `continuous_delivery` is forced on.
///
/// # Errors
///
/// [`SimError::ChannelOutOfRange`] if a protocol picks an invalid channel,
/// and [`SimError::Timeout`] if `max_rounds` elapse before the run's own
/// stop condition — a budget trip is *not* an error
/// ([`StopCause::BudgetExhausted`]).
pub fn run_traffic<P, F, MkP>(
    config: SimConfig,
    feedback: F,
    spec: &TrafficSpec,
    make: MkP,
) -> Result<TrafficReport, SimError>
where
    P: Protocol,
    F: FeedbackModel,
    MkP: FnMut(u64) -> P,
{
    let seed = config.master_seed;
    let max_rounds = config.max_rounds;
    let mut eng = Engine::with_feedback(traffic_config(config), feedback);
    drive(&mut eng, seed, max_rounds, spec, make)
}

/// [`run_traffic`] on the O(n)-scan [`DenseEngine`] reference — the
/// semantics oracle for the equivalence proptest.
///
/// # Errors
///
/// Same as [`run_traffic`].
pub fn run_traffic_dense<P, F, MkP>(
    config: SimConfig,
    feedback: F,
    spec: &TrafficSpec,
    make: MkP,
) -> Result<TrafficReport, SimError>
where
    P: Protocol,
    F: FeedbackModel,
    MkP: FnMut(u64) -> P,
{
    let seed = config.master_seed;
    let max_rounds = config.max_rounds;
    let mut eng = DenseEngine::with_feedback(traffic_config(config), feedback);
    drive(&mut eng, seed, max_rounds, spec, make)
}

/// The shared driver: inject arrivals, step, account deliveries, stop.
fn drive<P, E, MkP>(
    eng: &mut E,
    seed: u64,
    max_rounds: u64,
    spec: &TrafficSpec,
    mut make: MkP,
) -> Result<TrafficReport, SimError>
where
    P: Protocol,
    E: TrafficEngine<P>,
    MkP: FnMut(u64) -> P,
{
    let mut stream = ArrivalStream::new(spec.process, spec.window, seed);
    let mut next_batch = stream.next_batch();
    // Arrival round per NodeId: NodeIds are assigned densely in injection
    // order, so a Vec is the whole latency ledger.
    let mut arrivals: Vec<u64> = Vec::new();
    let mut latency = PowHistogram::new();
    let mut deliveries: Vec<(u64, NodeId)> = Vec::new();
    let mut offered = 0u64;
    let mut delivered = 0u64;
    let mut backlog_peak = 0u64;
    let mut backlog_sum = 0u64;
    let mut sink = DeliveryCapture::default();

    let stop = loop {
        let now = eng.current_round();
        // Inject every batch due by round `now + 1` — and, when no packet
        // is in the system, the next batch regardless of its round, so the
        // engine always has pending work while the stream is nonempty and
        // idles forward through arrival gaps instead of latching its stop
        // condition.
        while let Some((round, count)) = next_batch {
            let idle = eng.live_len() == 0 && eng.pending_len() == 0;
            if round > now + 1 && !idle {
                break;
            }
            debug_assert!(
                round >= now,
                "arrival batches are injected before their round"
            );
            for _ in 0..count {
                let id = eng.add_node_at(make(offered), round.max(now));
                debug_assert_eq!(id.0, arrivals.len());
                arrivals.push(round.max(now));
                offered += 1;
            }
            next_batch = stream.next_batch();
        }

        if let Some(h) = spec.horizon {
            if now >= h {
                break StopCause::Horizon;
            }
        }
        if next_batch.is_none() && eng.live_len() == 0 && eng.pending_len() == 0 {
            // Stream dry, nothing queued: drained. Crashed slots don't
            // block this (their packets are already lost).
            break StopCause::Drained;
        }
        if now >= max_rounds {
            return Err(SimError::Timeout { max_rounds });
        }

        match eng.step_observed(&mut sink) {
            Ok(_) => {}
            Err(SimError::BudgetExhausted { .. }) => break StopCause::BudgetExhausted,
            Err(e) => return Err(e),
        }

        // Account this round's delivery (at most one: a single primary
        // channel carries at most one lone transmission per round).
        for &(round, id) in &sink.delivered {
            delivered += 1;
            latency.record(round - arrivals[id.0] + 1);
            deliveries.push((round, id));
            if let Some(delay) = spec.rearm {
                if round < spec.window {
                    let at = round + delay.max(1);
                    let fresh = eng.add_node_at(make(offered), at);
                    debug_assert_eq!(fresh.0, arrivals.len());
                    arrivals.push(at);
                    offered += 1;
                }
            }
        }
        sink.delivered.clear();

        let backlog = eng.live_len() as u64;
        backlog_peak = backlog_peak.max(backlog);
        backlog_sum += backlog;
    };

    // Final ledger scan — the only O(total arrivals) pass in the driver.
    let mut dropped = 0u64;
    let mut backlog_final = 0u64;
    for idx in 0..arrivals.len() {
        match eng.slot_state(NodeId(idx)) {
            SlotState::Crashed => dropped += 1,
            SlotState::Live | SlotState::Pending => backlog_final += 1,
            SlotState::Terminated => {}
        }
    }

    Ok(TrafficReport {
        offered,
        delivered,
        dropped,
        backlog_final,
        backlog_peak,
        backlog_sum,
        rounds: eng.current_round(),
        stop,
        latency,
        deliveries,
    })
}

// ---------------------------------------------------------------------------
// Reference workload protocols.
//
// Traffic needs *persistent* senders: a packet contends until the engine
// retires it on delivery (the protocol itself never terminates — under
// weak CD a transmitter cannot even tell it succeeded). These two are the
// canonical pair every traffic experiment, bench, and test uses; paper
// protocols from the `contention` crate are one-shot election stacks and
// do not fit the continuous regime.
// ---------------------------------------------------------------------------

/// p-persistent slotted ALOHA: each round, transmit on the primary channel
/// with probability `p`, otherwise listen. The memoryless baseline — its
/// delivered throughput caps near `λ·e^{-λ}` and it ignores collision
/// detection entirely, which is exactly what makes it the control arm of
/// the CD-mode comparisons.
#[derive(Debug, Clone)]
pub struct SlottedAloha {
    packet: u64,
    p: f64,
}

impl SlottedAloha {
    /// A sender for `packet` transmitting with probability `p` per round.
    #[must_use]
    pub fn new(p: f64, packet: u64) -> Self {
        SlottedAloha { packet, p }
    }
}

impl Protocol for SlottedAloha {
    type Msg = u64;

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u64> {
        if rng.gen_bool(self.p) {
            Action::transmit(ChannelId::PRIMARY, self.packet)
        } else {
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, _feedback: Feedback<u64>, _rng: &mut SmallRng) {}

    fn status(&self) -> Status {
        // Never self-terminates: the engine retires the slot on delivery.
        Status::Active
    }

    fn phase(&self) -> &'static str {
        "aloha"
    }
}

/// Collision-detection-aware binary exponential backoff.
///
/// Transmits when its backoff timer hits zero, listening to the primary
/// channel otherwise, and adapts its contention window `cw` to what it
/// hears:
///
/// * own transmission heard as a collision → double `cw`, redraw timer;
/// * own transmission blind (weak CD) → assume the worst, same doubling
///   (a success would have retired the node anyway);
/// * listening and hearing **silence** → the channel is under-used, halve
///   `cw`;
/// * listening and hearing a collision → others are fighting, double `cw`.
///
/// Under [`CdMode::None`](crate::CdMode::None) collisions are heard as
/// silence, so congested listeners *shrink* their windows — the
/// throughput collapse that comparison is designed to show.
#[derive(Debug, Clone)]
pub struct BackoffMac {
    packet: u64,
    cw: u64,
    cw_min: u64,
    cw_max: u64,
    timer: u64,
    transmitted: bool,
}

impl BackoffMac {
    /// A sender for `packet` with contention window bounds
    /// `[cw_min, cw_max]` (both clamped to ≥ 1).
    #[must_use]
    pub fn new(cw_min: u64, cw_max: u64, packet: u64) -> Self {
        let cw_min = cw_min.max(1);
        let cw_max = cw_max.max(cw_min);
        BackoffMac {
            packet,
            cw: cw_min,
            cw_min,
            cw_max,
            timer: 0,
            transmitted: false,
        }
    }

    fn redraw(&mut self, rng: &mut SmallRng) {
        self.timer = rng.gen_range(0..self.cw);
    }
}

impl Protocol for BackoffMac {
    type Msg = u64;

    fn on_wake(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) {
        self.redraw(rng);
    }

    fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<u64> {
        let _ = rng;
        if self.timer == 0 {
            self.transmitted = true;
            Action::transmit(ChannelId::PRIMARY, self.packet)
        } else {
            self.timer -= 1;
            self.transmitted = false;
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _ctx: &RoundContext, feedback: Feedback<u64>, rng: &mut SmallRng) {
        if self.transmitted {
            match feedback {
                // Alone on the channel: delivered; the engine retires us.
                Feedback::Message(_) => {}
                // Collided — or blind, which we must treat the same.
                _ => {
                    self.cw = (self.cw * 2).min(self.cw_max);
                    self.redraw(rng);
                }
            }
        } else {
            match feedback {
                Feedback::Silence => {
                    self.cw = (self.cw / 2).max(self.cw_min);
                    self.timer = self.timer.min(self.cw.saturating_sub(1));
                }
                Feedback::Collision => {
                    self.cw = (self.cw * 2).min(self.cw_max);
                }
                _ => {}
            }
        }
    }

    fn status(&self) -> Status {
        Status::Active
    }

    fn phase(&self) -> &'static str {
        "backoff"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CdMode;
    use crate::fault::{CrashStop, Layered};

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::new(4).seed(seed).max_rounds(500_000)
    }

    #[test]
    fn arrival_stream_is_deterministic() {
        let drain = |mut s: ArrivalStream| {
            let mut out = Vec::new();
            while let Some(batch) = s.next_batch() {
                out.push(batch);
            }
            out
        };
        let p = ArrivalProcess::Poisson { rate: 0.7 };
        let a = drain(ArrivalStream::new(p, 200, 42));
        let b = drain(ArrivalStream::new(p, 200, 42));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "rounds increase");
        let c = drain(ArrivalStream::new(p, 200, 43));
        assert_ne!(a, c, "different seeds, different schedules");
    }

    #[test]
    fn fixed_rate_schedule_is_exact() {
        let mut s = ArrivalStream::new(
            ArrivalProcess::FixedRate {
                period: 10,
                batch: 2,
            },
            35,
            7,
        );
        let mut got = Vec::new();
        while let Some(batch) = s.next_batch() {
            got.push(batch);
        }
        assert_eq!(got, vec![(0, 2), (10, 2), (20, 2), (30, 2)]);
    }

    #[test]
    fn batch_process_repeats_when_periodic() {
        let mut s = ArrivalStream::new(
            ArrivalProcess::Batch {
                at: 5,
                size: 8,
                period: Some(20),
            },
            50,
            7,
        );
        assert_eq!(s.next_batch(), Some((5, 8)));
        assert_eq!(s.next_batch(), Some((25, 8)));
        assert_eq!(s.next_batch(), Some((45, 8)));
        assert_eq!(s.next_batch(), None);
    }

    #[test]
    fn drains_backlog_and_delivers_everything() {
        let spec = TrafficSpec::new(
            ArrivalProcess::FixedRate {
                period: 8,
                batch: 1,
            },
            64,
        );
        let report = run_traffic(cfg(1), CdMode::Strong, &spec, |pkt| {
            BackoffMac::new(2, 64, pkt)
        })
        .expect("traffic run");
        assert_eq!(report.stop, StopCause::Drained);
        assert_eq!(report.offered, 8);
        assert_eq!(report.delivered, 8, "light fixed load fully delivered");
        assert_eq!(report.dropped, 0);
        assert_eq!(report.backlog_final, 0);
        assert_eq!(report.latency.count(), 8);
        assert_eq!(report.deliveries.len(), 8);
        assert!(report.first_delivery().is_some());
    }

    #[test]
    fn horizon_stops_an_overloaded_run() {
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 2.0 }, 1_000).horizon(300);
        let report = run_traffic(cfg(2), CdMode::Strong, &spec, |pkt| {
            SlottedAloha::new(0.2, pkt)
        })
        .expect("traffic run");
        assert_eq!(report.stop, StopCause::Horizon);
        assert_eq!(report.rounds, 300);
        assert!(report.backlog_final > 0, "overload leaves a queue");
        assert!(report.throughput() <= 1.0, "one channel, ≤ 1 packet/round");
        assert_eq!(
            report.offered,
            report.delivered + report.dropped + report.backlog_final
        );
    }

    #[test]
    fn round_budget_trips_horizonless_runs_cleanly() {
        // Zero transmit probability: nothing ever delivers, the backlog
        // never drains — the budget must convert that into a structured
        // stop, not a wedge or an error.
        let spec = TrafficSpec::new(
            ArrivalProcess::FixedRate {
                period: 1,
                batch: 1,
            },
            50,
        );
        let report = run_traffic(cfg(3).round_budget(200), CdMode::Strong, &spec, |pkt| {
            SlottedAloha::new(0.0, pkt)
        })
        .expect("budget trip is not an error");
        assert_eq!(report.stop, StopCause::BudgetExhausted);
        assert_eq!(report.delivered, 0);
        assert_eq!(report.backlog_final, 50);
    }

    #[test]
    fn rearm_keeps_sources_saturated() {
        let spec = TrafficSpec::new(
            ArrivalProcess::Batch {
                at: 0,
                size: 3,
                period: None,
            },
            100,
        )
        .rearm(1)
        .horizon(100);
        let report = run_traffic(cfg(4), CdMode::Strong, &spec, |pkt| {
            BackoffMac::new(2, 32, pkt)
        })
        .expect("traffic run");
        assert!(
            report.offered > 3,
            "deliveries inside the window re-arm fresh packets (offered {})",
            report.offered
        );
        assert_eq!(report.stop, StopCause::Horizon);
    }

    #[test]
    fn crashed_packets_count_as_dropped_and_do_not_wedge_the_drain() {
        let spec = TrafficSpec::new(
            ArrivalProcess::Batch {
                at: 0,
                size: 6,
                period: None,
            },
            1,
        );
        let report = run_traffic(
            cfg(5),
            Layered::new(CrashStop::random(3, 6, 40), CdMode::Strong),
            &spec,
            |pkt| BackoffMac::new(2, 64, pkt),
        )
        .expect("traffic run");
        assert_eq!(
            report.stop,
            StopCause::Drained,
            "crashes never block the drain"
        );
        assert_eq!(report.offered, 6);
        assert_eq!(report.offered, report.delivered + report.dropped);
        assert!(report.dropped > 0, "seeded crash schedule kills someone");
    }

    #[test]
    fn arrival_gaps_idle_forward_instead_of_latching() {
        // One packet at round 0, one at round 400: the engine must idle
        // across the gap (un-latching its stop condition on injection)
        // and deliver both.
        let spec = TrafficSpec::new(
            ArrivalProcess::Batch {
                at: 0,
                size: 1,
                period: Some(400),
            },
            401,
        );
        let report = run_traffic(cfg(6), CdMode::Strong, &spec, |pkt| {
            BackoffMac::new(2, 8, pkt)
        })
        .expect("traffic run");
        assert_eq!(report.offered, 2);
        assert_eq!(report.delivered, 2);
        assert!(report.rounds > 400);
        assert_eq!(report.stop, StopCause::Drained);
    }

    #[test]
    fn empty_stream_is_an_empty_report() {
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.0 }, 100);
        let report = run_traffic(cfg(7), CdMode::Strong, &spec, |pkt| {
            SlottedAloha::new(0.5, pkt)
        })
        .expect("traffic run");
        assert_eq!(report.offered, 0);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.stop, StopCause::Drained);
    }

    #[test]
    fn dense_reference_matches_on_a_smoke_workload() {
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.4 }, 150).horizon(600);
        let active = run_traffic(cfg(8), CdMode::ReceiverOnly, &spec, |pkt| {
            BackoffMac::new(2, 64, pkt)
        })
        .expect("active run");
        let dense = run_traffic_dense(cfg(8), CdMode::ReceiverOnly, &spec, |pkt| {
            BackoffMac::new(2, 64, pkt)
        })
        .expect("dense run");
        assert_eq!(active, dense);
        assert!(active.delivered > 0);
    }

    #[test]
    fn latency_histogram_matches_delivery_ledger() {
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.3 }, 200);
        let report = run_traffic(cfg(9), CdMode::Strong, &spec, |pkt| {
            BackoffMac::new(2, 64, pkt)
        })
        .expect("traffic run");
        assert_eq!(report.latency.count(), report.delivered);
        assert!(report.latency_quantile(0.5) <= report.latency_quantile(0.99));
        assert!(
            report.latency.min() >= 1,
            "latency counts the delivery round"
        );
    }

    #[test]
    fn flush_into_registry_exports_traffic_metrics() {
        let spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.3 }, 100);
        let report = run_traffic(cfg(10), CdMode::Strong, &spec, |pkt| {
            BackoffMac::new(2, 64, pkt)
        })
        .expect("traffic run");
        let mut reg = Registry::new();
        report.flush_into(&mut reg);
        assert_eq!(reg.counter("traffic_offered_total"), report.offered);
        assert_eq!(reg.counter("traffic_delivered_total"), report.delivered);
        assert_eq!(reg.counter("traffic_rounds_total"), report.rounds);
        assert_eq!(
            reg.histograms()["traffic_packet_latency_rounds"].count(),
            report.delivered
        );
        assert_eq!(reg.gauges()["traffic_backlog_peak"], report.backlog_peak);
    }
}
