//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::channel::ChannelId;
use crate::engine::NodeId;

/// Errors produced by [`crate::Engine::run`] and [`crate::Engine::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A protocol chose a channel outside `1..=C`.
    ChannelOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Round in which the action was taken.
        round: u64,
        /// The chosen (invalid) channel.
        channel: ChannelId,
        /// The configured channel count `C`.
        channels: u32,
    },
    /// The run exceeded the configured round cap without meeting the stop
    /// condition.
    Timeout {
        /// The configured cap that was hit.
        max_rounds: u64,
    },
    /// The round-budget watchdog fired: the run executed
    /// [`crate::SimConfig::round_budget`] rounds without meeting the stop
    /// condition. Unlike [`SimError::Timeout`] (an experiment bug), this is
    /// the *expected* structured outcome for a protocol wedged by injected
    /// faults — breakdown-threshold sweeps catch it and count the trial as
    /// unsolved instead of hanging or panicking.
    BudgetExhausted {
        /// The configured budget that was exhausted.
        budget: u64,
        /// Whether the run had already solved the problem when the budget
        /// ran out (possible when waiting for `AllTerminated` after a
        /// solve).
        solved: bool,
    },
    /// The engine was started with no nodes at all.
    NoNodes,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ChannelOutOfRange {
                node,
                round,
                channel,
                channels,
            } => write!(
                f,
                "node {node} chose {channel} in round {round} but only channels 1..={channels} exist"
            ),
            SimError::Timeout { max_rounds } => {
                write!(f, "run exceeded the {max_rounds}-round cap")
            }
            SimError::BudgetExhausted { budget, solved } => write!(
                f,
                "round-budget watchdog fired after {budget} rounds ({})",
                if *solved {
                    "solved, but not all nodes terminated"
                } else {
                    "unsolved"
                }
            ),
            SimError::NoNodes => f.write_str("engine started with no nodes"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ChannelOutOfRange {
            node: NodeId(3),
            round: 12,
            channel: ChannelId::new(99),
            channels: 16,
        };
        let s = e.to_string();
        assert!(s.contains("node 3"));
        assert!(s.contains("ch99"));
        assert!(s.contains("round 12"));
        assert!(s.contains("1..=16"));
        assert!(SimError::Timeout { max_rounds: 7 }
            .to_string()
            .contains('7'));
        let watchdog = SimError::BudgetExhausted {
            budget: 500,
            solved: false,
        };
        assert!(watchdog.to_string().contains("500"));
        assert!(watchdog.to_string().contains("unsolved"));
        assert!(!SimError::NoNodes.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
