//! Simulation errors.

use std::error::Error;
use std::fmt;

use crate::channel::ChannelId;
use crate::engine::NodeId;

/// Errors produced by [`crate::Executor::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A protocol chose a channel outside `1..=C`.
    ChannelOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Round in which the action was taken.
        round: u64,
        /// The chosen (invalid) channel.
        channel: ChannelId,
        /// The configured channel count `C`.
        channels: u32,
    },
    /// The run exceeded the configured round cap without meeting the stop
    /// condition.
    Timeout {
        /// The configured cap that was hit.
        max_rounds: u64,
    },
    /// The executor was started with no nodes at all.
    NoNodes,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ChannelOutOfRange {
                node,
                round,
                channel,
                channels,
            } => write!(
                f,
                "node {node} chose {channel} in round {round} but only channels 1..={channels} exist"
            ),
            SimError::Timeout { max_rounds } => {
                write!(f, "run exceeded the {max_rounds}-round cap")
            }
            SimError::NoNodes => f.write_str("executor started with no nodes"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ChannelOutOfRange {
            node: NodeId(3),
            round: 12,
            channel: ChannelId::new(99),
            channels: 16,
        };
        let s = e.to_string();
        assert!(s.contains("node 3"));
        assert!(s.contains("ch99"));
        assert!(s.contains("round 12"));
        assert!(s.contains("1..=16"));
        assert!(SimError::Timeout { max_rounds: 7 }
            .to_string()
            .contains('7'));
        assert!(!SimError::NoNodes.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
