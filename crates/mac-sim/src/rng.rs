//! Deterministic seed-stream derivation.
//!
//! Everything in the workspace that needs many decorrelated RNG streams
//! from one master seed — per-node RNGs, fault-model streams, campaign
//! shard seeds — goes through one audited helper,
//! [`derive_stream_seed`]: the SplitMix64 generator, indexed directly by
//! stream number. Centralizing the mixing means (a) runs are exactly
//! reproducible from `(master_seed, stream)`, (b) adjacent stream indices
//! produce statistically independent seeds, and (c) there is exactly one
//! place where the constants can be wrong.

/// Derives the seed for stream `stream` from `master_seed`: the
/// `stream`-th output of the SplitMix64 generator whose state starts at
/// `master_seed + Γ` (Γ is the SplitMix64 golden-gamma increment).
///
/// This is *the* seed-expansion primitive of the workspace; the per-node
/// and fault-stream derivations, and the campaign layer's
/// [`crate::campaign::SeedStream::Derived`], are all defined in terms of
/// it. Reference vectors are pinned in this module's tests.
///
/// ```
/// use mac_sim::derive_stream_seed;
///
/// let a = derive_stream_seed(42, 0);
/// let b = derive_stream_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_stream_seed(42, 0));
/// ```
#[must_use]
pub fn derive_stream_seed(master_seed: u64, stream: u64) -> u64 {
    splitmix64(
        master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1))),
    )
}

/// Derives the seed for node `node_index` from `master_seed`.
///
/// Node RNG streams are streams `0, 1, 2, …` of [`derive_stream_seed`].
///
/// ```
/// use mac_sim::derive_node_seed;
///
/// let a = derive_node_seed(42, 0);
/// let b = derive_node_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_node_seed(42, 0));
/// ```
#[must_use]
pub fn derive_node_seed(master_seed: u64, node_index: u64) -> u64 {
    derive_stream_seed(master_seed, node_index)
}

/// Derives the seed for fault-model stream `stream` from `master_seed`.
///
/// Fault models ([`crate::fault`]) carry their own RNG streams, derived
/// here when [`crate::FeedbackModel::bind`] hands them the configuration.
/// The master seed is salted before the SplitMix64 expansion so fault
/// streams can never collide with the per-node streams of
/// [`derive_node_seed`], no matter the node count.
///
/// ```
/// use mac_sim::derive_fault_seed;
///
/// assert_ne!(derive_fault_seed(42, 0), derive_fault_seed(42, 1));
/// assert_eq!(derive_fault_seed(42, 0), derive_fault_seed(42, 0));
/// ```
#[must_use]
pub fn derive_fault_seed(master_seed: u64, stream: u64) -> u64 {
    derive_stream_seed(master_seed ^ 0xFA17_FA17_FA17_FA17, stream)
}

/// The SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeds_are_deterministic() {
        for node in 0..100 {
            assert_eq!(derive_node_seed(7, node), derive_node_seed(7, node));
        }
    }

    #[test]
    fn seeds_are_distinct_across_nodes() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| derive_node_seed(123, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn seeds_differ_across_master_seeds() {
        let a: Vec<u64> = (0..100).map(|i| derive_node_seed(1, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| derive_node_seed(2, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_seeds_are_disjoint_from_node_seeds() {
        let node_seeds: HashSet<u64> = (0..10_000).map(|i| derive_node_seed(123, i)).collect();
        for stream in 0..64 {
            assert!(
                !node_seeds.contains(&derive_fault_seed(123, stream)),
                "fault stream {stream} collides with a node stream"
            );
        }
    }

    /// Reference vectors for [`derive_stream_seed`], computed with an
    /// independent big-integer implementation of the published SplitMix64
    /// finalizer. The `(0, u64::MAX)` entry wraps the state back to 0 and
    /// therefore reproduces `0xE220_A839_7B1D_CDAF` — the first output of
    /// the canonical SplitMix64 sequence for seed 0 from the reference
    /// implementation — anchoring the constants to the literature.
    #[test]
    fn stream_seed_reference_vectors() {
        const VECTORS: [(u64, u64, u64); 20] = [
            (0x0, 0x0, 0x6e78_9e6a_a1b9_65f4),
            (0x0, 0x1, 0x06c4_5d18_8009_454f),
            (0x0, 0x2, 0xf88b_b8a8_724c_81ec),
            (0x0, 0x7, 0x3ee5_7890_41c9_8ac3),
            (0x0, 0xffff_ffff_ffff_ffff, 0xe220_a839_7b1d_cdaf),
            (0x2a, 0x0, 0x28ef_e333_b266_f103),
            (0x2a, 0x1, 0x4752_6757_130f_9f52),
            (0x2a, 0x2, 0x581c_e1ff_0e4a_e394),
            (0x2a, 0x7, 0x5705_b877_0b3d_7dd5),
            (0x2a, 0xffff_ffff_ffff_ffff, 0xbdd7_3226_2feb_6e95),
            (0xdead_beef, 0x0, 0xde58_6a31_41a1_0922),
            (0xdead_beef, 0x1, 0x021f_bc2f_8e1c_fc1d),
            (0xdead_beef, 0x2, 0x7466_ce73_7be1_6790),
            (0xdead_beef, 0x7, 0x0a90_4150_39bd_5985),
            (0xdead_beef, 0xffff_ffff_ffff_ffff, 0x4adf_b90f_68c9_eb9b),
            (0xffff_ffff_ffff_ffff, 0x0, 0xe99f_f867_dbf6_82c9),
            (0xffff_ffff_ffff_ffff, 0x1, 0x382f_f84c_b272_81e9),
            (0xffff_ffff_ffff_ffff, 0x2, 0x6d1d_b36c_cba9_82d2),
            (0xffff_ffff_ffff_ffff, 0x7, 0xc4fe_a708_156e_0c84),
            (
                0xffff_ffff_ffff_ffff,
                0xffff_ffff_ffff_ffff,
                0xe4d9_7177_1b65_2c20,
            ),
        ];
        for (master, stream, expected) in VECTORS {
            assert_eq!(
                derive_stream_seed(master, stream),
                expected,
                "derive_stream_seed({master:#x}, {stream:#x})"
            );
        }
    }

    #[test]
    fn node_and_fault_seeds_are_defined_in_terms_of_streams() {
        for i in 0..64 {
            assert_eq!(derive_node_seed(99, i), derive_stream_seed(99, i));
            assert_eq!(
                derive_fault_seed(99, i),
                derive_stream_seed(99 ^ 0xFA17_FA17_FA17_FA17, i)
            );
        }
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = splitmix64(0xDEAD_BEEF);
        let y = splitmix64(0xDEAD_BEEF ^ 1);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "weak diffusion: {flipped}");
    }
}
