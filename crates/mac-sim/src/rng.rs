//! Deterministic per-node seed derivation.
//!
//! Every node gets its own [`rand::rngs::SmallRng`] seeded from the master
//! seed and the node index through a SplitMix64 finalizer, so (a) runs are
//! exactly reproducible from `(master_seed, node count)` and (b) adjacent
//! node indices produce statistically independent streams.

/// Derives the seed for node `node_index` from `master_seed`.
///
/// Uses the SplitMix64 output function, the standard way to expand one seed
/// into many well-distributed ones.
///
/// ```
/// use mac_sim::derive_node_seed;
///
/// let a = derive_node_seed(42, 0);
/// let b = derive_node_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_node_seed(42, 0));
/// ```
#[must_use]
pub fn derive_node_seed(master_seed: u64, node_index: u64) -> u64 {
    splitmix64(master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node_index + 1)))
}

/// Derives the seed for fault-model stream `stream` from `master_seed`.
///
/// Fault models ([`crate::fault`]) carry their own RNG streams, derived
/// here when [`crate::FeedbackModel::bind`] hands them the configuration.
/// The master seed is salted before the SplitMix64 expansion so fault
/// streams can never collide with the per-node streams of
/// [`derive_node_seed`], no matter the node count.
///
/// ```
/// use mac_sim::derive_fault_seed;
///
/// assert_ne!(derive_fault_seed(42, 0), derive_fault_seed(42, 1));
/// assert_eq!(derive_fault_seed(42, 0), derive_fault_seed(42, 0));
/// ```
#[must_use]
pub fn derive_fault_seed(master_seed: u64, stream: u64) -> u64 {
    derive_node_seed(master_seed ^ 0xFA17_FA17_FA17_FA17, stream)
}

/// The SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeds_are_deterministic() {
        for node in 0..100 {
            assert_eq!(derive_node_seed(7, node), derive_node_seed(7, node));
        }
    }

    #[test]
    fn seeds_are_distinct_across_nodes() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| derive_node_seed(123, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn seeds_differ_across_master_seeds() {
        let a: Vec<u64> = (0..100).map(|i| derive_node_seed(1, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| derive_node_seed(2, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_seeds_are_disjoint_from_node_seeds() {
        let node_seeds: HashSet<u64> = (0..10_000).map(|i| derive_node_seed(123, i)).collect();
        for stream in 0..64 {
            assert!(
                !node_seeds.contains(&derive_fault_seed(123, stream)),
                "fault stream {stream} collides with a node stream"
            );
        }
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = splitmix64(0xDEAD_BEEF);
        let y = splitmix64(0xDEAD_BEEF ^ 1);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "weak diffusion: {flipped}");
    }
}
