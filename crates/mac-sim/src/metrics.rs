//! Run metrics: round counts, transmissions (energy), per-phase breakdowns.

use std::collections::BTreeMap;
use std::fmt;

/// Rounds spent in each protocol phase, keyed by the phase label of the
/// lowest-indexed node that was still active when the round started.
///
/// Because the paper's algorithms are globally synchronized (every active
/// node is in the same step of the same phase in the same round), this
/// single-representative accounting is exact for them.
///
/// It is **not** exact under staggered wake-ups (the §3 transform) or
/// heterogeneous populations: a low-indexed late waker in its listen
/// window relabels rounds the actual runners spent mid-protocol. When
/// nodes can be in different phases at once, use
/// [`crate::obs::RunRecorder`], whose phase spans and
/// [`crate::obs::RunRecord::phase_node_rounds`] attribute every action to
/// the acting node's own phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    rounds: BTreeMap<&'static str, u64>,
}

impl PhaseBreakdown {
    /// Creates an empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        PhaseBreakdown::default()
    }

    /// Records one round spent in `phase`.
    pub fn record(&mut self, phase: &'static str) {
        *self.rounds.entry(phase).or_insert(0) += 1;
    }

    /// Rounds recorded for `phase` (0 if never seen).
    #[must_use]
    pub fn rounds_in(&self, phase: &str) -> u64 {
        self.rounds.get(phase).copied().unwrap_or(0)
    }

    /// Iterates `(phase, rounds)` pairs in phase-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.rounds.iter().map(|(k, v)| (*k, *v))
    }

    /// Total rounds across all phases.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.rounds.values().sum()
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (phase, rounds) in &self.rounds {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{phase}={rounds}")?;
            first = false;
        }
        if first {
            f.write_str("(no rounds)")?;
        }
        Ok(())
    }
}

/// Aggregate metrics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total transmissions across all nodes and rounds (the TX energy proxy).
    pub transmissions: u64,
    /// Total listen actions across all nodes and rounds (the RX energy
    /// proxy — receivers burn power too).
    pub listens: u64,
    /// Per-node transmission counts, indexed by node id.
    pub transmissions_per_node: Vec<u64>,
    /// Transmissions attributed to the phase the execution was in.
    pub transmissions_by_phase: BTreeMap<&'static str, u64>,
    /// Rounds spent per phase.
    pub phases: PhaseBreakdown,
}

impl Metrics {
    /// Creates metrics for `nodes` nodes, all zeroed.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Metrics {
            transmissions: 0,
            listens: 0,
            transmissions_per_node: vec![0; nodes],
            transmissions_by_phase: BTreeMap::new(),
            phases: PhaseBreakdown::new(),
        }
    }

    /// Records one transmission by node `node` during `phase`.
    pub fn record_transmission(&mut self, node: usize, phase: &'static str) {
        self.transmissions += 1;
        if let Some(slot) = self.transmissions_per_node.get_mut(node) {
            *slot += 1;
        }
        *self.transmissions_by_phase.entry(phase).or_insert(0) += 1;
    }

    /// Records one listen action.
    pub fn record_listen(&mut self) {
        self.listens += 1;
    }

    /// The maximum number of transmissions made by any single node.
    #[must_use]
    pub fn max_transmissions_per_node(&self) -> u64 {
        self.transmissions_per_node
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_breakdown_counts() {
        let mut pb = PhaseBreakdown::new();
        pb.record("reduce");
        pb.record("reduce");
        pb.record("rename");
        assert_eq!(pb.rounds_in("reduce"), 2);
        assert_eq!(pb.rounds_in("rename"), 1);
        assert_eq!(pb.rounds_in("absent"), 0);
        assert_eq!(pb.total(), 3);
        let pairs: Vec<_> = pb.iter().collect();
        assert_eq!(pairs, vec![("reduce", 2), ("rename", 1)]);
        assert_eq!(pb.to_string(), "reduce=2, rename=1");
    }

    #[test]
    fn empty_breakdown_display_nonempty() {
        assert_eq!(PhaseBreakdown::new().to_string(), "(no rounds)");
    }

    #[test]
    fn metrics_transmissions() {
        let mut m = Metrics::new(3);
        m.record_transmission(0, "a");
        m.record_transmission(0, "a");
        m.record_transmission(2, "b");
        m.record_listen();
        assert_eq!(m.transmissions, 3);
        assert_eq!(m.listens, 1);
        assert_eq!(m.transmissions_per_node, vec![2, 0, 1]);
        assert_eq!(m.max_transmissions_per_node(), 2);
        assert_eq!(m.transmissions_by_phase.get("a"), Some(&2));
        assert_eq!(m.transmissions_by_phase.get("b"), Some(&1));
    }

    #[test]
    fn metrics_out_of_range_node_is_ignored_in_vector() {
        let mut m = Metrics::new(1);
        m.record_transmission(5, "a");
        assert_eq!(m.transmissions, 1);
        assert_eq!(m.transmissions_per_node, vec![0]);
    }
}
