//! Activation adversaries: who wakes, and when.
//!
//! The contention-resolution model lets an adversary pick the activated
//! subset `A ⊆ V` and (in the non-simultaneous variant of §3) per-node
//! wake-up rounds. This module provides named generators for both choices,
//! so experiments can state their workload as data
//! (`WakeSchedule::offset_one(40)`) instead of ad-hoc loops.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A wake-up schedule: one start round per node.
///
/// ```
/// use mac_sim::adversary::WakeSchedule;
///
/// let s = WakeSchedule::offset_one(4);
/// assert_eq!(s.offsets(), &[0, 1, 0, 1]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.span(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeSchedule {
    offsets: Vec<u64>,
}

impl WakeSchedule {
    /// All `k` nodes wake in round 0 (the paper's base model).
    #[must_use]
    pub fn simultaneous(k: usize) -> Self {
        WakeSchedule {
            offsets: vec![0; k],
        }
    }

    /// Alternating offsets 0/1 — the adversary that defeats a 2-round
    /// listen window (see `contention::wakeup`).
    #[must_use]
    pub fn offset_one(k: usize) -> Self {
        WakeSchedule {
            offsets: (0..k as u64).map(|i| i % 2).collect(),
        }
    }

    /// `waves` equal bursts, `gap` rounds apart.
    ///
    /// # Panics
    ///
    /// Panics if `waves == 0`.
    #[must_use]
    pub fn waves(k: usize, waves: usize, gap: u64) -> Self {
        assert!(waves >= 1, "at least one wave required");
        WakeSchedule {
            offsets: (0..k).map(|i| (i % waves) as u64 * gap).collect(),
        }
    }

    /// A slow ramp: node `i` wakes at round `i·stride mod period`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn ramp(k: usize, stride: u64, period: u64) -> Self {
        assert!(period >= 1, "period must be positive");
        WakeSchedule {
            offsets: (0..k as u64).map(|i| (i * stride) % period).collect(),
        }
    }

    /// Independent uniform offsets in `0..window`, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn uniform(k: usize, window: u64, seed: u64) -> Self {
        assert!(window >= 1, "window must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        WakeSchedule {
            offsets: (0..k).map(|_| rng.gen_range(0..window)).collect(),
        }
    }

    /// The per-node offsets, in node-insertion order.
    #[must_use]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Number of nodes in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Returns `true` if the schedule covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The latest offset minus the earliest (0 for simultaneous wake-up).
    #[must_use]
    pub fn span(&self) -> u64 {
        let max = self.offsets.iter().max().copied().unwrap_or(0);
        let min = self.offsets.iter().min().copied().unwrap_or(0);
        max - min
    }

    /// Iterates the offsets.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.offsets.iter().copied()
    }
}

/// Which subset of the `n` possible identities is activated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivationPattern {
    /// Identities `0..k`: dense prefix — packs tree leaves tightly and is
    /// the worst case for cohort-style algorithms (maximal pairing depth).
    DensePrefix {
        /// Number of activated nodes.
        k: usize,
    },
    /// `k` identities sampled uniformly without replacement.
    UniformSubset {
        /// Number of activated nodes.
        k: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// Every `stride`-th identity: a comb. With `stride ≥ 2` no two
    /// activated leaves are tree siblings, which maximizes early cohort
    /// retirement in `LeafElection`.
    Comb {
        /// Number of activated nodes.
        k: usize,
        /// Gap between consecutive activated identities.
        stride: u64,
    },
}

impl ActivationPattern {
    /// Materializes the activated identities for a universe of size `n`,
    /// sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the pattern does not fit in `0..n` (e.g. `k > n`, or the
    /// comb runs past the universe).
    #[must_use]
    pub fn materialize(&self, n: u64) -> Vec<u64> {
        match *self {
            ActivationPattern::DensePrefix { k } => {
                assert!(k as u64 <= n, "prefix of {k} exceeds universe {n}");
                (0..k as u64).collect()
            }
            ActivationPattern::UniformSubset { k, seed } => {
                assert!(k as u64 <= n, "subset of {k} exceeds universe {n}");
                let mut rng = SmallRng::seed_from_u64(seed);
                // Floyd's algorithm for a sorted distinct sample.
                let mut chosen = std::collections::BTreeSet::new();
                for j in n - k as u64..n {
                    let t = rng.gen_range(0..=j);
                    if !chosen.insert(t) {
                        chosen.insert(j);
                    }
                }
                chosen.into_iter().collect()
            }
            ActivationPattern::Comb { k, stride } => {
                assert!(stride >= 1, "stride must be positive");
                let last = (k as u64 - 1).saturating_mul(stride);
                assert!(last < n, "comb of {k}×{stride} exceeds universe {n}");
                (0..k as u64).map(|i| i * stride).collect()
            }
        }
    }

    /// Number of activated nodes.
    #[must_use]
    pub fn count(&self) -> usize {
        match *self {
            ActivationPattern::DensePrefix { k }
            | ActivationPattern::UniformSubset { k, .. }
            | ActivationPattern::Comb { k, .. } => k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_is_all_zero() {
        let s = WakeSchedule::simultaneous(5);
        assert_eq!(s.offsets(), &[0; 5]);
        assert_eq!(s.span(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn offset_one_alternates() {
        let s = WakeSchedule::offset_one(5);
        assert_eq!(s.offsets(), &[0, 1, 0, 1, 0]);
        assert_eq!(s.span(), 1);
    }

    #[test]
    fn waves_spread_evenly() {
        let s = WakeSchedule::waves(6, 3, 4);
        assert_eq!(s.offsets(), &[0, 4, 8, 0, 4, 8]);
        assert_eq!(s.span(), 8);
    }

    #[test]
    fn ramp_wraps_at_period() {
        let s = WakeSchedule::ramp(5, 3, 7);
        assert_eq!(s.offsets(), &[0, 3, 6, 2, 5]);
    }

    #[test]
    fn uniform_is_seeded_and_bounded() {
        let a = WakeSchedule::uniform(100, 10, 1);
        let b = WakeSchedule::uniform(100, 10, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|o| o < 10));
        let c = WakeSchedule::uniform(100, 10, 2);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one wave")]
    fn zero_waves_panics() {
        let _ = WakeSchedule::waves(4, 0, 1);
    }

    #[test]
    fn dense_prefix_materializes() {
        let ids = ActivationPattern::DensePrefix { k: 4 }.materialize(10);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uniform_subset_is_distinct_sorted_and_seeded() {
        let p = ActivationPattern::UniformSubset { k: 50, seed: 9 };
        let ids = p.materialize(100);
        assert_eq!(ids.len(), 50);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|&x| x < 100));
        assert_eq!(ids, p.materialize(100));
        assert_eq!(p.count(), 50);
    }

    #[test]
    fn full_subset_is_whole_universe() {
        let ids = ActivationPattern::UniformSubset { k: 16, seed: 0 }.materialize(16);
        assert_eq!(ids, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn comb_spaces_identities() {
        let ids = ActivationPattern::Comb { k: 4, stride: 3 }.materialize(10);
        assert_eq!(ids, vec![0, 3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "exceeds universe")]
    fn comb_overflow_panics() {
        let _ = ActivationPattern::Comb { k: 4, stride: 4 }.materialize(10);
    }

    #[test]
    #[should_panic(expected = "exceeds universe")]
    fn oversized_prefix_panics() {
        let _ = ActivationPattern::DensePrefix { k: 11 }.materialize(10);
    }
}

/// Crash-stop fault injection: runs `inner` normally until a scheduled
/// round, then the node falls permanently silent (classic crash-stop).
///
/// The contention-resolution model has no crash faults — this wrapper
/// exists so tests can *measure* how far the paper's algorithms tolerate
/// them anyway (knocked-out nodes are irrelevant; coordinators mid-cohort
/// are not; see the `contention` crate's fault-injection tests).
#[derive(Debug, Clone)]
pub struct CrashAt<P> {
    inner: P,
    crash_after: u64,
    lived: u64,
}

impl<P> CrashAt<P> {
    /// Wraps `inner`; the node crashes after participating in
    /// `crash_after` rounds (0 = dead on arrival).
    #[must_use]
    pub fn new(inner: P, crash_after: u64) -> Self {
        CrashAt {
            inner,
            crash_after,
            lived: 0,
        }
    }

    /// Whether the crash point has been reached.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.lived >= self.crash_after
    }

    /// The wrapped protocol (its state is frozen at the crash point).
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: crate::Protocol> crate::Protocol for CrashAt<P> {
    type Msg = P::Msg;

    fn on_wake(&mut self, ctx: &crate::RoundContext, rng: &mut rand::rngs::SmallRng) {
        self.inner.on_wake(ctx, rng);
    }

    fn act(
        &mut self,
        ctx: &crate::RoundContext,
        rng: &mut rand::rngs::SmallRng,
    ) -> crate::Action<P::Msg> {
        debug_assert!(!self.crashed(), "crashed node scheduled");
        self.lived += 1;
        self.inner.act(ctx, rng)
    }

    fn observe(
        &mut self,
        ctx: &crate::RoundContext,
        feedback: crate::Feedback<P::Msg>,
        rng: &mut rand::rngs::SmallRng,
    ) {
        self.inner.observe(ctx, feedback, rng);
    }

    fn status(&self) -> crate::Status {
        if self.crashed() {
            crate::Status::Inactive
        } else {
            self.inner.status()
        }
    }

    fn phase(&self) -> &'static str {
        if self.crashed() {
            "crashed"
        } else {
            self.inner.phase()
        }
    }
}

/// A jamming adversary as a [`FeedbackModel`](crate::FeedbackModel): one channel is flooded with
/// noise for a range of rounds, on top of a base collision-detection mode.
///
/// While jamming is active, every participant on the jammed channel hears
/// what a collision would sound like under the base [`CdMode`](crate::CdMode) — the
/// adversary's noise collides with whatever (if anything) was transmitted:
///
/// * [`CdMode::Strong`](crate::CdMode::Strong) — everyone hears [`Feedback::Collision`](crate::Feedback::Collision);
/// * [`CdMode::ReceiverOnly`](crate::CdMode::ReceiverOnly) — listeners hear a collision, transmitters
///   stay blind;
/// * [`CdMode::None`](crate::CdMode::None) — listeners hear silence (they cannot distinguish the
///   jam from background), transmitters stay blind.
///
/// A lone transmission on a jammed primary channel does not count as a
/// solve ([`FeedbackModel::allows_solve`](crate::FeedbackModel::allows_solve) returns `false` for those rounds):
/// physically, the jam collided with it.
#[derive(Debug, Clone)]
pub struct JammedChannel {
    base: crate::CdMode,
    target: crate::ChannelId,
    from_round: u64,
    until_round: u64,
    jamming_now: bool,
}

impl JammedChannel {
    /// Jams `target` for rounds `from_round..until_round` (0-based,
    /// half-open) on top of the `base` collision-detection mode.
    #[must_use]
    pub fn new(
        base: crate::CdMode,
        target: crate::ChannelId,
        from_round: u64,
        until_round: u64,
    ) -> Self {
        JammedChannel {
            base,
            target,
            from_round,
            until_round,
            jamming_now: false,
        }
    }

    /// The jammed channel.
    #[must_use]
    pub fn target(&self) -> crate::ChannelId {
        self.target
    }

    /// Whether the current round (announced via
    /// [`FeedbackModel::begin_round`](crate::FeedbackModel::begin_round)) is being jammed.
    #[must_use]
    pub fn jamming(&self) -> bool {
        self.jamming_now
    }
}

impl crate::FeedbackModel for JammedChannel {
    fn begin_round(&mut self, round: u64) {
        self.jamming_now = (self.from_round..self.until_round).contains(&round);
    }

    fn deliver<M: Clone>(
        &mut self,
        action: &crate::Action<M>,
        state: &crate::ChannelState<'_, M>,
    ) -> crate::Feedback<M> {
        use crate::{Action, CdMode, Feedback};
        let (channel, transmitted) = match action {
            Action::Transmit { channel, .. } => (*channel, true),
            Action::Listen { channel } => (*channel, false),
            Action::Sleep => return Feedback::Slept,
        };
        if self.jamming_now && channel == self.target {
            return match self.base {
                CdMode::Strong => Feedback::Collision,
                CdMode::ReceiverOnly if transmitted => Feedback::TransmittedBlind,
                CdMode::ReceiverOnly => Feedback::Collision,
                CdMode::None if transmitted => Feedback::TransmittedBlind,
                CdMode::None => Feedback::Silence,
            };
        }
        self.base.deliver(action, state)
    }

    fn allows_solve(&mut self, _solver: crate::NodeId) -> bool {
        // A jam on the primary channel collides with any lone transmission
        // there. Jams elsewhere don't affect solve detection.
        !(self.jamming_now && self.target == crate::ChannelId::PRIMARY)
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::{
        Action, ChannelId, Engine, Feedback, Protocol, RoundContext, SimConfig, Status, StopWhen,
    };
    use rand::rngs::SmallRng;

    struct Chatter;
    impl Protocol for Chatter {
        type Msg = u32;
        fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u32> {
            Action::transmit(ChannelId::new(2), 0)
        }
        fn observe(&mut self, _: &RoundContext, _: Feedback<u32>, _: &mut SmallRng) {}
        fn status(&self) -> Status {
            Status::Active
        }
    }

    #[test]
    fn crash_silences_the_node() {
        let cfg = SimConfig::new(2)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100);
        let mut engine = Engine::new(cfg);
        let id = engine.add_node(CrashAt::new(Chatter, 3));
        let report = engine.run().expect("terminates once crashed");
        assert_eq!(report.rounds_executed, 3);
        assert_eq!(report.metrics.transmissions, 3);
        assert!(engine.node(id).crashed());
    }

    #[test]
    fn dead_on_arrival_never_acts() {
        let cfg = SimConfig::new(2)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100);
        let mut engine = Engine::new(cfg);
        engine.add_node(CrashAt::new(Chatter, 0));
        let report = engine.run().expect("terminates");
        assert_eq!(report.metrics.transmissions, 0);
    }

    #[test]
    fn uncrashed_wrapper_is_transparent() {
        let cfg = SimConfig::new(2).max_rounds(5);
        let mut engine = Engine::new(cfg);
        engine.add_node(CrashAt::new(Chatter, 1_000));
        // Chatter never terminates and never hits channel 1: timeout.
        assert!(engine.run().is_err());
    }
}

#[cfg(test)]
mod jam_tests {
    use super::*;
    use crate::{
        Action, CdMode, ChannelId, Engine, Feedback, Protocol, RoundContext, SimConfig, Status,
    };
    use rand::rngs::SmallRng;

    /// Transmits or listens on the primary channel, recording feedback.
    struct Node {
        transmits: bool,
        heard: Vec<Feedback<u8>>,
    }
    impl Node {
        fn beacon() -> Self {
            Node {
                transmits: true,
                heard: Vec::new(),
            }
        }
        fn ear() -> Self {
            Node {
                transmits: false,
                heard: Vec::new(),
            }
        }
    }
    impl Protocol for Node {
        type Msg = u8;
        fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u8> {
            if self.transmits {
                Action::transmit(ChannelId::PRIMARY, 1)
            } else {
                Action::listen(ChannelId::PRIMARY)
            }
        }
        fn observe(&mut self, _: &RoundContext, fb: Feedback<u8>, _: &mut SmallRng) {
            self.heard.push(fb);
        }
        fn status(&self) -> Status {
            Status::Active
        }
    }

    #[test]
    fn jam_delays_the_solve() {
        // A lone beacon would solve in round 0; a primary-channel jam over
        // rounds 0..3 pushes the solve to round 3.
        let jam = JammedChannel::new(CdMode::Strong, ChannelId::PRIMARY, 0, 3);
        let mut engine = Engine::with_feedback(SimConfig::new(2).max_rounds(10), jam);
        engine.add_node(Node::beacon());
        let report = engine.run().expect("solves after the jam lifts");
        assert_eq!(report.solved_round, Some(3));
    }

    #[test]
    fn jam_sounds_like_a_collision_per_base_mode() {
        for (mode, expect) in [
            (CdMode::Strong, Feedback::Collision),
            (CdMode::ReceiverOnly, Feedback::Collision),
            (CdMode::None, Feedback::Silence),
        ] {
            let jam = JammedChannel::new(mode, ChannelId::PRIMARY, 0, 1);
            let mut engine = Engine::with_feedback(SimConfig::new(2).max_rounds(2), jam);
            engine.add_node(Node::beacon());
            let ear = engine.add_node(Node::ear());
            let report = engine.run().expect("solves in round 1");
            assert_eq!(report.solved_round, Some(1), "mode {mode:?}");
            assert_eq!(engine.node(ear).heard[0], expect, "mode {mode:?}");
            // Round 1 is un-jammed: the lone message comes through.
            assert_eq!(engine.node(ear).heard[1], Feedback::Message(1));
        }
    }

    #[test]
    fn jam_on_secondary_channel_leaves_solve_alone() {
        let jam = JammedChannel::new(CdMode::Strong, ChannelId::new(2), 0, 100);
        let mut engine = Engine::with_feedback(SimConfig::new(2).max_rounds(10), jam);
        engine.add_node(Node::beacon());
        let report = engine.run().expect("primary channel unaffected");
        assert_eq!(report.solved_round, Some(0));
        assert!(engine.feedback().jamming());
        assert_eq!(engine.feedback().target(), ChannelId::new(2));
    }
}
