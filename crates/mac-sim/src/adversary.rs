//! Activation adversaries: who wakes, and when.
//!
//! The contention-resolution model lets an adversary pick the activated
//! subset `A ⊆ V` and (in the non-simultaneous variant of §3) per-node
//! wake-up rounds. This module provides named generators for both choices,
//! so experiments can state their workload as data
//! (`WakeSchedule::offset_one(40)`) instead of ad-hoc loops.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A wake-up schedule: one start round per node.
///
/// ```
/// use mac_sim::adversary::WakeSchedule;
///
/// let s = WakeSchedule::offset_one(4);
/// assert_eq!(s.offsets(), &[0, 1, 0, 1]);
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.span(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeSchedule {
    offsets: Vec<u64>,
}

impl WakeSchedule {
    /// All `k` nodes wake in round 0 (the paper's base model).
    #[must_use]
    pub fn simultaneous(k: usize) -> Self {
        WakeSchedule {
            offsets: vec![0; k],
        }
    }

    /// Alternating offsets 0/1 — the adversary that defeats a 2-round
    /// listen window (see `contention::wakeup`).
    #[must_use]
    pub fn offset_one(k: usize) -> Self {
        WakeSchedule {
            offsets: (0..k as u64).map(|i| i % 2).collect(),
        }
    }

    /// `waves` equal bursts, `gap` rounds apart.
    ///
    /// # Panics
    ///
    /// Panics if `waves == 0`.
    #[must_use]
    pub fn waves(k: usize, waves: usize, gap: u64) -> Self {
        assert!(waves >= 1, "at least one wave required");
        WakeSchedule {
            offsets: (0..k).map(|i| (i % waves) as u64 * gap).collect(),
        }
    }

    /// A slow ramp: node `i` wakes at round `i·stride mod period`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn ramp(k: usize, stride: u64, period: u64) -> Self {
        assert!(period >= 1, "period must be positive");
        WakeSchedule {
            offsets: (0..k as u64).map(|i| (i * stride) % period).collect(),
        }
    }

    /// Independent uniform offsets in `0..window`, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn uniform(k: usize, window: u64, seed: u64) -> Self {
        assert!(window >= 1, "window must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        WakeSchedule {
            offsets: (0..k).map(|_| rng.gen_range(0..window)).collect(),
        }
    }

    /// The per-node offsets, in node-insertion order.
    #[must_use]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Number of nodes in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Returns `true` if the schedule covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The latest offset minus the earliest (0 for simultaneous wake-up).
    #[must_use]
    pub fn span(&self) -> u64 {
        let max = self.offsets.iter().max().copied().unwrap_or(0);
        let min = self.offsets.iter().min().copied().unwrap_or(0);
        max - min
    }

    /// Iterates the offsets.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.offsets.iter().copied()
    }
}

/// Which subset of the `n` possible identities is activated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivationPattern {
    /// Identities `0..k`: dense prefix — packs tree leaves tightly and is
    /// the worst case for cohort-style algorithms (maximal pairing depth).
    DensePrefix {
        /// Number of activated nodes.
        k: usize,
    },
    /// `k` identities sampled uniformly without replacement.
    UniformSubset {
        /// Number of activated nodes.
        k: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// Every `stride`-th identity: a comb. With `stride ≥ 2` no two
    /// activated leaves are tree siblings, which maximizes early cohort
    /// retirement in `LeafElection`.
    Comb {
        /// Number of activated nodes.
        k: usize,
        /// Gap between consecutive activated identities.
        stride: u64,
    },
}

impl ActivationPattern {
    /// Materializes the activated identities for a universe of size `n`,
    /// sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the pattern does not fit in `0..n` (e.g. `k > n`, or the
    /// comb runs past the universe).
    #[must_use]
    pub fn materialize(&self, n: u64) -> Vec<u64> {
        match *self {
            ActivationPattern::DensePrefix { k } => {
                assert!(k as u64 <= n, "prefix of {k} exceeds universe {n}");
                (0..k as u64).collect()
            }
            ActivationPattern::UniformSubset { k, seed } => {
                assert!(k as u64 <= n, "subset of {k} exceeds universe {n}");
                let mut rng = SmallRng::seed_from_u64(seed);
                // Floyd's algorithm for a sorted distinct sample.
                let mut chosen = std::collections::BTreeSet::new();
                for j in n - k as u64..n {
                    let t = rng.gen_range(0..=j);
                    if !chosen.insert(t) {
                        chosen.insert(j);
                    }
                }
                chosen.into_iter().collect()
            }
            ActivationPattern::Comb { k, stride } => {
                assert!(stride >= 1, "stride must be positive");
                let last = (k as u64 - 1).saturating_mul(stride);
                assert!(last < n, "comb of {k}×{stride} exceeds universe {n}");
                (0..k as u64).map(|i| i * stride).collect()
            }
        }
    }

    /// Number of activated nodes.
    #[must_use]
    pub fn count(&self) -> usize {
        match *self {
            ActivationPattern::DensePrefix { k }
            | ActivationPattern::UniformSubset { k, .. }
            | ActivationPattern::Comb { k, .. } => k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simultaneous_is_all_zero() {
        let s = WakeSchedule::simultaneous(5);
        assert_eq!(s.offsets(), &[0; 5]);
        assert_eq!(s.span(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn offset_one_alternates() {
        let s = WakeSchedule::offset_one(5);
        assert_eq!(s.offsets(), &[0, 1, 0, 1, 0]);
        assert_eq!(s.span(), 1);
    }

    #[test]
    fn waves_spread_evenly() {
        let s = WakeSchedule::waves(6, 3, 4);
        assert_eq!(s.offsets(), &[0, 4, 8, 0, 4, 8]);
        assert_eq!(s.span(), 8);
    }

    #[test]
    fn ramp_wraps_at_period() {
        let s = WakeSchedule::ramp(5, 3, 7);
        assert_eq!(s.offsets(), &[0, 3, 6, 2, 5]);
    }

    #[test]
    fn uniform_is_seeded_and_bounded() {
        let a = WakeSchedule::uniform(100, 10, 1);
        let b = WakeSchedule::uniform(100, 10, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|o| o < 10));
        let c = WakeSchedule::uniform(100, 10, 2);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least one wave")]
    fn zero_waves_panics() {
        let _ = WakeSchedule::waves(4, 0, 1);
    }

    #[test]
    fn dense_prefix_materializes() {
        let ids = ActivationPattern::DensePrefix { k: 4 }.materialize(10);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn uniform_subset_is_distinct_sorted_and_seeded() {
        let p = ActivationPattern::UniformSubset { k: 50, seed: 9 };
        let ids = p.materialize(100);
        assert_eq!(ids.len(), 50);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|&x| x < 100));
        assert_eq!(ids, p.materialize(100));
        assert_eq!(p.count(), 50);
    }

    #[test]
    fn full_subset_is_whole_universe() {
        let ids = ActivationPattern::UniformSubset { k: 16, seed: 0 }.materialize(16);
        assert_eq!(ids, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn comb_spaces_identities() {
        let ids = ActivationPattern::Comb { k: 4, stride: 3 }.materialize(10);
        assert_eq!(ids, vec![0, 3, 6, 9]);
    }

    #[test]
    #[should_panic(expected = "exceeds universe")]
    fn comb_overflow_panics() {
        let _ = ActivationPattern::Comb { k: 4, stride: 4 }.materialize(10);
    }

    #[test]
    #[should_panic(expected = "exceeds universe")]
    fn oversized_prefix_panics() {
        let _ = ActivationPattern::DensePrefix { k: 11 }.materialize(10);
    }
}

/// Crash-stop fault injection: runs `inner` normally until a scheduled
/// round, then the node falls permanently silent (classic crash-stop).
///
/// The contention-resolution model has no crash faults — this wrapper
/// exists so tests can *measure* how far the paper's algorithms tolerate
/// them anyway (knocked-out nodes are irrelevant; coordinators mid-cohort
/// are not; see the `contention` crate's fault-injection tests).
#[derive(Debug, Clone)]
pub struct CrashAt<P> {
    inner: P,
    crash_after: u64,
    lived: u64,
}

impl<P> CrashAt<P> {
    /// Wraps `inner`; the node crashes after participating in
    /// `crash_after` rounds (0 = dead on arrival).
    #[must_use]
    pub fn new(inner: P, crash_after: u64) -> Self {
        CrashAt {
            inner,
            crash_after,
            lived: 0,
        }
    }

    /// Whether the crash point has been reached.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.lived >= self.crash_after
    }

    /// The wrapped protocol (its state is frozen at the crash point).
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: crate::Protocol> crate::Protocol for CrashAt<P> {
    type Msg = P::Msg;

    fn on_wake(&mut self, ctx: &crate::RoundContext, rng: &mut rand::rngs::SmallRng) {
        self.inner.on_wake(ctx, rng);
    }

    fn act(&mut self, ctx: &crate::RoundContext, rng: &mut rand::rngs::SmallRng) -> crate::Action<P::Msg> {
        debug_assert!(!self.crashed(), "crashed node scheduled");
        self.lived += 1;
        self.inner.act(ctx, rng)
    }

    fn observe(
        &mut self,
        ctx: &crate::RoundContext,
        feedback: crate::Feedback<P::Msg>,
        rng: &mut rand::rngs::SmallRng,
    ) {
        self.inner.observe(ctx, feedback, rng);
    }

    fn status(&self) -> crate::Status {
        if self.crashed() {
            crate::Status::Inactive
        } else {
            self.inner.status()
        }
    }

    fn phase(&self) -> &'static str {
        if self.crashed() {
            "crashed"
        } else {
            self.inner.phase()
        }
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::{Action, ChannelId, Executor, Feedback, Protocol, RoundContext, SimConfig, Status, StopWhen};
    use rand::rngs::SmallRng;

    struct Chatter;
    impl Protocol for Chatter {
        type Msg = u32;
        fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u32> {
            Action::transmit(ChannelId::new(2), 0)
        }
        fn observe(&mut self, _: &RoundContext, _: Feedback<u32>, _: &mut SmallRng) {}
        fn status(&self) -> Status {
            Status::Active
        }
    }

    #[test]
    fn crash_silences_the_node() {
        let cfg = SimConfig::new(2).stop_when(StopWhen::AllTerminated).max_rounds(100);
        let mut exec = Executor::new(cfg);
        let id = exec.add_node(CrashAt::new(Chatter, 3));
        let report = exec.run().expect("terminates once crashed");
        assert_eq!(report.rounds_executed, 3);
        assert_eq!(report.metrics.transmissions, 3);
        assert!(exec.node(id).crashed());
    }

    #[test]
    fn dead_on_arrival_never_acts() {
        let cfg = SimConfig::new(2).stop_when(StopWhen::AllTerminated).max_rounds(100);
        let mut exec = Executor::new(cfg);
        exec.add_node(CrashAt::new(Chatter, 0));
        let report = exec.run().expect("terminates");
        assert_eq!(report.metrics.transmissions, 0);
    }

    #[test]
    fn uncrashed_wrapper_is_transparent() {
        let cfg = SimConfig::new(2).max_rounds(5);
        let mut exec = Executor::new(cfg);
        exec.add_node(CrashAt::new(Chatter, 1_000));
        // Chatter never terminates and never hits channel 1: timeout.
        assert!(exec.run().is_err());
    }
}
