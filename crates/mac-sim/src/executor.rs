//! Deprecated compatibility shim over the [`crate::engine`] module.
//!
//! The synchronous-round executor was split into three layers — the engine
//! hot loop ([`crate::engine`]), pluggable feedback models
//! ([`crate::feedback`]), and the observation layer ([`crate::sink`]).
//! [`Executor`] remains as an alias so existing call sites keep compiling;
//! new code should name [`Engine`] directly.

use crate::config::CdMode;
use crate::engine::Engine;

/// The pre-split name of [`Engine`] with the default [`CdMode`] feedback
/// model. The API is identical; only the name changed.
#[deprecated(since = "0.2.0", note = "renamed to `mac_sim::Engine` (identical API)")]
pub type Executor<P> = Engine<P, CdMode>;

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::Executor;
    use crate::action::{Action, Feedback};
    use crate::channel::ChannelId;
    use crate::config::SimConfig;
    use crate::protocol::{Protocol, RoundContext, Status};
    use rand::rngs::SmallRng;

    struct Beacon;

    impl Protocol for Beacon {
        type Msg = u8;
        fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u8> {
            Action::transmit(ChannelId::PRIMARY, 1)
        }
        fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u8>, _rng: &mut SmallRng) {}
        fn status(&self) -> Status {
            Status::Active
        }
    }

    #[test]
    fn deprecated_alias_still_runs() {
        let mut exec = Executor::new(SimConfig::new(2));
        exec.add_node(Beacon);
        let report = exec.run().expect("runs");
        assert_eq!(report.solved_round, Some(0));
    }
}
