//! The synchronous-round executor.

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::action::{Action, Feedback};
use crate::channel::{ChannelId, ChannelOutcome, OutcomeKind};
use crate::config::{CdMode, SimConfig, StopWhen};
use crate::error::SimError;
use crate::metrics::Metrics;
use crate::protocol::{Protocol, RoundContext, Status};
use crate::rng::derive_node_seed;
use crate::trace::{RoundTrace, Trace, TraceLevel};

/// Index of a node within an [`Executor`], assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

struct NodeSlot<P> {
    protocol: P,
    rng: SmallRng,
    start_round: u64,
    woken: bool,
}

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The first round (0-based) in which exactly one node transmitted on
    /// the primary channel, i.e. the round the problem was solved — or
    /// `None` if the run ended without solving it.
    pub solved_round: Option<u64>,
    /// The node that made that lone primary-channel transmission.
    pub solver: Option<NodeId>,
    /// Total rounds executed before stopping.
    pub rounds_executed: u64,
    /// Nodes whose final status is [`Status::Leader`].
    pub leaders: Vec<NodeId>,
    /// Nodes still [`Status::Active`] when the run stopped.
    pub active_remaining: Vec<NodeId>,
    /// Transmission counts and per-phase round accounting.
    pub metrics: Metrics,
    /// The recorded trace, empty unless tracing was enabled.
    pub trace: Trace,
}

impl RunReport {
    /// Rounds needed to solve the problem: `solved_round + 1` (round numbers
    /// are 0-based but "solved in r rounds" counts rounds). `None` if the
    /// run never solved the problem.
    #[must_use]
    pub fn rounds_to_solve(&self) -> Option<u64> {
        self.solved_round.map(|r| r + 1)
    }

    /// Returns `true` if the run solved contention resolution.
    #[must_use]
    pub fn is_solved(&self) -> bool {
        self.solved_round.is_some()
    }
}

/// Result of one [`Executor::step`]: is the run's stop condition met?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The stop condition is not yet met; more rounds may follow.
    Running,
    /// The stop condition is met; further `step` calls are no-ops.
    Finished,
}

/// Mutable per-run bookkeeping, kept inside the executor so execution can
/// proceed one round at a time ([`Executor::step`]) with full state
/// inspection between rounds.
struct RunState {
    metrics: Metrics,
    trace: Trace,
    solved_round: Option<u64>,
    solver: Option<NodeId>,
    round: u64,
    finished: bool,
}

/// Runs a population of [`Protocol`] state machines over shared channels.
///
/// Execution can be driven two ways:
///
/// * [`Executor::run`] — loop to the configured stop condition (the common
///   case);
/// * [`Executor::step`] — advance exactly one round, inspect node state via
///   [`Executor::node`] / [`Executor::report`], repeat. Used by invariant
///   audits that need to see protocols mid-flight.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Executor<P: Protocol> {
    config: SimConfig,
    nodes: Vec<NodeSlot<P>>,
    run: RunState,
    actions: Vec<(usize, Action<P::Msg>)>,
    // Reusable per-channel scratch, indexed by `ChannelId::index()`.
    tx_count: Vec<u32>,
    rx_count: Vec<u32>,
    lone_msg: Vec<Option<P::Msg>>,
    lone_tx: Vec<usize>,
    dirty: Vec<usize>,
}

impl<P: Protocol> Executor<P> {
    /// Creates an executor for the given configuration with no nodes yet.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        let c = config.channels as usize;
        Executor {
            config,
            nodes: Vec::new(),
            run: RunState {
                metrics: Metrics::new(0),
                trace: Trace::new(),
                solved_round: None,
                solver: None,
                round: 0,
                finished: false,
            },
            actions: Vec::new(),
            tx_count: vec![0; c],
            rx_count: vec![0; c],
            lone_msg: (0..c).map(|_| None).collect(),
            lone_tx: vec![usize::MAX; c],
            dirty: Vec::new(),
        }
    }

    /// The configuration this executor runs with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Adds a node that wakes in round 0. Returns its id.
    pub fn add_node(&mut self, protocol: P) -> NodeId {
        self.add_node_at(protocol, 0)
    }

    /// Adds a node that wakes in round `start_round`. Returns its id.
    ///
    /// Staggered wake-ups model the harder non-simultaneous variant of the
    /// problem discussed in §3 of the paper.
    pub fn add_node_at(&mut self, protocol: P, start_round: u64) -> NodeId {
        let id = NodeId(self.nodes.len());
        let seed = derive_node_seed(self.config.master_seed, id.0 as u64);
        self.nodes.push(NodeSlot {
            protocol,
            rng: SmallRng::seed_from_u64(seed),
            start_round,
            woken: false,
        });
        self.run.metrics.transmissions_per_node.push(0);
        id
    }

    /// Number of nodes added.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's protocol, e.g. for post-run assertions.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.0].protocol
    }

    /// Iterates over all node protocols in id order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter().map(|slot| &slot.protocol)
    }

    /// Runs rounds until the configured stop condition is met.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoNodes`] if no node was added;
    /// * [`SimError::ChannelOutOfRange`] if a protocol picks an invalid
    ///   channel;
    /// * [`SimError::Timeout`] if `max_rounds` elapse without meeting the
    ///   stop condition.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        while !self.run.finished {
            if self.run.round >= self.config.max_rounds {
                return Err(SimError::Timeout {
                    max_rounds: self.config.max_rounds,
                });
            }
            self.step()?;
        }
        Ok(self.report())
    }

    /// Executes exactly one round (waking, acting, channel resolution,
    /// feedback, stop-condition check). Returns whether the stop condition
    /// has been met; once it has, further calls change nothing and keep
    /// returning [`StepStatus::Finished`].
    ///
    /// `step` ignores `max_rounds` — the cap belongs to [`Executor::run`]'s
    /// loop; a manual driver decides its own limits.
    ///
    /// # Errors
    ///
    /// * [`SimError::NoNodes`] if no node was added;
    /// * [`SimError::ChannelOutOfRange`] if a protocol picks an invalid
    ///   channel.
    pub fn step(&mut self) -> Result<StepStatus, SimError> {
        if self.nodes.is_empty() {
            return Err(SimError::NoNodes);
        }
        if self.run.finished {
            return Ok(StepStatus::Finished);
        }
        let latest_wake = self.nodes.iter().map(|slot| slot.start_round).max().unwrap_or(0);
        let round = self.run.round;
        {
            // Wake-ups scheduled for this round.
            for slot in &mut self.nodes {
                if !slot.woken && slot.start_round == round {
                    slot.woken = true;
                    let ctx = RoundContext {
                        round,
                        local_round: 0,
                        channels: self.config.channels,
                    };
                    slot.protocol.on_wake(&ctx, &mut slot.rng);
                }
            }

            // Phase accounting: the paper's algorithms keep all active nodes
            // in lockstep, so the first active node is representative.
            let phase = self
                .nodes
                .iter()
                .find(|slot| slot.woken && slot.protocol.status() == Status::Active)
                .map_or("idle", |slot| slot.protocol.phase());
            self.run.metrics.phases.record(phase);

            // Collect actions.
            self.actions.clear();
            for (idx, slot) in self.nodes.iter_mut().enumerate() {
                if !slot.woken || slot.protocol.status() != Status::Active {
                    continue;
                }
                let ctx = RoundContext {
                    round,
                    local_round: round - slot.start_round,
                    channels: self.config.channels,
                };
                let action = slot.protocol.act(&ctx, &mut slot.rng);
                if let Some(channel) = action.channel() {
                    if channel.get() > self.config.channels {
                        return Err(SimError::ChannelOutOfRange {
                            node: NodeId(idx),
                            round,
                            channel,
                            channels: self.config.channels,
                        });
                    }
                }
                self.actions.push((idx, action));
            }

            // Resolve channels.
            for &d in &self.dirty {
                self.tx_count[d] = 0;
                self.rx_count[d] = 0;
                self.lone_msg[d] = None;
                self.lone_tx[d] = usize::MAX;
            }
            self.dirty.clear();
            for (idx, action) in &self.actions {
                match action {
                    Action::Transmit { channel, msg } => {
                        let ci = channel.index();
                        if self.tx_count[ci] == 0 && self.rx_count[ci] == 0 {
                            self.dirty.push(ci);
                        }
                        self.tx_count[ci] += 1;
                        match self.tx_count[ci] {
                            1 => {
                                self.lone_msg[ci] = Some(msg.clone());
                                self.lone_tx[ci] = *idx;
                            }
                            _ => {
                                self.lone_msg[ci] = None;
                                self.lone_tx[ci] = usize::MAX;
                            }
                        }
                        self.run.metrics.record_transmission(*idx, phase);
                    }
                    Action::Listen { channel } => {
                        let ci = channel.index();
                        if self.tx_count[ci] == 0 && self.rx_count[ci] == 0 {
                            self.dirty.push(ci);
                        }
                        self.rx_count[ci] += 1;
                        self.run.metrics.record_listen();
                    }
                    Action::Sleep => {}
                }
            }

            // Solve detection: exactly one transmitter on the primary channel.
            let primary = ChannelId::PRIMARY.index();
            if self.run.solved_round.is_none() && self.tx_count[primary] == 1 {
                self.run.solved_round = Some(round);
                self.run.solver = Some(NodeId(self.lone_tx[primary]));
            }

            // Trace.
            if self.config.trace_level == TraceLevel::Channels {
                let mut outcomes: Vec<ChannelOutcome> = self
                    .dirty
                    .iter()
                    .map(|&ci| ChannelOutcome {
                        channel: ChannelId::new(ci as u32 + 1),
                        kind: OutcomeKind::from_transmitters(self.tx_count[ci] as usize),
                        transmitters: self.tx_count[ci] as usize,
                        listeners: self.rx_count[ci] as usize,
                    })
                    .collect();
                outcomes.sort_by_key(|oc| oc.channel);
                self.run.trace.push(RoundTrace {
                    round,
                    outcomes,
                    phase,
                });
            }

            // Deliver feedback.
            let mut actions = std::mem::take(&mut self.actions);
            for (idx, action) in actions.drain(..) {
                let slot = &mut self.nodes[idx];
                let feedback = feedback_for(&action, &self.tx_count, &self.lone_msg, self.config.cd_mode);
                let ctx = RoundContext {
                    round,
                    local_round: round - slot.start_round,
                    channels: self.config.channels,
                };
                slot.protocol.observe(&ctx, feedback, &mut slot.rng);
            }
            self.actions = actions;
        }

        self.run.round += 1;

        // Stop conditions.
        let all_terminated = self.run.round > latest_wake
            && self
                .nodes
                .iter()
                .all(|slot| slot.woken && slot.protocol.status().is_terminated());
        let finished = match self.config.stop_when {
            // The deadlock guard: everyone terminated without solving also
            // ends a Solved-mode run.
            StopWhen::Solved => self.run.solved_round.is_some() || all_terminated,
            StopWhen::AllTerminated => all_terminated,
        };
        self.run.finished = finished;
        Ok(if finished {
            StepStatus::Finished
        } else {
            StepStatus::Running
        })
    }

    /// The current round number: how many rounds have been executed so far.
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.run.round
    }

    /// Whether the stop condition has been met.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.run.finished
    }

    /// A snapshot report of the run so far — callable at any point, also
    /// mid-run between [`Executor::step`] calls.
    #[must_use]
    pub fn report(&self) -> RunReport {
        let leaders = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.protocol.status() == Status::Leader)
            .map(|(idx, _)| NodeId(idx))
            .collect();
        let active_remaining = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.woken && slot.protocol.status() == Status::Active)
            .map(|(idx, _)| NodeId(idx))
            .collect();

        RunReport {
            solved_round: self.run.solved_round,
            solver: self.run.solver,
            rounds_executed: self.run.round,
            leaders,
            active_remaining,
            metrics: self.run.metrics.clone(),
            trace: self.run.trace.clone(),
        }
    }
}

/// Computes the feedback one node receives for its action, given the resolved
/// channel state and the collision-detection mode.
fn feedback_for<M: Clone>(
    action: &Action<M>,
    tx_count: &[u32],
    lone_msg: &[Option<M>],
    cd_mode: CdMode,
) -> Feedback<M> {
    let (channel, transmitted) = match action {
        Action::Transmit { channel, .. } => (*channel, true),
        Action::Listen { channel } => (*channel, false),
        Action::Sleep => return Feedback::Slept,
    };
    let ci = channel.index();
    let truth = match tx_count[ci] {
        0 => Feedback::Silence,
        1 => Feedback::Message(lone_msg[ci].clone().expect("lone message recorded")),
        _ => Feedback::Collision,
    };
    match cd_mode {
        CdMode::Strong => truth,
        CdMode::ReceiverOnly => {
            if transmitted {
                Feedback::TransmittedBlind
            } else {
                truth
            }
        }
        CdMode::None => {
            if transmitted {
                Feedback::TransmittedBlind
            } else if matches!(truth, Feedback::Collision) {
                // Without collision detection a collision is indistinguishable
                // from background noise / silence.
                Feedback::Silence
            } else {
                truth
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// What a test node does every round.
    enum Role {
        /// Transmit a fixed payload on a fixed channel, forever.
        Tx(ChannelId, u8),
        /// Listen on a fixed channel, forever.
        Rx(ChannelId),
        /// Terminate immediately with the given status.
        Quit(Status),
    }

    /// A single configurable test protocol, so executors can host mixtures.
    struct Rig {
        role: Role,
        heard: Vec<Feedback<u8>>,
    }

    impl Rig {
        fn tx(channel: ChannelId, payload: u8) -> Self {
            Rig {
                role: Role::Tx(channel, payload),
                heard: Vec::new(),
            }
        }
        fn rx(channel: ChannelId) -> Self {
            Rig {
                role: Role::Rx(channel),
                heard: Vec::new(),
            }
        }
        fn quit(status: Status) -> Self {
            Rig {
                role: Role::Quit(status),
                heard: Vec::new(),
            }
        }
    }

    impl Protocol for Rig {
        type Msg = u8;
        fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u8> {
            match self.role {
                Role::Tx(channel, payload) => Action::transmit(channel, payload),
                Role::Rx(channel) => Action::listen(channel),
                Role::Quit(_) => Action::Sleep,
            }
        }
        fn observe(&mut self, _ctx: &RoundContext, fb: Feedback<u8>, _rng: &mut SmallRng) {
            self.heard.push(fb);
        }
        fn status(&self) -> Status {
            match self.role {
                Role::Quit(status) => status,
                _ => Status::Active,
            }
        }
    }

    #[test]
    fn lone_primary_transmitter_solves_in_round_zero() {
        let mut exec = Executor::new(SimConfig::new(4));
        let id = exec.add_node(Rig::tx(ChannelId::PRIMARY, 42));
        let report = exec.run().unwrap();
        assert_eq!(report.solved_round, Some(0));
        assert_eq!(report.solver, Some(id));
        assert_eq!(report.rounds_to_solve(), Some(1));
        assert!(report.is_solved());
        assert_eq!(report.rounds_executed, 1);
    }

    #[test]
    fn two_primary_transmitters_collide_forever_and_time_out() {
        let mut exec = Executor::new(SimConfig::new(4).max_rounds(50));
        exec.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        exec.add_node(Rig::tx(ChannelId::PRIMARY, 2));
        let err = exec.run().unwrap_err();
        assert_eq!(err, SimError::Timeout { max_rounds: 50 });
    }

    #[test]
    fn lone_transmitter_on_secondary_channel_does_not_solve() {
        let mut exec = Executor::new(SimConfig::new(4).max_rounds(10));
        exec.add_node(Rig::tx(ChannelId::new(2), 1));
        let err = exec.run().unwrap_err();
        assert_eq!(err, SimError::Timeout { max_rounds: 10 });
    }

    #[test]
    fn listener_hears_message_then_collision() {
        // Round-by-round content check with a staggered second beacon.
        let mut exec = Executor::new(SimConfig::new(4).max_rounds(3).stop_when(StopWhen::AllTerminated));
        exec.add_node(Rig::tx(ChannelId::new(2), 7));
        exec.add_node_at(Rig::tx(ChannelId::new(2), 8), 1);
        let ear = exec.add_node(Rig::rx(ChannelId::new(2)));
        // Nothing terminates, so this will time out; inspect state afterwards.
        let _ = exec.run();
        let heard = &exec.node(ear).heard;
        assert_eq!(heard[0], Feedback::Message(7));
        assert_eq!(heard[1], Feedback::Collision);
        assert_eq!(heard[2], Feedback::Collision);
    }

    #[test]
    fn transmitter_detects_collision_under_strong_cd() {
        let mut exec = Executor::new(SimConfig::new(2).max_rounds(1));
        let a = exec.add_node(Rig::tx(ChannelId::new(2), 1));
        let b = exec.add_node(Rig::tx(ChannelId::new(2), 2));
        let _ = exec.run();
        assert_eq!(exec.node(a).heard[0], Feedback::Collision);
        assert_eq!(exec.node(b).heard[0], Feedback::Collision);
    }

    #[test]
    fn lone_transmitter_hears_own_message_under_strong_cd() {
        let mut exec = Executor::new(SimConfig::new(2).max_rounds(1));
        let a = exec.add_node(Rig::tx(ChannelId::new(2), 9));
        let _ = exec.run();
        assert_eq!(exec.node(a).heard[0], Feedback::Message(9));
    }

    #[test]
    fn receiver_only_cd_blinds_transmitters() {
        let cfg = SimConfig::new(2).max_rounds(1).cd_mode(CdMode::ReceiverOnly);
        let mut exec = Executor::new(cfg);
        let a = exec.add_node(Rig::tx(ChannelId::new(2), 1));
        let b = exec.add_node(Rig::tx(ChannelId::new(2), 2));
        let ear = exec.add_node(Rig::rx(ChannelId::new(2)));
        let _ = exec.run();
        assert_eq!(exec.node(a).heard[0], Feedback::TransmittedBlind);
        assert_eq!(exec.node(b).heard[0], Feedback::TransmittedBlind);
        assert_eq!(exec.node(ear).heard[0], Feedback::Collision);
    }

    #[test]
    fn no_cd_turns_collisions_into_silence_for_listeners() {
        let cfg = SimConfig::new(2).max_rounds(1).cd_mode(CdMode::None);
        let mut exec = Executor::new(cfg);
        exec.add_node(Rig::tx(ChannelId::new(2), 1));
        exec.add_node(Rig::tx(ChannelId::new(2), 2));
        let ear = exec.add_node(Rig::rx(ChannelId::new(2)));
        let _ = exec.run();
        assert_eq!(exec.node(ear).heard[0], Feedback::Silence);
    }

    #[test]
    fn no_cd_still_delivers_lone_messages() {
        let cfg = SimConfig::new(2).max_rounds(1).cd_mode(CdMode::None);
        let mut exec = Executor::new(cfg);
        exec.add_node(Rig::tx(ChannelId::new(2), 5));
        let ear = exec.add_node(Rig::rx(ChannelId::new(2)));
        let _ = exec.run();
        assert_eq!(exec.node(ear).heard[0], Feedback::Message(5));
    }

    #[test]
    fn empty_channel_is_silence() {
        let mut exec = Executor::new(SimConfig::new(2).max_rounds(1));
        let ear = exec.add_node(Rig::rx(ChannelId::new(2)));
        let _ = exec.run();
        assert_eq!(exec.node(ear).heard[0], Feedback::Silence);
    }

    #[test]
    fn out_of_range_channel_is_an_error() {
        let mut exec = Executor::new(SimConfig::new(2).max_rounds(5));
        exec.add_node(Rig::tx(ChannelId::new(3), 0));
        let err = exec.run().unwrap_err();
        assert!(matches!(err, SimError::ChannelOutOfRange { .. }));
    }

    #[test]
    fn no_nodes_is_an_error() {
        let mut exec: Executor<Rig> = Executor::new(SimConfig::new(2));
        assert_eq!(exec.run().unwrap_err(), SimError::NoNodes);
        assert!(exec.is_empty());
        assert_eq!(exec.len(), 0);
    }

    #[test]
    fn all_terminated_without_solving_ends_run() {
        let mut exec = Executor::new(SimConfig::new(2).max_rounds(100));
        exec.add_node(Rig::quit(Status::Inactive));
        let report = exec.run().unwrap();
        assert!(!report.is_solved());
        assert!(report.leaders.is_empty());
        assert!(report.active_remaining.is_empty());
    }

    #[test]
    fn leaders_are_reported() {
        let cfg = SimConfig::new(2).stop_when(StopWhen::AllTerminated).max_rounds(10);
        let mut exec = Executor::new(cfg);
        let a = exec.add_node(Rig::quit(Status::Leader));
        exec.add_node(Rig::quit(Status::Inactive));
        let report = exec.run().unwrap();
        assert_eq!(report.leaders, vec![a]);
    }

    #[test]
    fn transmission_metrics_count_energy() {
        let mut exec = Executor::new(SimConfig::new(4).max_rounds(3));
        exec.add_node(Rig::tx(ChannelId::new(2), 1));
        exec.add_node(Rig::tx(ChannelId::new(3), 2));
        let err = exec.run().unwrap_err();
        assert_eq!(err, SimError::Timeout { max_rounds: 3 });
        // Re-run with a fresh executor to get a report that includes metrics.
        let mut exec = Executor::new(SimConfig::new(4).max_rounds(3));
        exec.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        let report = exec.run().unwrap();
        assert_eq!(report.metrics.transmissions, 1);
        assert_eq!(report.metrics.transmissions_per_node, vec![1]);
    }

    #[test]
    fn staggered_wakeup_respects_start_round() {
        let cfg = SimConfig::new(2).max_rounds(5);
        let mut exec = Executor::new(cfg);
        exec.add_node_at(Rig::tx(ChannelId::PRIMARY, 1), 3);
        let report = exec.run().unwrap();
        // The beacon only exists from round 3, so that is the solve round.
        assert_eq!(report.solved_round, Some(3));
    }

    #[test]
    fn trace_records_channel_outcomes() {
        let cfg = SimConfig::new(4).max_rounds(1).trace_level(TraceLevel::Channels);
        let mut exec = Executor::new(cfg);
        exec.add_node(Rig::tx(ChannelId::PRIMARY, 1));
        exec.add_node(Rig::tx(ChannelId::new(3), 1));
        exec.add_node(Rig::tx(ChannelId::new(3), 2));
        let report = exec.run().unwrap();
        assert_eq!(report.trace.len(), 1);
        let outcomes = &report.trace.rounds()[0].outcomes;
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].kind, OutcomeKind::Message);
        assert_eq!(outcomes[1].kind, OutcomeKind::Collision);
        assert_eq!(outcomes[1].transmitters, 2);
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        use rand::Rng;

        /// Random-channel beacon used to exercise the per-node RNG.
        struct RandomBeacon {
            last: Vec<u32>,
        }
        impl Protocol for RandomBeacon {
            type Msg = u8;
            fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u8> {
                let ch = rng.gen_range(1..=ctx.channels);
                self.last.push(ch);
                Action::transmit(ChannelId::new(ch), 0)
            }
            fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u8>, _rng: &mut SmallRng) {}
            fn status(&self) -> Status {
                Status::Active
            }
        }

        let run = |seed: u64| {
            let mut exec = Executor::new(SimConfig::new(16).seed(seed).max_rounds(20));
            let a = exec.add_node(RandomBeacon { last: Vec::new() });
            let b = exec.add_node(RandomBeacon { last: Vec::new() });
            let _ = exec.run();
            (exec.node(a).last.clone(), exec.node(b).last.clone())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        let (a, b) = run(5);
        assert_ne!(a, b, "node RNG streams must differ");
    }

    #[test]
    fn phase_accounting_uses_first_active_node() {
        struct Phased {
            rounds: u64,
        }
        impl Protocol for Phased {
            type Msg = u8;
            fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u8> {
                self.rounds += 1;
                Action::Sleep
            }
            fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u8>, _rng: &mut SmallRng) {}
            fn status(&self) -> Status {
                if self.rounds >= 4 {
                    Status::Inactive
                } else {
                    Status::Active
                }
            }
            fn phase(&self) -> &'static str {
                if self.rounds < 2 {
                    "warmup"
                } else {
                    "work"
                }
            }
        }
        let cfg = SimConfig::new(1).stop_when(StopWhen::AllTerminated).max_rounds(10);
        let mut exec = Executor::new(cfg);
        exec.add_node(Phased { rounds: 0 });
        let report = exec.run().unwrap();
        assert_eq!(report.metrics.phases.rounds_in("warmup"), 2);
        assert_eq!(report.metrics.phases.rounds_in("work"), 2);
    }
}
