//! Composable fault injection: seeded, deterministic fault models layered
//! over any inner [`FeedbackModel`].
//!
//! The paper's model is fault-free — strong collision detection never lies,
//! messages are never lost, and nodes never die. The related literature
//! shows those are exactly the fragile assumptions (arXiv:2111.06650 studies
//! resolution under adversarial jamming; arXiv:2408.11275 studies graceful
//! degradation under imperfect collision feedback), so this module provides
//! the knobs to *measure* where the paper's algorithms break:
//!
//! * [`NoisyCd`] — collision ↔ silence flips with per-direction
//!   probabilities (false-positive and missed collision detection);
//! * [`LossyChannel`] — per-channel message erasure: a lone transmission is
//!   heard as silence by everyone, including its own sender;
//! * [`CrashStop`] — an adversary crashes up to `f` nodes at scheduled
//!   rounds, or reactively assassinates the current lone primary-channel
//!   transmitter mid-protocol;
//! * [`JamBudget`] — a refinement of [`crate::adversary::JammedChannel`]:
//!   a *reactive* jammer with a finite energy budget that it spends only on
//!   rounds that would otherwise solve the problem (the strongest strategy
//!   per jamming-resistance energy arguments).
//!
//! The first three are [`FaultLayer`]s, stacked over any inner model with
//! the [`Layered`] combinator ([`JamBudget`] is a full [`FeedbackModel`]
//! and can serve as the *inner* of a stack):
//!
//! ```
//! use mac_sim::fault::{Layered, LossyChannel, NoisyCd};
//! use mac_sim::{CdMode, Engine, SimConfig};
//! # use mac_sim::{Action, ChannelId, Feedback, Protocol, RoundContext, Status};
//! # use rand::rngs::SmallRng;
//! # struct Beacon;
//! # impl Protocol for Beacon {
//! #     type Msg = u8;
//! #     fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u8> {
//! #         Action::transmit(ChannelId::PRIMARY, 1)
//! #     }
//! #     fn observe(&mut self, _: &RoundContext, _: Feedback<u8>, _: &mut SmallRng) {}
//! #     fn status(&self) -> Status { Status::Active }
//! # }
//!
//! // 1% CD noise over a 2% lossy channel over strong CD.
//! let radio = Layered::new(
//!     NoisyCd::symmetric(0.01),
//!     Layered::new(LossyChannel::new(0.02), CdMode::Strong),
//! );
//! let mut engine = Engine::with_feedback(
//!     SimConfig::new(4).seed(7).round_budget(1_000),
//!     radio,
//! );
//! engine.add_node(Beacon);
//! let report = engine.run().expect("a lone beacon survives light faults");
//! assert!(report.is_solved());
//! ```
//!
//! **Determinism.** Every fault model derives its RNG stream from the
//! configuration's master seed at [`FeedbackModel::bind`] time (via
//! [`crate::derive_fault_seed`], on streams disjoint from the per-node
//! streams), and draws in the engine's deterministic delivery order — so
//! runs are bit-identical across repetitions of the same seed and invariant
//! under [`crate::trials`] thread counts. Fault injection is
//! pay-for-what-you-use: a plain [`CdMode`] engine executes the exact
//! pre-fault hot loop (the identity hooks compile away), which the golden
//! oracle in `tests/engine_oracle.rs` pins.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::action::{Action, Feedback};
use crate::channel::ChannelId;
use crate::config::{CdMode, SimConfig};
use crate::engine::NodeId;
use crate::feedback::{ChannelState, FeedbackModel};
use crate::rng::derive_fault_seed;

/// One fault transformation, stacked over an inner [`FeedbackModel`] with
/// [`Layered`].
///
/// A layer sees the round from both sides: [`filter_action`] runs *before*
/// channel resolution and may alter physical truth (crash-stop silences a
/// node for real), while [`transform`] runs *after* the inner model has
/// delivered and may corrupt only what is heard (noise, erasure).
/// [`allows_solve`] vetoes solve rounds the layer disturbed — the engine's
/// guarantee that a fault can delay a solve but never fabricate one.
///
/// All hooks default to the identity, so a layer implements only the side
/// it needs.
///
/// [`filter_action`]: FaultLayer::filter_action
/// [`transform`]: FaultLayer::transform
/// [`allows_solve`]: FaultLayer::allows_solve
pub trait FaultLayer {
    /// Derives seeded state from the configuration (RNG streams, per-channel
    /// scratch). Called once by [`Layered`]'s [`FeedbackModel::bind`].
    fn bind(&mut self, config: &SimConfig) {
        let _ = config;
    }

    /// Announces each round before any node acts.
    fn begin_round(&mut self, round: u64) {
        let _ = round;
    }

    /// Rewrites a node's action before channel resolution (physical faults).
    fn filter_action<M: Clone>(&mut self, node: NodeId, action: Action<M>) -> Action<M> {
        let _ = node;
        action
    }

    /// Corrupts what the inner model delivered (observational faults).
    fn transform<M: Clone>(
        &mut self,
        action: &Action<M>,
        heard: Feedback<M>,
        state: &ChannelState<'_, M>,
    ) -> Feedback<M> {
        let _ = (action, state);
        heard
    }

    /// Whether a physically lone primary-channel transmission by `solver`
    /// survives this layer's faults. Consulted only when the inner model
    /// already allowed the solve.
    fn allows_solve(&mut self, solver: NodeId) -> bool {
        let _ = solver;
        true
    }

    /// Reports nodes this layer has permanently crashed since the last
    /// call (see [`FeedbackModel::drain_crashed`]); the engine retires the
    /// announced slots out of its live set. Defaults to a no-op.
    fn drain_crashed(&mut self, out: &mut Vec<NodeId>) {
        let _ = out;
    }
}

/// Stacks a [`FaultLayer`] over an inner [`FeedbackModel`], itself a
/// [`FeedbackModel`] — so layers compose statically:
/// `Layered<NoisyCd, Layered<CrashStop, CdMode>>` dispatches with zero
/// runtime indirection.
#[derive(Debug, Clone)]
pub struct Layered<L, F> {
    layer: L,
    inner: F,
}

impl<L: FaultLayer, F: FeedbackModel> Layered<L, F> {
    /// Stacks `layer` over `inner`.
    #[must_use]
    pub fn new(layer: L, inner: F) -> Self {
        Layered { layer, inner }
    }

    /// The fault layer, e.g. for post-run adversary inspection.
    #[must_use]
    pub fn layer(&self) -> &L {
        &self.layer
    }

    /// The inner feedback model.
    #[must_use]
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<L: FaultLayer, F: FeedbackModel> FeedbackModel for Layered<L, F> {
    fn bind(&mut self, config: &SimConfig) {
        self.inner.bind(config);
        self.layer.bind(config);
    }

    fn begin_round(&mut self, round: u64) {
        self.inner.begin_round(round);
        self.layer.begin_round(round);
    }

    fn filter_action<M: Clone>(&mut self, node: NodeId, action: Action<M>) -> Action<M> {
        let action = self.inner.filter_action(node, action);
        self.layer.filter_action(node, action)
    }

    fn allows_solve(&mut self, solver: NodeId) -> bool {
        self.inner.allows_solve(solver) && self.layer.allows_solve(solver)
    }

    fn drain_crashed(&mut self, out: &mut Vec<NodeId>) {
        self.inner.drain_crashed(out);
        self.layer.drain_crashed(out);
    }

    fn deliver<M: Clone>(
        &mut self,
        action: &Action<M>,
        state: &ChannelState<'_, M>,
    ) -> Feedback<M> {
        let heard = self.inner.deliver(action, state);
        self.layer.transform(action, heard, state)
    }
}

/// Imperfect collision detection: each delivered `Collision` is missed
/// (heard as `Silence`) with probability `p_miss`, and each delivered
/// `Silence` triggers a false positive (heard as `Collision`) with
/// probability `p_false`, independently per participant per round.
///
/// This models energy-detection hardware near its sensitivity floor — the
/// imperfect-feedback regime of arXiv:2408.11275. Messages are never
/// corrupted (see [`LossyChannel`] for erasure), and physical truth is
/// untouched: a lone primary transmission still solves the problem even if
/// some listener hallucinated a collision.
#[derive(Debug, Clone)]
pub struct NoisyCd {
    p_false: f64,
    p_miss: f64,
    rng: SmallRng,
    flips: u64,
}

impl NoisyCd {
    /// RNG stream id, for [`crate::derive_fault_seed`].
    pub const STREAM: u64 = 1;

    /// Flips silence→collision with `p_false` and collision→silence with
    /// `p_miss`.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_false: f64, p_miss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_false) && (0.0..=1.0).contains(&p_miss),
            "probabilities must lie in [0, 1]"
        );
        NoisyCd {
            p_false,
            p_miss,
            rng: SmallRng::seed_from_u64(0),
            flips: 0,
        }
    }

    /// Equal flip probability `p` in both directions.
    #[must_use]
    pub fn symmetric(p: f64) -> Self {
        NoisyCd::new(p, p)
    }

    /// Feedback flips actually injected so far (both directions). Plain
    /// counting — no extra RNG draws — so reading it never perturbs the
    /// fault stream.
    #[must_use]
    pub fn flips(&self) -> u64 {
        self.flips
    }
}

impl FaultLayer for NoisyCd {
    fn bind(&mut self, config: &SimConfig) {
        self.rng = SmallRng::seed_from_u64(derive_fault_seed(config.master_seed, Self::STREAM));
    }

    fn transform<M: Clone>(
        &mut self,
        _action: &Action<M>,
        heard: Feedback<M>,
        _state: &ChannelState<'_, M>,
    ) -> Feedback<M> {
        match heard {
            Feedback::Collision if self.p_miss > 0.0 && self.rng.gen_bool(self.p_miss) => {
                self.flips += 1;
                Feedback::Silence
            }
            Feedback::Silence if self.p_false > 0.0 && self.rng.gen_bool(self.p_false) => {
                self.flips += 1;
                Feedback::Collision
            }
            other => other,
        }
    }
}

/// Per-channel message erasure: each round, each channel independently
/// drops its frame with probability `p_erase`. On an erased channel a lone
/// transmission is heard as silence by *everyone* — including the sender,
/// whose own-echo confirmation (the capability the paper's renaming steps
/// lean on) silently vanishes. Collisions still sound like collisions
/// (noise is noise), and an erased lone primary transmission does not count
/// as a solve: the frame never arrived.
#[derive(Debug, Clone)]
pub struct LossyChannel {
    p_erase: f64,
    erased: Vec<bool>,
    rng: SmallRng,
    erasures: u64,
}

impl LossyChannel {
    /// RNG stream id, for [`crate::derive_fault_seed`].
    pub const STREAM: u64 = 2;

    /// Erases each channel's frame with probability `p_erase` per round.
    ///
    /// # Panics
    ///
    /// Panics if `p_erase` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_erase: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_erase),
            "probability must lie in [0, 1]"
        );
        LossyChannel {
            p_erase,
            erased: Vec::new(),
            rng: SmallRng::seed_from_u64(0),
            erasures: 0,
        }
    }

    /// Whether `channel` is erased in the current round.
    #[must_use]
    pub fn erased(&self, channel: ChannelId) -> bool {
        self.erased.get(channel.index()).copied().unwrap_or(false)
    }

    /// Message deliveries actually suppressed so far (one per listener
    /// per erased frame). Plain counting — no extra RNG draws — so
    /// reading it never perturbs the fault stream.
    #[must_use]
    pub fn erasures(&self) -> u64 {
        self.erasures
    }
}

impl FaultLayer for LossyChannel {
    fn bind(&mut self, config: &SimConfig) {
        self.erased = vec![false; config.channels as usize];
        self.rng = SmallRng::seed_from_u64(derive_fault_seed(config.master_seed, Self::STREAM));
    }

    fn begin_round(&mut self, _round: u64) {
        for e in &mut self.erased {
            *e = self.p_erase > 0.0 && self.rng.gen_bool(self.p_erase);
        }
    }

    fn transform<M: Clone>(
        &mut self,
        action: &Action<M>,
        heard: Feedback<M>,
        _state: &ChannelState<'_, M>,
    ) -> Feedback<M> {
        match (action.channel(), heard) {
            (Some(channel), Feedback::Message(_)) if self.erased(channel) => {
                self.erasures += 1;
                Feedback::Silence
            }
            (_, heard) => heard,
        }
    }

    fn allows_solve(&mut self, _solver: NodeId) -> bool {
        !self.erased(ChannelId::PRIMARY)
    }
}

/// Crash-stop faults: the adversary permanently silences up to `f` nodes.
///
/// Crashes alter *physical* truth: victims are announced to the engine via
/// [`FaultLayer::drain_crashed`], which retires their slots from the live
/// set — from its crash round on a node acts no more, so it stops
/// contributing to collisions, cannot be the elected lone transmitter (the
/// solve-validity rail holds by construction), and hears nothing. The
/// protocol object itself is not informed — a crashed node's slot is
/// [`SlotState::Crashed`](crate::SlotState::Crashed) with its status
/// frozen at `Active`, which is exactly why fault sweeps arm
/// [`SimConfig::round_budget`]. (An assassin kill lands mid-round: the
/// frame is cut via [`FaultLayer::transform`] in the kill round, and the
/// slot retires at the start of the next round.)
///
/// Three adversary strategies, combinable:
///
/// * [`CrashStop::schedule`] — explicit `(node, round)` pairs;
/// * [`CrashStop::random`] — `f` distinct victims at seeded uniform rounds;
/// * [`CrashStop::assassin`] — the strongest: reactively kills the current
///   lone primary-channel transmitter *mid-transmission* (the frame is cut,
///   everyone on the channel hears silence, the solve is vetoed), up to `f`
///   times.
#[derive(Debug, Clone, Default)]
pub struct CrashStop {
    schedule: Vec<(NodeId, u64)>,
    random: Option<(usize, usize, u64)>,
    kills_remaining: u64,
    crashed: std::collections::HashSet<usize>,
    fresh_kill: Option<NodeId>,
    /// Victims crashed since the last [`FaultLayer::drain_crashed`] call,
    /// in crash order.
    newly: Vec<NodeId>,
}

impl CrashStop {
    /// RNG stream id, for [`crate::derive_fault_seed`].
    pub const STREAM: u64 = 3;

    /// Crashes each listed node at the start of its listed round (round 0
    /// means dead on arrival).
    #[must_use]
    pub fn schedule(schedule: Vec<(NodeId, u64)>) -> Self {
        CrashStop {
            schedule,
            ..CrashStop::default()
        }
    }

    /// Crashes `f` distinct victims among node ids `0..nodes`, each at a
    /// seeded uniform round in `0..window`, drawn at bind time from the
    /// configuration's master seed.
    ///
    /// # Panics
    ///
    /// Panics if `f > nodes` or `window == 0`.
    #[must_use]
    pub fn random(f: usize, nodes: usize, window: u64) -> Self {
        assert!(f <= nodes, "cannot crash {f} of {nodes} nodes");
        assert!(window >= 1, "crash window must be positive");
        CrashStop {
            random: Some((f, nodes, window)),
            ..CrashStop::default()
        }
    }

    /// Reactively assassinates up to `kills` lone primary-channel
    /// transmitters at the moment they would have solved the problem.
    #[must_use]
    pub fn assassin(kills: u64) -> Self {
        CrashStop {
            kills_remaining: kills,
            ..CrashStop::default()
        }
    }

    /// Adds assassin behavior on top of a scheduled/random adversary.
    #[must_use]
    pub fn with_assassin(mut self, kills: u64) -> Self {
        self.kills_remaining = kills;
        self
    }

    /// Whether `node` has crashed (as of the current round).
    #[must_use]
    pub fn crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node.0)
    }

    /// Number of nodes crashed so far.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.crashed.len()
    }
}

impl FaultLayer for CrashStop {
    fn bind(&mut self, config: &SimConfig) {
        if let Some((f, nodes, window)) = self.random {
            let mut rng =
                SmallRng::seed_from_u64(derive_fault_seed(config.master_seed, Self::STREAM));
            // f distinct victims by rejection (f ≤ nodes, so this halts).
            let mut victims = std::collections::HashSet::new();
            while victims.len() < f {
                victims.insert(rng.gen_range(0..nodes));
            }
            let mut victims: Vec<usize> = victims.into_iter().collect();
            victims.sort_unstable();
            for v in victims {
                let round = rng.gen_range(0..window);
                self.schedule.push((NodeId(v), round));
            }
        }
    }

    fn begin_round(&mut self, round: u64) {
        self.fresh_kill = None;
        for &(node, r) in &self.schedule {
            if r <= round && self.crashed.insert(node.0) {
                self.newly.push(node);
            }
        }
    }

    fn drain_crashed(&mut self, out: &mut Vec<NodeId>) {
        out.append(&mut self.newly);
    }

    fn filter_action<M: Clone>(&mut self, node: NodeId, action: Action<M>) -> Action<M> {
        // Retirement already keeps crashed nodes out of the round loop;
        // this filter is defense in depth for actions reaching a stack in
        // unusual orders (e.g. a layer *above* that fabricates actions).
        if self.crashed.contains(&node.0) {
            Action::Sleep
        } else {
            action
        }
    }

    fn transform<M: Clone>(
        &mut self,
        action: &Action<M>,
        heard: Feedback<M>,
        state: &ChannelState<'_, M>,
    ) -> Feedback<M> {
        // A node assassinated mid-transmission this round: its frame was
        // cut, so the channel it occupied alone sounds silent to everyone.
        if let (Some(killed), Some(channel)) = (self.fresh_kill, action.channel()) {
            if state.lone_transmitter(channel) == Some(killed)
                && matches!(heard, Feedback::Message(_))
            {
                return Feedback::Silence;
            }
        }
        heard
    }

    fn allows_solve(&mut self, solver: NodeId) -> bool {
        // Solve-validity rail: a crashed node cannot be elected. With
        // `filter_action` silencing crashed nodes before resolution this
        // cannot trigger, but it is kept as defense in depth for layers
        // stacked in unusual orders.
        if self.crashed.contains(&solver.0) {
            return false;
        }
        if self.kills_remaining > 0 {
            self.kills_remaining -= 1;
            self.crashed.insert(solver.0);
            self.fresh_kill = Some(solver);
            // The kill takes physical effect *this* round (the frame is
            // cut in `transform`), so the slot retires at the next
            // `drain_crashed` — the start of the following round.
            self.newly.push(solver);
            return false;
        }
        true
    }
}

/// A reactive jammer with a finite energy budget, refining
/// [`crate::adversary::JammedChannel`].
///
/// Where `JammedChannel` floods a fixed round range, `JamBudget` spends its
/// budget optimally: it jams the primary channel exactly in the rounds
/// where a lone transmission would otherwise solve the problem, and stays
/// silent the rest of the time. Per the standard energy argument, a budget
/// of `B` therefore delays the solve by exactly `B` would-be-solving
/// rounds — the strongest disruption any `B`-bounded jammer can buy.
///
/// In a jammed round every primary-channel participant hears what a
/// collision sounds like under the base [`CdMode`] (the jam collided with
/// the lone frame). `JamBudget` is a complete [`FeedbackModel`], so it can
/// serve as the inner model of a [`Layered`] fault stack.
#[derive(Debug, Clone)]
pub struct JamBudget {
    base: CdMode,
    budget: u64,
    spent: u64,
    jamming_now: bool,
}

impl JamBudget {
    /// A jammer that can afford to disrupt `budget` would-be-solving
    /// rounds, on top of the `base` collision-detection mode.
    #[must_use]
    pub fn new(base: CdMode, budget: u64) -> Self {
        JamBudget {
            base,
            budget,
            spent: 0,
            jamming_now: false,
        }
    }

    /// Energy spent so far (jammed rounds).
    #[must_use]
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Energy remaining.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.budget - self.spent
    }

    /// Whether the current round is being jammed.
    #[must_use]
    pub fn jamming(&self) -> bool {
        self.jamming_now
    }
}

impl FeedbackModel for JamBudget {
    fn begin_round(&mut self, _round: u64) {
        self.jamming_now = false;
    }

    fn allows_solve(&mut self, _solver: NodeId) -> bool {
        // Called exactly when a lone primary transmission would solve the
        // problem — the only rounds worth jamming.
        if self.spent < self.budget {
            self.spent += 1;
            self.jamming_now = true;
            false
        } else {
            true
        }
    }

    fn deliver<M: Clone>(
        &mut self,
        action: &Action<M>,
        state: &ChannelState<'_, M>,
    ) -> Feedback<M> {
        let (channel, transmitted) = match action {
            Action::Transmit { channel, .. } => (*channel, true),
            Action::Listen { channel } => (*channel, false),
            Action::Sleep => return Feedback::Slept,
        };
        if self.jamming_now && channel == ChannelId::PRIMARY {
            return match self.base {
                CdMode::Strong => Feedback::Collision,
                CdMode::ReceiverOnly | CdMode::None if transmitted => Feedback::TransmittedBlind,
                CdMode::ReceiverOnly => Feedback::Collision,
                CdMode::None => Feedback::Silence,
            };
        }
        self.base.deliver(action, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::JammedChannel;
    use crate::config::StopWhen;
    use crate::engine::Engine;
    use crate::error::SimError;
    use crate::protocol::{Protocol, RoundContext, Status};

    /// Transmits or listens on a fixed channel every round, recording what
    /// it hears.
    struct Node {
        channel: ChannelId,
        transmits: bool,
        heard: Vec<Feedback<u8>>,
    }

    impl Node {
        fn beacon(channel: ChannelId) -> Self {
            Node {
                channel,
                transmits: true,
                heard: Vec::new(),
            }
        }
        fn ear(channel: ChannelId) -> Self {
            Node {
                channel,
                transmits: false,
                heard: Vec::new(),
            }
        }
    }

    impl Protocol for Node {
        type Msg = u8;
        fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u8> {
            if self.transmits {
                Action::transmit(self.channel, 1)
            } else {
                Action::listen(self.channel)
            }
        }
        fn observe(&mut self, _: &RoundContext, fb: Feedback<u8>, _: &mut SmallRng) {
            self.heard.push(fb);
        }
        fn status(&self) -> Status {
            Status::Active
        }
    }

    #[test]
    fn noisy_cd_flips_both_directions_at_p_one() {
        // Certain noise: two colliding transmitters are heard as silence,
        // and an empty channel as a collision.
        let noisy = Layered::new(NoisyCd::new(1.0, 1.0), CdMode::Strong);
        let cfg = SimConfig::new(4).max_rounds(1);
        let mut engine = Engine::with_feedback(cfg, noisy);
        let a = engine.add_node(Node::beacon(ChannelId::new(2)));
        let b = engine.add_node(Node::beacon(ChannelId::new(2)));
        let empty_ear = engine.add_node(Node::ear(ChannelId::new(3)));
        let _ = engine.run();
        assert_eq!(engine.node(a).heard, vec![Feedback::Silence]);
        assert_eq!(engine.node(b).heard, vec![Feedback::Silence]);
        assert_eq!(engine.node(empty_ear).heard, vec![Feedback::Collision]);
    }

    #[test]
    fn noisy_cd_leaves_messages_and_solves_alone() {
        let noisy = Layered::new(NoisyCd::new(1.0, 1.0), CdMode::Strong);
        let mut engine = Engine::with_feedback(SimConfig::new(4).max_rounds(10), noisy);
        let a = engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let report = engine.run().expect("noise cannot veto a physical solve");
        assert_eq!(report.solved_round, Some(0));
        assert_eq!(engine.node(a).heard, vec![Feedback::Message(1)]);
    }

    #[test]
    fn noisy_cd_zero_probability_is_transparent() {
        let noisy = Layered::new(NoisyCd::symmetric(0.0), CdMode::Strong);
        let mut engine = Engine::with_feedback(SimConfig::new(4).seed(9).max_rounds(5), noisy);
        engine.add_node(Node::beacon(ChannelId::new(2)));
        engine.add_node(Node::beacon(ChannelId::new(2)));
        let ear = engine.add_node(Node::ear(ChannelId::new(2)));
        let _ = engine.run();
        assert_eq!(engine.node(ear).heard, vec![Feedback::Collision; 5]);
    }

    #[test]
    fn lossy_channel_erases_lone_messages_for_everyone() {
        // p_erase = 1: every frame is lost — the beacon never hears its own
        // echo, the listener hears silence, and the run cannot solve.
        let lossy = Layered::new(LossyChannel::new(1.0), CdMode::Strong);
        let cfg = SimConfig::new(2).round_budget(20);
        let mut engine = Engine::with_feedback(cfg, lossy);
        let tx = engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let rx = engine.add_node(Node::ear(ChannelId::PRIMARY));
        let err = engine.run().unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExhausted { solved: false, .. }
        ));
        assert!(engine.node(tx).heard.iter().all(Feedback::is_silence));
        assert!(engine.node(rx).heard.iter().all(Feedback::is_silence));
        assert!(engine.feedback().layer().erased(ChannelId::PRIMARY));
    }

    #[test]
    fn lossy_channel_keeps_collisions_audible() {
        let lossy = Layered::new(LossyChannel::new(1.0), CdMode::Strong);
        let mut engine = Engine::with_feedback(SimConfig::new(2).max_rounds(1), lossy);
        engine.add_node(Node::beacon(ChannelId::new(2)));
        engine.add_node(Node::beacon(ChannelId::new(2)));
        let ear = engine.add_node(Node::ear(ChannelId::new(2)));
        let _ = engine.run();
        assert_eq!(engine.node(ear).heard, vec![Feedback::Collision]);
    }

    #[test]
    fn scheduled_crash_silences_node_physically() {
        // Two primary transmitters collide forever; crashing one at round 3
        // leaves the other as the lone transmitter — which then solves.
        let crash = Layered::new(CrashStop::schedule(vec![(NodeId(0), 3)]), CdMode::Strong);
        let mut engine = Engine::with_feedback(SimConfig::new(2).max_rounds(10), crash);
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let survivor = engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let report = engine.run().expect("survivor solves");
        assert_eq!(report.solved_round, Some(3));
        assert_eq!(report.solver, Some(survivor));
        assert!(engine.feedback().layer().crashed(NodeId(0)));
        assert_eq!(engine.feedback().layer().crash_count(), 1);
    }

    #[test]
    fn dead_on_arrival_node_never_transmits() {
        let crash = Layered::new(CrashStop::schedule(vec![(NodeId(0), 0)]), CdMode::Strong);
        let cfg = SimConfig::new(2)
            .stop_when(StopWhen::AllTerminated)
            .round_budget(5);
        let mut engine = Engine::with_feedback(cfg, crash);
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let err = engine.run().unwrap_err();
        assert!(matches!(err, SimError::BudgetExhausted { .. }));
        assert_eq!(engine.report().metrics.transmissions, 0);
        assert_eq!(engine.summary().solved_round, None);
    }

    #[test]
    fn assassin_cuts_the_winning_transmission_mid_flight() {
        // A lone beacon would solve in round 0. The assassin kills it at
        // that moment: the listener hears silence (not the message), the
        // solve is vetoed, and with the beacon dead the run never solves.
        let crash = Layered::new(CrashStop::assassin(1), CdMode::Strong);
        let cfg = SimConfig::new(2).round_budget(10);
        let mut engine = Engine::with_feedback(cfg, crash);
        let beacon = engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let ear = engine.add_node(Node::ear(ChannelId::PRIMARY));
        let err = engine.run().unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExhausted { solved: false, .. }
        ));
        assert_eq!(engine.node(ear).heard[0], Feedback::Silence);
        assert!(engine.node(ear).heard.iter().all(Feedback::is_silence));
        assert!(engine.feedback().layer().crashed(beacon));
    }

    #[test]
    fn assassin_budget_limits_the_damage() {
        // Three beacons take turns being lone (the other two collide...);
        // simplest check: two beacons on primary, assassin with 1 kill.
        // They collide until the assassin has nothing to react to; crash
        // node 0 via schedule at round 2, assassin kills the then-lone
        // node 1 at round 2... then nobody is left.
        let crash = Layered::new(
            CrashStop::schedule(vec![(NodeId(0), 2)]).with_assassin(1),
            CdMode::Strong,
        );
        let cfg = SimConfig::new(2).round_budget(10);
        let mut engine = Engine::with_feedback(cfg, crash);
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let err = engine.run().unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExhausted { solved: false, .. }
        ));
        assert_eq!(engine.feedback().layer().crash_count(), 2);
    }

    #[test]
    fn random_crashes_are_seeded_and_bounded() {
        let build = |seed: u64| {
            let crash = Layered::new(CrashStop::random(3, 8, 5), CdMode::Strong);
            let cfg = SimConfig::new(2).seed(seed).round_budget(20);
            let mut engine = Engine::with_feedback(cfg, crash);
            for _ in 0..8 {
                engine.add_node(Node::beacon(ChannelId::new(2)));
            }
            let _ = engine.run();
            let layer = engine.feedback().layer().clone();
            (0..8).map(|i| layer.crashed(NodeId(i))).collect::<Vec<_>>()
        };
        let a = build(1);
        assert_eq!(a, build(1), "crash schedule must be seed-deterministic");
        assert_eq!(a.iter().filter(|&&c| c).count(), 3);
        let other = (2..10).map(build).collect::<Vec<_>>();
        assert!(other.iter().any(|b| *b != a), "seed must matter");
    }

    #[test]
    fn jam_budget_delays_solve_by_exactly_budget() {
        let jam = JamBudget::new(CdMode::Strong, 4);
        let mut engine = Engine::with_feedback(SimConfig::new(2).max_rounds(20), jam);
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let ear = engine.add_node(Node::ear(ChannelId::PRIMARY));
        let report = engine.run().expect("solves once the budget is spent");
        // Rounds 0..4 are jammed (each would have solved); round 4 solves.
        assert_eq!(report.solved_round, Some(4));
        assert_eq!(engine.feedback().spent(), 4);
        assert_eq!(engine.feedback().remaining(), 0);
        let heard = &engine.node(ear).heard;
        assert_eq!(heard[..4], vec![Feedback::Collision; 4][..]);
        assert_eq!(heard[4], Feedback::Message(1));
    }

    #[test]
    fn jam_budget_saves_energy_on_collided_rounds() {
        // Two colliding beacons give the jammer nothing to react to.
        let jam = JamBudget::new(CdMode::Strong, 5);
        let mut engine = Engine::with_feedback(SimConfig::new(2).round_budget(10), jam);
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let _ = engine.run();
        assert_eq!(engine.feedback().spent(), 0);
        assert!(!engine.feedback().jamming());
    }

    #[test]
    fn watchdog_terminates_fully_jammed_primary_channel() {
        // The acceptance-criteria scenario: a primary channel jammed for
        // every round of the run must end in BudgetExhausted, not a hang
        // (and not a bogus Timeout "experiment bug").
        let jam = JammedChannel::new(CdMode::Strong, ChannelId::PRIMARY, 0, u64::MAX);
        let cfg = SimConfig::new(2).max_rounds(1_000_000).round_budget(300);
        let mut engine = Engine::with_feedback(cfg, jam);
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let err = engine.run().unwrap_err();
        assert_eq!(
            err,
            SimError::BudgetExhausted {
                budget: 300,
                solved: false,
            }
        );
        assert_eq!(engine.current_round(), 300);
    }

    #[test]
    fn layers_stack_and_all_fire() {
        // Noise over loss over crash over strong CD: the crashed node is
        // silent, frames are erased, and empties crackle with noise.
        let stack = Layered::new(
            NoisyCd::new(1.0, 0.0),
            Layered::new(
                LossyChannel::new(1.0),
                Layered::new(CrashStop::schedule(vec![(NodeId(0), 0)]), CdMode::Strong),
            ),
        );
        let cfg = SimConfig::new(2).round_budget(3);
        let mut engine = Engine::with_feedback(cfg, stack);
        engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let lone = engine.add_node(Node::beacon(ChannelId::PRIMARY));
        let err = engine.run().unwrap_err();
        assert!(matches!(
            err,
            SimError::BudgetExhausted { solved: false, .. }
        ));
        // Node 1 transmits alone (node 0 crashed) but its echo is erased to
        // silence, which the p_false = 1 noise then flips to a collision.
        assert_eq!(engine.node(lone).heard, vec![Feedback::Collision; 3]);
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in [0, 1]")]
    fn noisy_cd_rejects_bad_probability() {
        let _ = NoisyCd::new(1.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot crash")]
    fn random_crash_rejects_oversized_f() {
        let _ = CrashStop::random(9, 8, 5);
    }
}
