//! Channel identifiers and per-round channel outcomes.

use std::fmt;

/// Identifier of one of the `C` multiple-access channels.
///
/// Channels are labelled `1..=C`, matching the paper's convention. Channel 1
/// is the *primary* channel: the contention resolution problem is solved in
/// the first round in which exactly one node transmits on it.
///
/// ```
/// use mac_sim::ChannelId;
///
/// let ch = ChannelId::new(3);
/// assert_eq!(ch.get(), 3);
/// assert!(!ch.is_primary());
/// assert!(ChannelId::PRIMARY.is_primary());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(u32);

impl ChannelId {
    /// The primary channel (channel 1), on which the problem must be solved.
    pub const PRIMARY: ChannelId = ChannelId(1);

    /// Creates a channel id from its 1-based label.
    ///
    /// # Panics
    ///
    /// Panics if `label` is zero; channel labels start at 1.
    #[must_use]
    pub fn new(label: u32) -> Self {
        assert!(label >= 1, "channel labels are 1-based; got 0");
        ChannelId(label)
    }

    /// Returns the 1-based label of this channel.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Returns the 0-based index of this channel (label − 1), convenient for
    /// array indexing.
    #[must_use]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Returns `true` if this is the primary channel (channel 1).
    #[must_use]
    pub fn is_primary(self) -> bool {
        self.0 == 1
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<ChannelId> for u32 {
    fn from(value: ChannelId) -> Self {
        value.0
    }
}

/// The physical outcome on one channel in one round, before the collision
/// detection mode filters what each participant actually learns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// No node transmitted on the channel this round.
    Silence,
    /// Exactly one node transmitted; the message is delivered.
    Message,
    /// Two or more nodes transmitted; the transmissions destroyed each other.
    Collision,
}

impl OutcomeKind {
    /// Classifies a transmitter count into an outcome.
    #[must_use]
    pub fn from_transmitters(count: usize) -> Self {
        match count {
            0 => OutcomeKind::Silence,
            1 => OutcomeKind::Message,
            _ => OutcomeKind::Collision,
        }
    }
}

impl fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OutcomeKind::Silence => "silence",
            OutcomeKind::Message => "message",
            OutcomeKind::Collision => "collision",
        };
        f.write_str(s)
    }
}

/// Aggregate outcome on one channel in one round, as recorded in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelOutcome {
    /// Which channel this outcome describes.
    pub channel: ChannelId,
    /// What physically happened on the channel.
    pub kind: OutcomeKind,
    /// How many nodes transmitted on the channel.
    pub transmitters: usize,
    /// How many nodes listened on the channel.
    pub listeners: usize,
}

impl fmt::Display for ChannelOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} tx, {} rx)",
            self.channel, self.kind, self.transmitters, self.listeners
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_channel_one() {
        assert_eq!(ChannelId::PRIMARY.get(), 1);
        assert!(ChannelId::PRIMARY.is_primary());
        assert!(!ChannelId::new(2).is_primary());
    }

    #[test]
    fn index_is_zero_based() {
        assert_eq!(ChannelId::new(1).index(), 0);
        assert_eq!(ChannelId::new(17).index(), 16);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_label_panics() {
        let _ = ChannelId::new(0);
    }

    #[test]
    fn outcome_classification() {
        assert_eq!(OutcomeKind::from_transmitters(0), OutcomeKind::Silence);
        assert_eq!(OutcomeKind::from_transmitters(1), OutcomeKind::Message);
        assert_eq!(OutcomeKind::from_transmitters(2), OutcomeKind::Collision);
        assert_eq!(OutcomeKind::from_transmitters(100), OutcomeKind::Collision);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ChannelId::new(5).to_string(), "ch5");
        assert_eq!(OutcomeKind::Collision.to_string(), "collision");
        let oc = ChannelOutcome {
            channel: ChannelId::new(2),
            kind: OutcomeKind::Message,
            transmitters: 1,
            listeners: 3,
        };
        assert_eq!(oc.to_string(), "ch2: message (1 tx, 3 rx)");
    }

    #[test]
    fn conversion_to_u32() {
        let ch = ChannelId::new(9);
        let raw: u32 = ch.into();
        assert_eq!(raw, 9);
    }

    #[test]
    fn ordering_follows_labels() {
        assert!(ChannelId::new(1) < ChannelId::new(2));
        assert!(ChannelId::new(10) > ChannelId::new(9));
    }
}
