//! Pluggable feedback models: how resolved channel state turns into what
//! each node hears.
//!
//! The round engine resolves the *physical* channel state — who transmitted
//! and listened where — and then asks a [`FeedbackModel`] what every
//! participant observes. The three collision-detection modes of the paper
//! (§3) are the canonical model: [`CdMode`] implements [`FeedbackModel`]
//! directly, and [`crate::Engine::new`] installs the one from
//! [`crate::SimConfig::cd_mode`]. Adversarial or noisy radios plug in the
//! same way — see [`crate::adversary::JammedChannel`] — via
//! [`crate::Engine::with_feedback`].

use crate::action::{Action, Feedback};
use crate::channel::ChannelId;
use crate::config::{CdMode, SimConfig};
use crate::engine::NodeId;

/// Read-only view of one round's resolved channel state, handed to
/// [`FeedbackModel::deliver`].
///
/// All accessors are O(1); [`ChannelState::truth`] clones the transmitted
/// message only when the channel actually carried a lone message.
pub struct ChannelState<'a, M> {
    pub(crate) tx_count: &'a [u32],
    pub(crate) rx_count: &'a [u32],
    pub(crate) actions: &'a [(usize, Action<M>)],
    pub(crate) lone_act: &'a [usize],
}

impl<M: Clone> ChannelState<'_, M> {
    /// Number of channels in the simulation.
    #[must_use]
    pub fn channels(&self) -> u32 {
        self.tx_count.len() as u32
    }

    /// How many nodes transmitted on `channel` this round.
    #[must_use]
    pub fn transmitters(&self, channel: ChannelId) -> u32 {
        self.tx_count[channel.index()]
    }

    /// How many nodes listened on `channel` this round.
    #[must_use]
    pub fn listeners(&self, channel: ChannelId) -> u32 {
        self.rx_count[channel.index()]
    }

    /// The lone transmitter on `channel`, if exactly one node transmitted.
    #[must_use]
    pub fn lone_transmitter(&self, channel: ChannelId) -> Option<NodeId> {
        let ai = self.lone_act[channel.index()];
        self.actions.get(ai).map(|&(node, _)| NodeId(node))
    }

    /// The ground-truth observation on `channel` under strong collision
    /// detection: silence, the lone message, or a collision.
    #[must_use]
    pub fn truth(&self, channel: ChannelId) -> Feedback<M> {
        let ci = channel.index();
        match self.tx_count[ci] {
            0 => Feedback::Silence,
            1 => {
                let (_, action) = &self.actions[self.lone_act[ci]];
                match action {
                    Action::Transmit { msg, .. } => Feedback::Message(msg.clone()),
                    _ => unreachable!("lone_act always indexes a Transmit action"),
                }
            }
            _ => Feedback::Collision,
        }
    }
}

/// Turns resolved channel state into per-node feedback.
///
/// Implementations may keep state across rounds —
/// [`begin_round`](FeedbackModel::begin_round) announces each round — which
/// is how adversarial models schedule their interference. The engine dispatches
/// statically — the model is a type parameter of [`crate::Engine`] — so a
/// model's branching is resolved at compile time, outside the hot loop.
///
/// Feedback models shape what nodes *hear*, not what physically happened:
/// solve detection (a lone transmission on the primary channel) operates on
/// physical channel state. A model that disturbs a round can veto its solve
/// via [`allows_solve`](FeedbackModel::allows_solve).
pub trait FeedbackModel {
    /// Called once by [`crate::Engine::with_feedback`], before any round
    /// runs. Models that carry randomness derive their RNG streams from
    /// [`SimConfig::master_seed`] here (see [`crate::derive_fault_seed`]),
    /// so runs stay bit-deterministic in the configuration seed.
    fn bind(&mut self, config: &SimConfig) {
        let _ = config;
    }

    /// Called once at the start of every round, before any node acts.
    fn begin_round(&mut self, round: u64) {
        let _ = round;
    }

    /// Filters a collected action before channel resolution. The default is
    /// the identity; fault models that alter *physical* truth override it —
    /// [`crate::fault::CrashStop`] replaces a crashed node's action with
    /// [`Action::Sleep`], so the dead node genuinely stops transmitting
    /// (affecting collision counts and solve detection) instead of merely
    /// being heard differently.
    ///
    /// Called after the engine's channel-range validation, in node order.
    fn filter_action<M: Clone>(&mut self, node: NodeId, action: Action<M>) -> Action<M> {
        let _ = node;
        action
    }

    /// Reports nodes this model has permanently removed from the run
    /// (crash-stop victims) since the last call, by appending their ids to
    /// `out`. The engine calls this right after
    /// [`begin_round`](FeedbackModel::begin_round) and *retires* the
    /// announced slots — they stop acting and observing from that round
    /// on, and block the all-terminated stop condition exactly like a
    /// crashed-but-still-`Active` status used to.
    ///
    /// The default is a no-op (clean models crash nobody, and the engine
    /// pays nothing for the empty drain). Implementations must announce
    /// each victim at most once, in the round its crash takes physical
    /// effect; announcing an already-retired or unknown id is harmless.
    fn drain_crashed(&mut self, out: &mut Vec<NodeId>) {
        let _ = out;
    }

    /// Whether a physically lone primary-channel transmission by `solver` in
    /// the current round counts as solving the problem. Defaults to `true`;
    /// adversarial models that drown the round in noise (or erase / crash
    /// the transmission mid-flight) return `false` for it.
    ///
    /// This is the engine's solve-validity rail: no fault model can
    /// manufacture a spurious solve (the candidate is always a physical
    /// lone transmitter), but any model can veto one it disturbed.
    fn allows_solve(&mut self, solver: NodeId) -> bool {
        let _ = solver;
        true
    }

    /// The feedback the node that took `action` observes this round.
    fn deliver<M: Clone>(&mut self, action: &Action<M>, state: &ChannelState<'_, M>)
        -> Feedback<M>;
}

impl FeedbackModel for CdMode {
    fn deliver<M: Clone>(
        &mut self,
        action: &Action<M>,
        state: &ChannelState<'_, M>,
    ) -> Feedback<M> {
        let (channel, transmitted) = match action {
            Action::Transmit { channel, .. } => (*channel, true),
            Action::Listen { channel } => (*channel, false),
            Action::Sleep => return Feedback::Slept,
        };
        match self {
            // Strong CD: everyone on the channel observes the truth.
            CdMode::Strong => state.truth(channel),
            // Receiver-side CD: listeners observe the truth; transmitters
            // learn nothing.
            CdMode::ReceiverOnly => {
                if transmitted {
                    Feedback::TransmittedBlind
                } else {
                    state.truth(channel)
                }
            }
            // No CD: transmitters learn nothing, and listeners cannot
            // distinguish a collision from background noise / silence.
            CdMode::None => {
                if transmitted {
                    Feedback::TransmittedBlind
                } else {
                    match state.truth(channel) {
                        Feedback::Collision => Feedback::Silence,
                        truth => truth,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state<'a>(
        tx_count: &'a [u32],
        rx_count: &'a [u32],
        actions: &'a [(usize, Action<u8>)],
        lone_act: &'a [usize],
    ) -> ChannelState<'a, u8> {
        ChannelState {
            tx_count,
            rx_count,
            actions,
            lone_act,
        }
    }

    #[test]
    fn truth_reads_lone_message_from_actions() {
        let actions = vec![(3usize, Action::transmit(ChannelId::new(2), 9u8))];
        let st = state(&[0, 1], &[0, 0], &actions, &[usize::MAX, 0]);
        assert_eq!(st.truth(ChannelId::new(1)), Feedback::Silence);
        assert_eq!(st.truth(ChannelId::new(2)), Feedback::Message(9));
        assert_eq!(st.lone_transmitter(ChannelId::new(2)), Some(NodeId(3)));
        assert_eq!(st.lone_transmitter(ChannelId::new(1)), None);
        assert_eq!(st.transmitters(ChannelId::new(2)), 1);
        assert_eq!(st.channels(), 2);
    }

    #[test]
    fn cd_modes_deliver_per_paper_model() {
        let actions = vec![
            (0usize, Action::transmit(ChannelId::new(1), 1u8)),
            (1usize, Action::transmit(ChannelId::new(1), 2u8)),
        ];
        let st = state(&[2], &[1], &actions, &[usize::MAX]);
        let tx = Action::transmit(ChannelId::new(1), 1u8);
        let rx: Action<u8> = Action::listen(ChannelId::new(1));

        assert_eq!(CdMode::Strong.deliver(&tx, &st), Feedback::Collision);
        assert_eq!(CdMode::Strong.deliver(&rx, &st), Feedback::Collision);
        assert_eq!(
            CdMode::ReceiverOnly.deliver(&tx, &st),
            Feedback::TransmittedBlind
        );
        assert_eq!(CdMode::ReceiverOnly.deliver(&rx, &st), Feedback::Collision);
        assert_eq!(CdMode::None.deliver(&tx, &st), Feedback::TransmittedBlind);
        assert_eq!(CdMode::None.deliver(&rx, &st), Feedback::Silence);
    }

    #[test]
    fn sleep_always_slept() {
        let st = state(&[0], &[0], &[], &[usize::MAX]);
        for mode in [CdMode::Strong, CdMode::ReceiverOnly, CdMode::None] {
            let mut mode = mode;
            assert_eq!(mode.deliver(&Action::<u8>::Sleep, &st), Feedback::Slept);
            assert!(mode.allows_solve(NodeId(0)));
        }
    }
}
