//! Optional per-round trace recording, for debugging and for the
//! channel-activity visualizations in the experiment harness.

use std::fmt;

use crate::channel::ChannelOutcome;

/// How much detail a run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceLevel {
    /// Record nothing (fastest; the default).
    #[default]
    Off,
    /// Record, for every round, the outcome of every channel that had at
    /// least one participant.
    Channels,
}

/// The recorded activity of one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTrace {
    /// The round number.
    pub round: u64,
    /// Outcomes of channels with at least one participant, sorted by channel.
    pub outcomes: Vec<ChannelOutcome>,
    /// The phase label of the lowest-indexed node that was active this round.
    pub phase: &'static str,
}

/// A full recorded trace of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    rounds: Vec<RoundTrace>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one round's record.
    pub fn push(&mut self, round: RoundTrace) {
        self.rounds.push(round);
    }

    /// The recorded rounds, in order.
    #[must_use]
    pub fn rounds(&self) -> &[RoundTrace] {
        &self.rounds
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rt in &self.rounds {
            write!(f, "r{:<5} [{}]", rt.round, rt.phase)?;
            for oc in &rt.outcomes {
                write!(f, "  {oc}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelId, OutcomeKind};

    #[test]
    fn trace_accumulates_and_renders() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(RoundTrace {
            round: 0,
            outcomes: vec![ChannelOutcome {
                channel: ChannelId::PRIMARY,
                kind: OutcomeKind::Collision,
                transmitters: 2,
                listeners: 0,
            }],
            phase: "reduce",
        });
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.contains("reduce"));
        assert!(s.contains("collision"));
    }
}
