//! # mac-sim — a multiple-access-channel simulator with collision detection
//!
//! This crate is the substrate on which the algorithms from *Contention
//! Resolution on Multiple Channels with Collision Detection* (Fineman,
//! Newport, Wang; PODC 2016) run. It simulates the paper's model exactly
//! (§3 of the paper):
//!
//! * time proceeds in synchronous rounds;
//! * there are `C ≥ 1` channels, labelled `1..=C`, each behaving like a
//!   standard MAC with **strong collision detection**;
//! * in each round every awake, active node picks one channel and either
//!   *transmits* a message on it or *listens* to it;
//! * on a channel with no transmitter, participants detect **silence**; with
//!   exactly one transmitter, every participant (including the transmitter)
//!   receives the **message**; with two or more, every participant observes a
//!   **collision**;
//! * the *contention resolution* problem is solved in the first round in
//!   which exactly one node transmits on channel 1 (the *primary* channel).
//!
//! The simulator is deterministic: a master seed derives one independent
//! [`rand::rngs::SmallRng`] per node, so every run is exactly reproducible.
//!
//! Weaker feedback models ([`CdMode::ReceiverOnly`], [`CdMode::None`]) are
//! also provided so experiments can demonstrate *why* the paper's strong-CD
//! assumption matters.
//!
//! ## Architecture
//!
//! The simulator is three layers:
//!
//! * **engine** — [`Engine`] runs the per-round hot loop on preallocated
//!   scratch (no steady-state allocation, messages cloned only per actual
//!   receiver);
//! * **feedback** — a pluggable [`FeedbackModel`] decides what each node
//!   hears; [`CdMode`] is the default model, and adversarial radios like
//!   [`adversary::JammedChannel`] plug in via [`Engine::with_feedback`];
//! * **observation** — [`EventSink`] observers ([`Metrics`], [`Trace`], or
//!   anything user-supplied via [`Engine::run_observed`]) record what
//!   happened; none are required, and [`Engine::run_summary`] skips them
//!   entirely.
//!
//! On top sit two scheduling layers: [`trials`], the per-cell fan-out that
//! runs many seeds of one configuration, and [`campaign`], which schedules
//! *whole sweeps* — every cell of a parameter grid — on one work-stealing
//! worker pool with streaming, deterministically merged aggregation.
//! `trials` is itself a single-cell campaign, so both layers share one
//! scheduler.
//!
//! The engine is deliberately *protocol-agnostic*: it schedules anything
//! implementing [`Protocol`] and never interprets what a node is doing
//! beyond its [`Action`]s and [`Status`]. Structured algorithms — multi-step
//! pipelines, fallback branches, wake-up wrappers — are composed one level
//! up, in the `contention` crate's `phase` module, whose `PhaseProtocol`
//! adapter presents any composed stack to the engine as a plain `Protocol`.
//! The only engine-visible trace of that structure is the
//! [`Protocol::phase`] label, which feeds per-phase round accounting in
//! [`Metrics`].
//!
//! The [`fault`] module layers seeded fault injection over any feedback
//! model — noisy collision detection, lossy channels, crash-stop nodes, and
//! budgeted reactive jamming — with [`SimConfig::round_budget`] as the
//! watchdog that turns a fault-wedged run into a structured
//! [`SimError::BudgetExhausted`] instead of a hang.
//!
//! ## Quick example
//!
//! ```
//! use mac_sim::{Action, ChannelId, Engine, Feedback, Protocol, RoundContext,
//!               SimConfig, Status};
//! use rand::rngs::SmallRng;
//!
//! /// A toy protocol: transmit on the primary channel with probability 1/2
//! /// until you hear a lone transmission.
//! struct Half {
//!     status: Status,
//!     sent: bool,
//! }
//!
//! impl Protocol for Half {
//!     type Msg = ();
//!
//!     fn act(&mut self, _ctx: &RoundContext, rng: &mut SmallRng) -> Action<()> {
//!         use rand::Rng;
//!         self.sent = rng.gen_bool(0.5);
//!         if self.sent {
//!             Action::transmit(ChannelId::PRIMARY, ())
//!         } else {
//!             Action::listen(ChannelId::PRIMARY)
//!         }
//!     }
//!
//!     fn observe(&mut self, _ctx: &RoundContext, fb: Feedback<()>, _rng: &mut SmallRng) {
//!         match fb {
//!             Feedback::Message(()) if self.sent => self.status = Status::Leader,
//!             Feedback::Message(()) => self.status = Status::Inactive,
//!             _ => {}
//!         }
//!     }
//!
//!     fn status(&self) -> Status {
//!         self.status
//!     }
//! }
//!
//! # fn main() -> Result<(), mac_sim::SimError> {
//! let config = SimConfig::new(4).seed(7).max_rounds(10_000);
//! let mut engine = Engine::new(config);
//! for _ in 0..2 {
//!     engine.add_node(Half { status: Status::Active, sent: false });
//! }
//! let report = engine.run()?;
//! assert!(report.solved_round.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod adversary;
pub mod campaign;
mod channel;
mod config;
pub mod dense;
mod engine;
mod error;
pub mod fault;
pub mod feedback;
mod metrics;
pub mod obs;
pub mod population;
mod protocol;
pub mod render;
mod rng;
pub mod sink;
mod trace;
pub mod traffic;
pub mod trials;

pub use action::{Action, Feedback};
pub use campaign::{panic_message, CampaignOutcome, Quarantined};
pub use channel::{ChannelId, ChannelOutcome, OutcomeKind};
pub use config::{CdMode, SimConfig, StopWhen};
pub use engine::{Engine, NodeId, RunReport, RunSummary, SlotState, StepStatus};
pub use error::SimError;
pub use feedback::{ChannelState, FeedbackModel};
pub use metrics::{Metrics, PhaseBreakdown};
pub use obs::telemetry::{MetricsHub, MetricsSnapshot, PowHistogram, Registry, TelemetrySink};
pub use population::{Member, SparsePopulation};
pub use protocol::{Protocol, RoundContext, Status};
pub use rng::{derive_fault_seed, derive_node_seed, derive_stream_seed};
pub use sink::EventSink;
pub use trace::{RoundTrace, Trace, TraceLevel};
pub use traffic::{
    run_traffic, run_traffic_dense, ArrivalProcess, ArrivalStream, BackoffMac, SlottedAloha,
    StopCause, TrafficReport, TrafficSpec,
};
pub use trials::{
    guarded_verdict, run_traffic_trials, run_traffic_trials_observed, TrialVerdict, WedgeCause,
};
