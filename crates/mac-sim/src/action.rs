//! Per-round node actions and the feedback the channel returns for them.

use crate::channel::ChannelId;

/// What one node does in one round.
///
/// The paper's model (§3) requires each active node to pick a single channel
/// and either transmit or receive on it. [`Action::Sleep`] extends the model
/// with a node that participates on no channel at all this round — the paper
/// uses this implicitly (e.g., inactive nodes, and the "do nothing for 4
/// rounds" step of `SplitSearch` in Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Transmit `msg` on `channel`.
    Transmit {
        /// Channel to transmit on.
        channel: ChannelId,
        /// The message payload delivered if the transmission is alone.
        msg: M,
    },
    /// Listen on `channel` without transmitting.
    Listen {
        /// Channel to listen on.
        channel: ChannelId,
    },
    /// Participate on no channel this round; the node learns nothing.
    Sleep,
}

impl<M> Action<M> {
    /// Convenience constructor for [`Action::Transmit`].
    pub fn transmit(channel: ChannelId, msg: M) -> Self {
        Action::Transmit { channel, msg }
    }

    /// Convenience constructor for [`Action::Listen`].
    pub fn listen(channel: ChannelId) -> Self {
        Action::Listen { channel }
    }

    /// The channel this action participates on, if any.
    pub fn channel(&self) -> Option<ChannelId> {
        match self {
            Action::Transmit { channel, .. } | Action::Listen { channel } => Some(*channel),
            Action::Sleep => None,
        }
    }

    /// Returns `true` if this action transmits.
    pub fn is_transmit(&self) -> bool {
        matches!(self, Action::Transmit { .. })
    }
}

/// What one node learns at the end of one round, as filtered by the
/// configured collision-detection mode ([`crate::CdMode`]).
///
/// Under the paper's strong collision detection, a node participating on a
/// channel observes [`Feedback::Silence`], [`Feedback::Message`], or
/// [`Feedback::Collision`] exactly according to the transmitter count —
/// *including transmitters*, which is the capability the paper's renaming
/// steps rely on ("transmit and use their collision detectors to see if they
/// are alone").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feedback<M> {
    /// No node transmitted on the node's channel.
    Silence,
    /// Exactly one node transmitted; this is its message. A lone transmitter
    /// receives its own message back (it learns it was alone).
    Message(M),
    /// Two or more nodes transmitted on the node's channel.
    Collision,
    /// The node transmitted but its radio gives transmitters no feedback
    /// (only under [`crate::CdMode::ReceiverOnly`] / [`crate::CdMode::None`]).
    TransmittedBlind,
    /// The node slept this round and learns nothing.
    Slept,
}

impl<M> Feedback<M> {
    /// Returns `true` for [`Feedback::Collision`].
    pub fn is_collision(&self) -> bool {
        matches!(self, Feedback::Collision)
    }

    /// Returns `true` for [`Feedback::Silence`].
    pub fn is_silence(&self) -> bool {
        matches!(self, Feedback::Silence)
    }

    /// Returns the delivered message, if the feedback carries one.
    pub fn message(&self) -> Option<&M> {
        match self {
            Feedback::Message(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_channel_accessor() {
        let t: Action<u8> = Action::transmit(ChannelId::new(3), 7);
        let l: Action<u8> = Action::listen(ChannelId::new(4));
        let s: Action<u8> = Action::Sleep;
        assert_eq!(t.channel(), Some(ChannelId::new(3)));
        assert_eq!(l.channel(), Some(ChannelId::new(4)));
        assert_eq!(s.channel(), None);
        assert!(t.is_transmit());
        assert!(!l.is_transmit());
        assert!(!s.is_transmit());
    }

    #[test]
    fn feedback_predicates() {
        let c: Feedback<u8> = Feedback::Collision;
        let s: Feedback<u8> = Feedback::Silence;
        let m: Feedback<u8> = Feedback::Message(9);
        assert!(c.is_collision());
        assert!(s.is_silence());
        assert_eq!(m.message(), Some(&9));
        assert_eq!(c.message(), None);
    }
}
