//! Simulation configuration: channel count, feedback model, stop conditions.

use crate::trace::TraceLevel;

/// Collision-detection capability of the radios.
///
/// The paper assumes the *classical* strong definition ("both transmitters
/// and receivers learn about message collisions on their channel in a given
/// round", §3). The weaker modes exist so experiments can show that the
/// paper's algorithms genuinely depend on the strong assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CdMode {
    /// Strong collision detection: every participant on a channel — listener
    /// or transmitter — observes silence / message / collision truthfully.
    #[default]
    Strong,
    /// Receiver-side collision detection only: listeners observe the truth;
    /// transmitters learn nothing ([`crate::Feedback::TransmittedBlind`]).
    ReceiverOnly,
    /// No collision detection: listeners cannot distinguish a collision from
    /// silence (collisions are delivered as [`crate::Feedback::Silence`]);
    /// transmitters learn nothing.
    None,
}

/// When the executor stops a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StopWhen {
    /// Stop in the first round in which exactly one node transmits on the
    /// primary channel — the problem definition's notion of "solved". This
    /// is the default and the measure used by every round-complexity
    /// experiment.
    #[default]
    Solved,
    /// Keep running until every node has terminated (status `Leader` or
    /// `Inactive`), even after the solve round. Useful for checking that
    /// protocols shut down cleanly and agree on the leader.
    AllTerminated,
}

/// Configuration for one simulation run.
///
/// Built with a fluent API:
///
/// ```
/// use mac_sim::{CdMode, SimConfig, StopWhen};
///
/// let cfg = SimConfig::new(64)
///     .seed(42)
///     .max_rounds(100_000)
///     .cd_mode(CdMode::Strong)
///     .stop_when(StopWhen::AllTerminated);
/// assert_eq!(cfg.channels, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of channels `C ≥ 1`.
    pub channels: u32,
    /// Master seed from which per-node seeds are derived.
    pub master_seed: u64,
    /// Hard cap on executed rounds; exceeding it is a [`crate::SimError::Timeout`].
    pub max_rounds: u64,
    /// Collision-detection model.
    pub cd_mode: CdMode,
    /// Stop condition.
    pub stop_when: StopWhen,
    /// Watchdog budget for fault-injected runs. Unlike `max_rounds` (which
    /// only guards [`crate::Engine::run`]'s loop and reports
    /// [`crate::SimError::Timeout`], an *experiment bug*), the budget is
    /// enforced by [`crate::Engine::step`] itself and converts
    /// non-termination under faults into the structured
    /// [`crate::SimError::BudgetExhausted`] — an *expected outcome* that
    /// breakdown sweeps catch and count. `None` (the default) disables it.
    pub round_budget: Option<u64>,
    /// How much per-round detail to record.
    pub trace_level: TraceLevel,
    /// Whether the engine's built-in [`crate::Metrics`] observer records
    /// transmissions, listens, and phase rounds (on by default). Turning it
    /// off removes that bookkeeping from the hot loop; the metrics in the
    /// final [`crate::RunReport`] stay zeroed.
    pub record_metrics: bool,
    /// Continuous-delivery ("traffic") mode, off by default. In one-shot
    /// mode a lone primary-channel transmission is detected once and
    /// latches `solved_round`. With this flag set, *every* such round is a
    /// packet delivery: the engine counts it ([`crate::Engine::deliveries`]),
    /// reports it through [`crate::EventSink::on_solved`], and retires the
    /// solver so a fresh arrival can contend for the channel. The first
    /// delivery still latches `solved_round`/`solver` exactly as before.
    /// Used by [`crate::traffic`]; fault models veto deliveries through
    /// [`crate::FeedbackModel::allows_solve`] just like one-shot solves.
    pub continuous_delivery: bool,
}

impl SimConfig {
    /// Creates a configuration with `channels` channels and defaults:
    /// seed 0, 1 000 000 round cap, strong CD, stop at first solve, no trace.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`; the model requires `C ≥ 1`.
    #[must_use]
    pub fn new(channels: u32) -> Self {
        assert!(channels >= 1, "the model requires C >= 1 channels");
        SimConfig {
            channels,
            master_seed: 0,
            max_rounds: 1_000_000,
            cd_mode: CdMode::Strong,
            stop_when: StopWhen::Solved,
            round_budget: None,
            trace_level: TraceLevel::Off,
            record_metrics: true,
            continuous_delivery: false,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the round cap.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the collision-detection mode.
    #[must_use]
    pub fn cd_mode(mut self, cd_mode: CdMode) -> Self {
        self.cd_mode = cd_mode;
        self
    }

    /// Sets the stop condition.
    #[must_use]
    pub fn stop_when(mut self, stop_when: StopWhen) -> Self {
        self.stop_when = stop_when;
        self
    }

    /// Arms the round-budget watchdog: executing round `round_budget` fails
    /// with [`crate::SimError::BudgetExhausted`]. Fault sweeps set this so a
    /// wedged protocol terminates with a structured, countable error rather
    /// than burning `max_rounds` worth of work.
    #[must_use]
    pub fn round_budget(mut self, round_budget: u64) -> Self {
        self.round_budget = Some(round_budget);
        self
    }

    /// Sets the trace level.
    #[must_use]
    pub fn trace_level(mut self, trace_level: TraceLevel) -> Self {
        self.trace_level = trace_level;
        self
    }

    /// Enables or disables the built-in metrics observer.
    #[must_use]
    pub fn record_metrics(mut self, record_metrics: bool) -> Self {
        self.record_metrics = record_metrics;
        self
    }

    /// Enables continuous-delivery (traffic) mode: every lone
    /// primary-channel transmission delivers a packet and retires its
    /// sender, instead of only the first one latching a solve.
    #[must_use]
    pub fn continuous_delivery(mut self, continuous_delivery: bool) -> Self {
        self.continuous_delivery = continuous_delivery;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = SimConfig::new(8)
            .seed(99)
            .max_rounds(10)
            .cd_mode(CdMode::None)
            .stop_when(StopWhen::AllTerminated)
            .round_budget(7)
            .trace_level(TraceLevel::Channels);
        assert_eq!(cfg.channels, 8);
        assert_eq!(cfg.master_seed, 99);
        assert_eq!(cfg.max_rounds, 10);
        assert_eq!(cfg.cd_mode, CdMode::None);
        assert_eq!(cfg.stop_when, StopWhen::AllTerminated);
        assert_eq!(cfg.round_budget, Some(7));
        assert_eq!(cfg.trace_level, TraceLevel::Channels);
    }

    #[test]
    fn defaults_match_paper_model() {
        let cfg = SimConfig::new(1);
        assert_eq!(cfg.cd_mode, CdMode::Strong);
        assert_eq!(cfg.stop_when, StopWhen::Solved);
        assert_eq!(cfg.round_budget, None);
        assert!(cfg.record_metrics);
        assert!(!cfg.continuous_delivery);
    }

    #[test]
    fn metrics_recording_can_be_disabled() {
        let cfg = SimConfig::new(1).record_metrics(false);
        assert!(!cfg.record_metrics);
    }

    #[test]
    fn continuous_delivery_can_be_enabled() {
        let cfg = SimConfig::new(1).continuous_delivery(true);
        assert!(cfg.continuous_delivery);
    }

    #[test]
    #[should_panic(expected = "C >= 1")]
    fn zero_channels_rejected() {
        let _ = SimConfig::new(0);
    }
}
