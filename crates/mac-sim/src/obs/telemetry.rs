//! The live telemetry hub: a sharded, mergeable metrics registry with
//! snapshot exposition.
//!
//! The run-record layer ([`crate::obs`]) is exact but *post hoc* — a
//! sweep in flight is a black box. This module adds the in-flight view:
//!
//! * [`Registry`] — a plain bag of counters (merge = sum), gauges
//!   (merge = max), and [`PowHistogram`]s (merge = bucket-wise sum);
//! * [`MetricsHub`] — per-worker shards, each behind its own lock, merged
//!   only at snapshot time. Workers accumulate locally (one lock per
//!   *run*, not per round) so the engine hot loop never takes a shared
//!   lock;
//! * [`MetricsSnapshot`] — a point-in-time merge, exportable as a
//!   versioned `kind: "snapshot"` JSONL record (same schema family as
//!   [`super::RunRecord`]) and as Prometheus-style text exposition;
//! * [`TelemetrySink`] — an [`EventSink`] that tallies engine activity
//!   (rounds, acts/round, retirements, per-channel outcomes) into local
//!   fields and flushes once at end of run.
//!
//! Every merge operation is associative and commutative over exact
//! integers, and the merged registry is held in `BTreeMap`s, so **a
//! snapshot merged from k worker shards renders byte-identically for any
//! k and any partition of the same events** — the same mergeability
//! contract `contention_analysis::OnlineSummary` pins for cell
//! aggregates, re-stated here for the metrics plane (this crate sits
//! below the analysis crate and cannot depend on it, so the power-of-two
//! bucket scheme is deliberately mirrored, not imported).
//!
//! Observer-effect freedom: nothing in this module touches an engine,
//! node, or RNG — sinks only read the event stream — so a run with the
//! hub attached is bit-identical to a bare run (pinned by the
//! `observer_effect` suite).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::{Json, SCHEMA_VERSION};
use crate::channel::{ChannelId, ChannelOutcome, OutcomeKind};
use crate::engine::{NodeId, SlotState};
use crate::sink::EventSink;

/// Maximum distinct buckets a [`PowHistogram`] keeps before doubling its
/// bucket width. Smaller than the analysis-layer cap (4096): telemetry
/// histograms are rendered live and shipped in every snapshot line.
pub const TELEMETRY_BUCKET_CAP: usize = 512;

/// A power-of-two-bucket histogram over `u64` samples.
///
/// Mirrors the `OnlineSummary` bucket contract from the analysis crate:
/// bucket `b` at width shift `s` covers values `[b << s, (b+1) << s)`;
/// when the bucket count exceeds [`TELEMETRY_BUCKET_CAP`] the width
/// doubles (`s += 1`) and buckets pairwise-collapse. Merging aligns both
/// operands to the coarser shift and adds counts, so merge is exactly
/// associative and commutative: any partition of the same samples over
/// any number of shards produces the same histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PowHistogram {
    n: u64,
    sum: u64,
    min: u64,
    max: u64,
    shift: u32,
    buckets: BTreeMap<u64, u64>,
}

impl PowHistogram {
    /// An empty histogram at the finest bucket width.
    #[must_use]
    pub fn new() -> Self {
        PowHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.n == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.n += 1;
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(value >> self.shift).or_insert(0) += 1;
        self.shrink_to_cap();
    }

    /// Folds `other` into `self`. Exactly associative and commutative.
    pub fn merge(&mut self, other: &PowHistogram) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.n += other.n;
        self.sum = self.sum.saturating_add(other.sum);
        while self.shift < other.shift {
            self.coarsen();
        }
        let delta = self.shift - other.shift;
        for (&bucket, &count) in &other.buckets {
            *self.buckets.entry(bucket >> delta).or_insert(0) += count;
        }
        self.shrink_to_cap();
    }

    fn coarsen(&mut self) {
        self.shift += 1;
        let old = std::mem::take(&mut self.buckets);
        for (bucket, count) in old {
            *self.buckets.entry(bucket >> 1).or_insert(0) += count;
        }
    }

    fn shrink_to_cap(&mut self) {
        while self.buckets.len() > TELEMETRY_BUCKET_CAP {
            self.coarsen();
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.max
        }
    }

    /// Current bucket width as a power-of-two shift.
    #[must_use]
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// The buckets, keyed by `value >> shift`.
    #[must_use]
    pub fn buckets(&self) -> &BTreeMap<u64, u64> {
        &self.buckets
    }

    /// Mean sample value, or 0.0 when empty.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) to bucket resolution: the upper
    /// edge of the first bucket whose cumulative count reaches `⌈q·n⌉`,
    /// clamped to the observed [`min`](PowHistogram::min) /
    /// [`max`](PowHistogram::max). Returns 0 when empty. Deterministic in
    /// the recorded multiset, so quantiles of merged shard histograms are
    /// partition-independent.
    #[must_use]
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    #[allow(clippy::cast_possible_truncation)]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&bucket, &count) in &self.buckets {
            seen += count;
            if seen >= rank {
                // Upper edge of this bucket (inclusive), clamped to the
                // exact extremes the histogram tracked.
                let hi = ((bucket + 1) << self.shift).saturating_sub(1);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("n".into(), self.n.into()),
            ("sum".into(), self.sum.into()),
            ("min".into(), self.min().into()),
            ("max".into(), self.max().into()),
            ("shift".into(), u64::from(self.shift).into()),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|(&b, &c)| Json::Arr(vec![b.into(), c.into()]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<PowHistogram, String> {
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram field '{key}' missing or mistyped"))
        };
        let n = field("n")?;
        let buckets = value
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram missing 'buckets' array")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or("histogram bucket is not a pair")?;
                match pair {
                    [b, c] => Ok((
                        b.as_u64().ok_or("bucket key is not a u64")?,
                        c.as_u64().ok_or("bucket count is not a u64")?,
                    )),
                    _ => Err("histogram bucket is not a pair".to_string()),
                }
            })
            .collect::<Result<BTreeMap<u64, u64>, String>>()?;
        Ok(PowHistogram {
            n,
            sum: field("sum")?,
            min: if n == 0 { 0 } else { field("min")? },
            max: field("max")?,
            shift: u32::try_from(field("shift")?).map_err(|_| "shift overflows u32")?,
            buckets,
        })
    }
}

/// One shard's worth of metrics: counters, gauges, and histograms, all
/// keyed by metric name.
///
/// Names follow Prometheus conventions (`snake_case`, unit-suffixed,
/// `_total` for counters) and may embed a label set verbatim, e.g.
/// `fault_injections_total{kind="flip"}` — the registry treats the whole
/// string as the key, which keeps merging trivially deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, PowHistogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` (merge = sum).
    pub fn count(&mut self, name: impl Into<String>, delta: u64) {
        if delta > 0 {
            *self.counters.entry(name.into()).or_insert(0) += delta;
        }
    }

    /// Raises the gauge `name` to `value` if larger (merge = max, so the
    /// merged value is partition-independent).
    pub fn gauge_max(&mut self, name: impl Into<String>, value: u64) {
        let slot = self.gauges.entry(name.into()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&mut self, name: impl Into<String>, value: u64) {
        self.histograms
            .entry(name.into())
            .or_default()
            .record(value);
    }

    /// Folds a whole pre-built histogram into the histogram `name` — how
    /// per-run histograms (e.g. packet latencies from
    /// [`crate::traffic::TrafficReport`]) land in a shard registry without
    /// being replayed sample by sample.
    pub fn merge_histogram(&mut self, name: impl Into<String>, h: &PowHistogram) {
        if h.count() > 0 {
            self.histograms.entry(name.into()).or_default().merge(h);
        }
    }

    /// Folds another registry into this one.
    pub fn merge(&mut self, other: &Registry) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Current value of counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, PowHistogram> {
        &self.histograms
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// The sharded hub: one [`Registry`] per worker, merged only at snapshot
/// time.
///
/// Each shard sits behind its own `Mutex`; a worker that writes only to
/// its own shard never contends with the others. The intended discipline
/// (used by the campaign scheduler) is stricter still: workers
/// accumulate into a thread-local [`Registry`] and [`absorb`] it in one
/// lock acquisition at the end of a run, so the engine hot loop takes
/// *no* lock at all.
///
/// [`absorb`]: MetricsHub::absorb
#[derive(Debug)]
pub struct MetricsHub {
    shards: Vec<Mutex<Registry>>,
    seq: AtomicU64,
}

impl MetricsHub {
    /// A hub with `shards` independent shards (at least one).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        MetricsHub {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            seq: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Runs `f` under the lock of shard `shard % self.shards()`.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the shard lock panicked.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&mut Registry) -> R) -> R {
        let mut guard = self.shards[shard % self.shards.len()]
            .lock()
            .expect("metrics shard poisoned");
        f(&mut guard)
    }

    /// Merges a locally-accumulated registry into shard
    /// `shard % self.shards()` in a single lock acquisition.
    pub fn absorb(&self, shard: usize, local: &Registry) {
        if !local.is_empty() {
            self.with_shard(shard, |reg| reg.merge(local));
        }
    }

    /// Sets the next snapshot sequence number (used when resuming a sweep
    /// whose earlier snapshots are already on disk).
    pub fn set_seq(&self, next: u64) {
        self.seq.store(next, Ordering::SeqCst);
    }

    /// Merges every shard (in index order) into a point-in-time snapshot
    /// and advances the sequence number.
    ///
    /// Because counter/gauge/histogram merges are associative and
    /// commutative and the result maps are ordered, the snapshot is
    /// byte-identical for any shard count and any partition of the same
    /// events across shards.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged = Registry::new();
        for shard in &self.shards {
            merged.merge(&shard.lock().expect("metrics shard poisoned"));
        }
        MetricsSnapshot {
            seq: self.seq.fetch_add(1, Ordering::SeqCst),
            registry: merged,
        }
    }
}

/// A point-in-time merge of every hub shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Snapshot sequence number within the producing process (resumed
    /// sweeps continue where the on-disk stream left off).
    pub seq: u64,
    /// The merged metrics.
    pub registry: Registry,
}

impl MetricsSnapshot {
    /// This snapshot as a JSON value (`kind: "snapshot"`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let scalar_obj = |map: &BTreeMap<String, u64>| {
            Json::Obj(
                map.iter()
                    .map(|(name, &v)| (name.clone(), Json::UInt(v)))
                    .collect(),
            )
        };
        Json::obj(vec![
            ("schema_version".into(), SCHEMA_VERSION.into()),
            ("kind".into(), "snapshot".into()),
            ("seq".into(), self.seq.into()),
            ("counters".into(), scalar_obj(self.registry.counters())),
            ("gauges".into(), scalar_obj(self.registry.gauges())),
            (
                "histograms".into(),
                Json::Obj(
                    self.registry
                        .histograms()
                        .iter()
                        .map(|(name, h)| (name.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// One JSONL line for this snapshot.
    #[must_use]
    pub fn to_jsonl_line(&self) -> String {
        self.to_json().render()
    }

    /// Parses a snapshot back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field, or a
    /// schema-version mismatch.
    pub fn from_json(value: &Json) -> Result<MetricsSnapshot, String> {
        let version = value
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("snapshot missing 'schema_version'")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} != supported {SCHEMA_VERSION}"
            ));
        }
        if value.get("kind").and_then(Json::as_str) != Some("snapshot") {
            return Err("record kind is not 'snapshot'".to_string());
        }
        let scalar_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            value
                .get(key)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("snapshot missing '{key}' object"))?
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|v| (name.clone(), v))
                        .ok_or_else(|| format!("'{key}.{name}' is not a u64"))
                })
                .collect()
        };
        let mut registry = Registry {
            counters: scalar_map("counters")?,
            gauges: scalar_map("gauges")?,
            histograms: BTreeMap::new(),
        };
        for (name, h) in value
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or("snapshot missing 'histograms' object")?
        {
            registry
                .histograms
                .insert(name.clone(), PowHistogram::from_json(h)?);
        }
        Ok(MetricsSnapshot {
            seq: value
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or("snapshot missing 'seq'")?,
            registry,
        })
    }

    /// Renders the snapshot as Prometheus-style text exposition.
    ///
    /// Counters and gauges become single sample lines; histograms expand
    /// to cumulative `_bucket{le="…"}` lines plus `_sum` and `_count`.
    /// Label sets embedded in metric names pass through verbatim. The
    /// output is deterministic: one `# TYPE` comment per metric family,
    /// families in name order.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = family.to_string();
            }
        };
        for (name, &v) in self.registry.counters() {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, &v) in self.registry.gauges() {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in self.registry.histograms() {
            type_line(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (&bucket, &count) in h.buckets() {
                cumulative += count;
                let le = (bucket + 1) << h.shift();
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

/// An [`EventSink`] that tallies engine activity for the hub.
///
/// All accumulation happens in plain local fields — no locks, no
/// allocation on the per-event path beyond the per-channel vector's
/// one-time growth — and nothing is shared until [`flush_into`] /
/// [`flush_to`] runs after the engine stops. Composable with any other
/// sink through the `(A, B)` pair impl.
///
/// [`flush_into`]: TelemetrySink::flush_into
/// [`flush_to`]: TelemetrySink::flush_to
#[derive(Debug, Default)]
pub struct TelemetrySink {
    rounds: u64,
    transmissions: u64,
    listens: u64,
    solved: u64,
    retired_terminated: u64,
    retired_crashed: u64,
    round_acts: u64,
    acts_per_round: PowHistogram,
    /// `[silences, messages, collisions]` per channel, index = channel − 1.
    channels: Vec<[u64; 3]>,
}

impl TelemetrySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        TelemetrySink::default()
    }

    /// Rounds observed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Transmissions observed so far.
    #[must_use]
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Listen actions observed so far.
    #[must_use]
    pub fn listens(&self) -> u64 {
        self.listens
    }

    /// Retirements observed so far, `(terminated, crashed)`.
    #[must_use]
    pub fn retirements(&self) -> (u64, u64) {
        (self.retired_terminated, self.retired_crashed)
    }

    /// Adds this run's tallies to `reg` under the `engine_*` metric
    /// family and resets the sink for reuse.
    pub fn flush_into(&mut self, reg: &mut Registry) {
        reg.count("engine_runs_total", 1);
        reg.count("engine_rounds_total", self.rounds);
        reg.count("engine_transmissions_total", self.transmissions);
        reg.count("engine_listens_total", self.listens);
        reg.count("engine_solved_total", self.solved);
        reg.count(
            "engine_retired_total{state=\"terminated\"}",
            self.retired_terminated,
        );
        reg.count(
            "engine_retired_total{state=\"crashed\"}",
            self.retired_crashed,
        );
        for (idx, &[silences, messages, collisions]) in self.channels.iter().enumerate() {
            let ch = idx + 1;
            reg.count(
                format!("engine_channel_outcomes_total{{channel=\"{ch}\",kind=\"silence\"}}"),
                silences,
            );
            reg.count(
                format!("engine_channel_outcomes_total{{channel=\"{ch}\",kind=\"message\"}}"),
                messages,
            );
            reg.count(
                format!("engine_channel_outcomes_total{{channel=\"{ch}\",kind=\"collision\"}}"),
                collisions,
            );
        }
        if self.acts_per_round.count() > 0 {
            reg.histograms
                .entry("engine_round_acts".to_string())
                .or_default()
                .merge(&self.acts_per_round);
        }
        *self = TelemetrySink::default();
    }

    /// Flushes into hub shard `shard` in one lock acquisition.
    pub fn flush_to(&mut self, hub: &MetricsHub, shard: usize) {
        let mut local = Registry::new();
        self.flush_into(&mut local);
        hub.absorb(shard, &local);
    }
}

impl EventSink for TelemetrySink {
    fn on_transmission(
        &mut self,
        _round: u64,
        _node: NodeId,
        _channel: ChannelId,
        _phase: &'static str,
    ) {
        self.transmissions += 1;
        self.round_acts += 1;
    }

    fn on_listen(&mut self, _round: u64, _node: NodeId, _channel: ChannelId, _phase: &'static str) {
        self.listens += 1;
        self.round_acts += 1;
    }

    fn on_solved(&mut self, _round: u64, _solver: NodeId) {
        self.solved += 1;
    }

    fn on_round(&mut self, _round: u64, _phase: &'static str, outcomes: &[ChannelOutcome]) {
        self.rounds += 1;
        self.acts_per_round.record(self.round_acts);
        self.round_acts = 0;
        for outcome in outcomes {
            let idx = outcome.channel.get().saturating_sub(1) as usize;
            if self.channels.len() <= idx {
                self.channels.resize(idx + 1, [0; 3]);
            }
            let slot = match outcome.kind {
                OutcomeKind::Silence => 0,
                OutcomeKind::Message => 1,
                OutcomeKind::Collision => 2,
            };
            self.channels[idx][slot] += 1;
        }
    }

    fn on_retired(&mut self, _round: u64, _node: NodeId, state: SlotState) {
        if state == SlotState::Crashed {
            self.retired_crashed += 1;
        } else {
            self.retired_terminated += 1;
        }
    }

    fn wants_outcomes(&self) -> bool {
        true
    }

    fn wants_node_phases(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random-ish sample stream (no RNG: telemetry
    /// tests must not disturb seed accounting anywhere).
    fn samples() -> Vec<u64> {
        (0..4000u64)
            .map(|i| (i * i * 2_654_435_761) >> 17)
            .collect()
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = PowHistogram::new();
        for v in [4u64, 9, 1, 16, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 39);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 16);
        let total: u64 = h.buckets().values().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn histogram_coarsens_at_cap() {
        let mut h = PowHistogram::new();
        for v in 0..(TELEMETRY_BUCKET_CAP as u64 * 4) {
            h.record(v);
        }
        assert!(h.buckets().len() <= TELEMETRY_BUCKET_CAP);
        assert!(h.shift() >= 1);
        let total: u64 = h.buckets().values().sum();
        assert_eq!(total, TELEMETRY_BUCKET_CAP as u64 * 4);
    }

    #[test]
    fn histogram_merge_is_partition_invariant() {
        let all = samples();
        let mut whole = PowHistogram::new();
        for &v in &all {
            whole.record(v);
        }
        for parts in [2usize, 3, 7] {
            let mut shards = vec![PowHistogram::new(); parts];
            for (i, &v) in all.iter().enumerate() {
                shards[i % parts].record(v);
            }
            let mut merged = PowHistogram::new();
            for shard in &shards {
                merged.merge(shard);
            }
            assert_eq!(merged, whole, "partition into {parts} shards diverged");
        }
    }

    #[test]
    fn snapshot_is_byte_identical_for_every_worker_count() {
        // The acceptance criterion, verbatim: the same event stream
        // partitioned over k shards must merge to the same bytes for
        // every k.
        let reference = hub_snapshot_bytes(1);
        for k in [2usize, 3, 4, 8] {
            assert_eq!(
                hub_snapshot_bytes(k),
                reference,
                "snapshot from {k} shards is not byte-identical"
            );
        }
    }

    fn hub_snapshot_bytes(k: usize) -> (String, String) {
        let hub = MetricsHub::new(k);
        for (i, &v) in samples().iter().enumerate() {
            let mut local = Registry::new();
            local.count("campaign_trials_done_total", 1);
            local.count(
                format!("fault_injections_total{{kind=\"k{}\"}}", i % 3),
                v % 5,
            );
            local.gauge_max("campaign_queue_depth", v % 97);
            local.observe("campaign_shard_wall_ns", v);
            hub.absorb(i % k, &local);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.seq, 0);
        (snap.to_jsonl_line(), snap.render_prometheus())
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let hub = MetricsHub::new(2);
        hub.with_shard(0, |reg| {
            reg.count("engine_rounds_total", 41);
            reg.gauge_max("campaign_workers", 4);
            reg.observe("engine_round_acts", 17);
            reg.observe("engine_round_acts", 3);
        });
        hub.with_shard(1, |reg| reg.count("engine_rounds_total", 1));
        let snap = hub.snapshot();
        let line = snap.to_jsonl_line();
        assert!(line.contains("\"kind\":\"snapshot\""));
        assert!(line.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
        let parsed = MetricsSnapshot::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.registry.counter("engine_rounds_total"), 42);
    }

    #[test]
    fn snapshot_seq_advances_and_can_resume() {
        let hub = MetricsHub::new(1);
        assert_eq!(hub.snapshot().seq, 0);
        assert_eq!(hub.snapshot().seq, 1);
        hub.set_seq(10);
        assert_eq!(hub.snapshot().seq, 10);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let hub = MetricsHub::new(1);
        hub.with_shard(0, |reg| {
            reg.count("engine_rounds_total", 7);
            reg.count("fault_injections_total{kind=\"flip\"}", 2);
            reg.count("fault_injections_total{kind=\"jam\"}", 1);
            reg.gauge_max("campaign_workers", 3);
            reg.observe("campaign_shard_wall_ns", 1000);
            reg.observe("campaign_shard_wall_ns", 3000);
        });
        let text = hub.snapshot().render_prometheus();
        // One TYPE line per family even with multiple label sets.
        assert_eq!(text.matches("# TYPE fault_injections_total").count(), 1);
        assert!(text.contains("# TYPE campaign_workers gauge"));
        assert!(text.contains("# TYPE campaign_shard_wall_ns histogram"));
        assert!(text.contains("campaign_shard_wall_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("campaign_shard_wall_ns_sum 4000"));
        assert!(text.contains("campaign_shard_wall_ns_count 2"));
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
        }
    }

    #[test]
    fn telemetry_sink_tallies_and_flushes() {
        use crate::action::{Action, Feedback};
        use crate::config::{SimConfig, StopWhen};
        use crate::engine::Engine;
        use crate::protocol::{Protocol, RoundContext, Status};
        use rand::rngs::SmallRng;

        struct Chirp {
            left: u32,
        }
        impl Protocol for Chirp {
            type Msg = u8;
            fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u8> {
                self.left -= 1;
                Action::transmit(ChannelId::PRIMARY, 0)
            }
            fn observe(&mut self, _: &RoundContext, _: Feedback<u8>, _: &mut SmallRng) {}
            fn status(&self) -> Status {
                if self.left == 0 {
                    Status::Inactive
                } else {
                    Status::Active
                }
            }
        }

        let cfg = SimConfig::new(2)
            .seed(5)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100);
        let mut engine = Engine::new(cfg);
        engine.add_node(Chirp { left: 3 });
        let mut sink = TelemetrySink::new();
        let report = engine.run_observed(&mut sink).unwrap();
        assert_eq!(sink.rounds(), report.rounds_executed);
        assert_eq!(sink.transmissions(), report.metrics.transmissions);
        assert_eq!(sink.retirements(), (1, 0));

        let hub = MetricsHub::new(1);
        sink.flush_to(&hub, 0);
        let snap = hub.snapshot();
        assert_eq!(snap.registry.counter("engine_runs_total"), 1);
        assert_eq!(snap.registry.counter("engine_rounds_total"), 3);
        assert_eq!(
            snap.registry
                .counter("engine_retired_total{state=\"terminated\"}"),
            1
        );
        assert_eq!(
            snap.registry
                .counter("engine_channel_outcomes_total{channel=\"1\",kind=\"message\"}"),
            3
        );
        // The sink reset on flush.
        assert_eq!(sink.rounds(), 0);
    }
}
