//! A minimal, dependency-free JSON value type with a renderer and parser.
//!
//! The observability layer ([`crate::obs`]) serializes run records as
//! JSONL, and the `obsdiff` tool parses them back. The offline/vendored
//! build must stay registry-free, so this module hand-rolls the little
//! JSON that is needed instead of pulling in `serde`:
//!
//! * rendering is canonical enough to be diffable (object keys keep
//!   insertion order, integers render without a fractional part);
//! * parsing accepts any standard JSON document (escapes, nested
//!   containers, exponent floats) and is tolerant of whitespace;
//! * `u64` values — seeds are full-width hashes — round-trip exactly,
//!   which a "parse everything as `f64`" shortcut would silently break.

use std::fmt;

/// A JSON value.
///
/// Numbers are split into three variants so that full-width integers (seed
/// hashes, round counts) round-trip without `f64` precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(String, Json)>) -> Json {
        Json::Obj(fields)
    }

    /// Looks up a key in an object; `None` for other variants or missing
    /// keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            #[allow(clippy::cast_precision_loss)]
            Json::UInt(v) => Some(*v as f64),
            #[allow(clippy::cast_precision_loss)]
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns `true` for `Json::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact JSON (no insignificant whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
                } else {
                    // JSON has no Inf/NaN; degrade to null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with a byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            #[allow(clippy::cast_sign_loss)]
            Json::UInt(v as u64)
        } else {
            Json::Int(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos
                            ))
                        }
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
        let code = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
    }

    #[test]
    fn renders_containers_in_order() {
        let v = Json::obj(vec![
            ("b".into(), Json::UInt(1)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[null,false]}"#);
    }

    #[test]
    fn parses_what_it_renders() {
        let v = Json::obj(vec![
            ("seed".into(), Json::UInt(u64::MAX)),
            ("neg".into(), Json::Int(-42)),
            ("pi".into(), Json::Float(3.25)),
            ("name".into(), Json::Str("phase \"reduce\"\n".into())),
            (
                "spans".into(),
                Json::Arr(vec![Json::obj(vec![("rounds".into(), Json::UInt(7))])]),
            ),
            ("none".into(), Json::Null),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn full_width_u64_roundtrips_exactly() {
        let line = format!("{{\"seed\":{}}}", u64::MAX);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn parses_whitespace_and_floats() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , -3 ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_f64(), Some(-3.0));
    }

    #[test]
    fn parses_escapes() {
        let v = Json::parse(r#""aA\né😀""#.trim()).unwrap_or(Json::Null);
        // The bare string is not a valid *document* start for objects only;
        // scalars are valid JSON documents.
        assert_eq!(v, Json::Str("aA\né😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![("x".into(), Json::Bool(true))]);
        assert_eq!(v.get("x").and_then(Json::as_bool), Some(true));
        assert!(v.get("y").is_none());
        assert!(Json::Null.is_null());
        assert_eq!(v.as_obj().unwrap().len(), 1);
        assert_eq!(Json::from(Some(3u64)).as_u64(), Some(3));
        assert!(Json::from(None::<u64>).is_null());
    }
}
