//! The structured run-record layer: span-model telemetry with stable JSONL
//! serialization.
//!
//! Markdown reports are for human eyes; this module is for machines. A
//! [`RunRecorder`] attaches to any run via [`crate::Engine::run_observed`]
//! and assembles the event stream into a *span tree*:
//!
//! ```text
//! run (seed, wall clock, totals)
//! ├── phase span "reduce"        rounds 0..=117   tx=511  rx=203  wall=…
//! ├── phase span "id-rename"     rounds 118..=141 tx=64   rx=80   wall=…
//! └── per-channel tallies        silences / messages / collisions
//! ```
//!
//! A span opens when a phase label first produces activity and closes when
//! a round goes by without any. Under staggered wake-ups (§3 transform)
//! different nodes are legitimately in different phases at once, so spans
//! may **overlap** in time — each span still counts exactly the
//! transmissions and listens its own phase produced, which is what fixes
//! the single-representative blind spot of
//! [`crate::PhaseBreakdown`] (see
//! [`RunRecord::phase_node_rounds`]).
//!
//! The serialized form is versioned JSONL (see [`SCHEMA_VERSION`]): one
//! [`RunRecord`] per trial plus one [`RunManifest`] per batch capturing
//! full provenance. Serialization is hand-rolled ([`Json`]) so the
//! offline/vendored build stays registry-free.
//!
//! Recording is observer-effect free by construction: the recorder only
//! reads the event stream, never touches a node's RNG, and the engine's
//! behavior with a sink attached is pinned bit-identical by the
//! `observer_effect` test suite.

mod json;
pub mod telemetry;

pub use json::Json;
pub use telemetry::{MetricsHub, MetricsSnapshot, PowHistogram, Registry, TelemetrySink};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::channel::{ChannelId, ChannelOutcome, OutcomeKind};
use crate::config::SimConfig;
use crate::engine::NodeId;
use crate::sink::EventSink;

/// Version stamped into every record this layer writes. Bump when a field
/// changes meaning; `obsdiff` refuses to compare across versions.
///
/// History: v1 introduced `manifest`/`trial` (and the harness-side
/// `cell`/`bench`/`quarantine`) records; v2 adds the `kind: "snapshot"`
/// metrics record ([`telemetry::MetricsSnapshot`]) with no field changes
/// to the existing kinds — v1 files re-validate after regeneration only
/// because the stamped version must match.
pub const SCHEMA_VERSION: u64 = 2;

/// One phase span of a recorded run: a maximal stretch of consecutive
/// rounds in which the phase produced at least one action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// The phase label (e.g. `"reduce"`, `"wakeup-listen"`).
    pub label: String,
    /// First round (0-based) of the span.
    pub start_round: u64,
    /// Last round of the span, inclusive.
    pub end_round: u64,
    /// Rounds in which this phase had at least one acting node.
    pub rounds: u64,
    /// Transmissions made by nodes in this phase during the span.
    pub transmissions: u64,
    /// Listen actions by nodes in this phase during the span.
    pub listens: u64,
    /// Wall-clock time the span was open, in nanoseconds.
    pub wall_ns: u64,
}

/// Per-channel outcome tallies over a whole run.
///
/// Only rounds in which the channel had at least one participant are
/// counted (an idle channel generates no outcome).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTally {
    /// 1-based channel number.
    pub channel: u32,
    /// Rounds with listeners but no transmitter.
    pub silences: u64,
    /// Rounds with exactly one transmitter.
    pub messages: u64,
    /// Rounds with two or more transmitters.
    pub collisions: u64,
    /// Total transmitter-slots over all rounds (the channel's TX energy).
    pub transmissions: u64,
    /// Total listener-slots over all rounds (the channel's RX energy).
    pub listens: u64,
}

/// The complete structured record of one run, ready for JSONL export.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The master seed the run executed under.
    pub seed: u64,
    /// Round of the lone primary-channel transmission, if the run solved.
    pub solved_round: Option<u64>,
    /// The solving node's id.
    pub solver: Option<u64>,
    /// Total rounds executed.
    pub rounds: u64,
    /// Total transmissions (TX energy).
    pub transmissions: u64,
    /// Total listen actions (RX energy).
    pub listens: u64,
    /// The maximum transmissions made by any single node.
    pub max_node_transmissions: u64,
    /// Wall-clock duration of the run in nanoseconds.
    pub wall_ns: u64,
    /// Phase spans in `(start_round, label)` order; overlapping under
    /// staggered wake-ups.
    pub spans: Vec<PhaseSpan>,
    /// Per-channel outcome tallies, sorted by channel.
    pub channels: Vec<ChannelTally>,
    /// Exact node-round accounting per phase label: each acting node
    /// contributes one count per round to *its own* phase. This is the
    /// breakdown that stays correct when nodes are in different phases
    /// simultaneously.
    pub phase_node_rounds: Vec<(String, u64)>,
    /// Transmissions per phase label, attributed per acting node.
    pub phase_transmissions: Vec<(String, u64)>,
}

impl RunRecord {
    /// Rounds in which `label` had at least one acting node, summed over
    /// its spans.
    #[must_use]
    pub fn phase_rounds(&self, label: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.rounds)
            .sum()
    }

    /// Exact node-rounds spent in `label` (see
    /// [`RunRecord::phase_node_rounds`]).
    #[must_use]
    pub fn node_rounds(&self, label: &str) -> u64 {
        self.phase_node_rounds
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, v)| *v)
    }

    /// Transmissions attributed to `label`.
    #[must_use]
    pub fn phase_tx(&self, label: &str) -> u64 {
        self.phase_transmissions
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, v)| *v)
    }

    /// This record as a JSON value (`kind: "trial"`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("label".into(), s.label.as_str().into()),
                    ("start_round".into(), s.start_round.into()),
                    ("end_round".into(), s.end_round.into()),
                    ("rounds".into(), s.rounds.into()),
                    ("transmissions".into(), s.transmissions.into()),
                    ("listens".into(), s.listens.into()),
                    ("wall_ns".into(), s.wall_ns.into()),
                ])
            })
            .collect();
        let channels = self
            .channels
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("channel".into(), t.channel.into()),
                    ("silences".into(), t.silences.into()),
                    ("messages".into(), t.messages.into()),
                    ("collisions".into(), t.collisions.into()),
                    ("transmissions".into(), t.transmissions.into()),
                    ("listens".into(), t.listens.into()),
                ])
            })
            .collect();
        let pairs = |entries: &[(String, u64)]| {
            Json::Obj(
                entries
                    .iter()
                    .map(|(label, v)| (label.clone(), Json::UInt(*v)))
                    .collect(),
            )
        };
        Json::obj(vec![
            ("schema_version".into(), SCHEMA_VERSION.into()),
            ("kind".into(), "trial".into()),
            ("seed".into(), self.seed.into()),
            ("solved_round".into(), self.solved_round.into()),
            ("solver".into(), self.solver.into()),
            ("rounds".into(), self.rounds.into()),
            ("transmissions".into(), self.transmissions.into()),
            ("listens".into(), self.listens.into()),
            (
                "max_node_transmissions".into(),
                self.max_node_transmissions.into(),
            ),
            ("wall_ns".into(), self.wall_ns.into()),
            ("spans".into(), Json::Arr(spans)),
            ("channels".into(), Json::Arr(channels)),
            ("phase_node_rounds".into(), pairs(&self.phase_node_rounds)),
            (
                "phase_transmissions".into(),
                pairs(&self.phase_transmissions),
            ),
        ])
    }

    /// One JSONL line for this record.
    #[must_use]
    pub fn to_jsonl_line(&self) -> String {
        self.to_json().render()
    }

    /// Parses a record back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(value: &Json) -> Result<RunRecord, String> {
        let need = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("trial record missing '{key}'"))
        };
        let need_u64 = |key: &str| {
            need(key)?
                .as_u64()
                .ok_or_else(|| format!("trial field '{key}' is not a u64"))
        };
        let opt_u64 = |key: &str| need(key).map(Json::as_u64);
        if need_u64("schema_version")? != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {SCHEMA_VERSION}",
                need_u64("schema_version")?
            ));
        }
        let spans = need("spans")?
            .as_arr()
            .ok_or("'spans' is not an array")?
            .iter()
            .map(|s| {
                let f = |key: &str| {
                    s.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("span field '{key}' missing or mistyped"))
                };
                Ok(PhaseSpan {
                    label: s
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or("span missing 'label'")?
                        .to_string(),
                    start_round: f("start_round")?,
                    end_round: f("end_round")?,
                    rounds: f("rounds")?,
                    transmissions: f("transmissions")?,
                    listens: f("listens")?,
                    wall_ns: f("wall_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let channels = need("channels")?
            .as_arr()
            .ok_or("'channels' is not an array")?
            .iter()
            .map(|t| {
                let f = |key: &str| {
                    t.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("channel field '{key}' missing or mistyped"))
                };
                Ok(ChannelTally {
                    channel: u32::try_from(f("channel")?).map_err(|_| "channel overflows u32")?,
                    silences: f("silences")?,
                    messages: f("messages")?,
                    collisions: f("collisions")?,
                    transmissions: f("transmissions")?,
                    listens: f("listens")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let pairs = |key: &str| -> Result<Vec<(String, u64)>, String> {
            need(key)?
                .as_obj()
                .ok_or_else(|| format!("'{key}' is not an object"))?
                .iter()
                .map(|(label, v)| {
                    v.as_u64()
                        .map(|v| (label.clone(), v))
                        .ok_or_else(|| format!("'{key}.{label}' is not a u64"))
                })
                .collect()
        };
        Ok(RunRecord {
            seed: need_u64("seed")?,
            solved_round: opt_u64("solved_round")?,
            solver: opt_u64("solver")?,
            rounds: need_u64("rounds")?,
            transmissions: need_u64("transmissions")?,
            listens: need_u64("listens")?,
            max_node_transmissions: need_u64("max_node_transmissions")?,
            wall_ns: need_u64("wall_ns")?,
            spans,
            channels,
            phase_node_rounds: pairs("phase_node_rounds")?,
            phase_transmissions: pairs("phase_transmissions")?,
        })
    }

    /// Pretty-prints the span tree for terminal output.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let solved = match self.solved_round {
            Some(r) => format!("solved @ round {r}"),
            None => "unsolved".to_string(),
        };
        let _ = writeln!(
            out,
            "run seed={} {} rounds={} tx={} rx={} wall={:.3}ms",
            self.seed,
            solved,
            self.rounds,
            self.transmissions,
            self.listens,
            self.wall_ns as f64 / 1e6,
        );
        for (i, s) in self.spans.iter().enumerate() {
            let branch = if i + 1 == self.spans.len() {
                "└──"
            } else {
                "├──"
            };
            let _ = writeln!(
                out,
                "{branch} {:<16} rounds {:>5}..={:<5} ({:>5} active)  tx={:<6} rx={:<6} wall={:.3}ms",
                s.label,
                s.start_round,
                s.end_round,
                s.rounds,
                s.transmissions,
                s.listens,
                s.wall_ns as f64 / 1e6,
            );
        }
        for t in &self.channels {
            let _ = writeln!(
                out,
                "    ch {:>3}: {} silence / {} message / {} collision",
                t.channel, t.silences, t.messages, t.collisions
            );
        }
        out
    }
}

/// An in-flight phase span, before it closes.
#[derive(Debug)]
struct OpenSpan {
    span: PhaseSpan,
    last_round: u64,
    opened: Instant,
}

/// Per-round scratch: activity per phase label this round.
#[derive(Debug, Default)]
struct RoundActs {
    /// `(label, transmissions, listens)`; a handful of entries at most.
    by_label: Vec<(&'static str, u64, u64)>,
}

impl RoundActs {
    fn bump(&mut self, label: &'static str, tx: u64, rx: u64) {
        if let Some(entry) = self.by_label.iter_mut().find(|(l, _, _)| *l == label) {
            entry.1 += tx;
            entry.2 += rx;
        } else {
            self.by_label.push((label, tx, rx));
        }
    }
}

/// An [`EventSink`] that assembles a run into a [`RunRecord`].
///
/// Attach with [`crate::Engine::run_observed`], then call
/// [`RunRecorder::into_record`]:
///
/// ```
/// use mac_sim::obs::RunRecorder;
/// use mac_sim::{Action, ChannelId, Engine, Feedback, Protocol, RoundContext,
///               SimConfig, Status};
/// # struct Beacon;
/// # impl Protocol for Beacon {
/// #     type Msg = u8;
/// #     fn act(&mut self, _: &RoundContext, _: &mut rand::rngs::SmallRng) -> Action<u8> {
/// #         Action::transmit(ChannelId::PRIMARY, 0)
/// #     }
/// #     fn observe(&mut self, _: &RoundContext, _: Feedback<u8>, _: &mut rand::rngs::SmallRng) {}
/// #     fn status(&self) -> Status { Status::Active }
/// # }
/// # fn main() -> Result<(), mac_sim::SimError> {
/// let mut engine = Engine::new(SimConfig::new(4).seed(9));
/// engine.add_node(Beacon);
/// let mut recorder = RunRecorder::new();
/// let report = engine.run_observed(&mut recorder)?;
/// let record = recorder.into_record(9);
/// assert_eq!(record.transmissions, report.metrics.transmissions);
/// println!("{}", record.to_jsonl_line());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RunRecorder {
    started: Instant,
    round_acts: RoundActs,
    open: Vec<OpenSpan>,
    closed: Vec<PhaseSpan>,
    node_tx: Vec<u64>,
    channels: Vec<ChannelTally>,
    phase_node_rounds: BTreeMap<&'static str, u64>,
    phase_transmissions: BTreeMap<&'static str, u64>,
    transmissions: u64,
    listens: u64,
    rounds: u64,
    solved_round: Option<u64>,
    solver: Option<u64>,
    wall_ns: Option<u64>,
}

impl Default for RunRecorder {
    fn default() -> Self {
        RunRecorder::new()
    }
}

impl RunRecorder {
    /// Creates an empty recorder; the run's wall clock starts now.
    #[must_use]
    pub fn new() -> Self {
        RunRecorder {
            started: Instant::now(),
            round_acts: RoundActs::default(),
            open: Vec::new(),
            closed: Vec::new(),
            node_tx: Vec::new(),
            channels: Vec::new(),
            phase_node_rounds: BTreeMap::new(),
            phase_transmissions: BTreeMap::new(),
            transmissions: 0,
            listens: 0,
            rounds: 0,
            solved_round: None,
            solver: None,
            wall_ns: None,
        }
    }

    fn bump_node(&mut self, node: usize) {
        if self.node_tx.len() <= node {
            self.node_tx.resize(node + 1, 0);
        }
        self.node_tx[node] += 1;
    }

    fn channel_tally(&mut self, channel: u32) -> &mut ChannelTally {
        let idx = channel.saturating_sub(1) as usize;
        if self.channels.len() <= idx {
            self.channels.resize_with(idx + 1, ChannelTally::default);
            for (i, t) in self.channels.iter_mut().enumerate() {
                if t.channel == 0 {
                    t.channel = i as u32 + 1;
                }
            }
        }
        &mut self.channels[idx]
    }

    fn close_stale_spans(&mut self, round: u64) {
        let mut i = 0;
        while i < self.open.len() {
            if self.open[i].last_round < round {
                let done = self.open.swap_remove(i);
                let mut span = done.span;
                span.wall_ns = u64::try_from(done.opened.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.closed.push(span);
            } else {
                i += 1;
            }
        }
    }

    /// Finishes the run record for a run executed at `seed` (the recorder
    /// never sees the configuration, so the caller supplies it).
    ///
    /// Valid mid-run too: still-open spans are closed at the current wall
    /// clock.
    #[must_use]
    pub fn into_record(mut self, seed: u64) -> RunRecord {
        self.close_stale_spans(u64::MAX);
        let wall_ns = self.wall_ns.unwrap_or_else(|| {
            u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
        });
        let mut spans = self.closed;
        spans.sort_by(|a, b| (a.start_round, &a.label).cmp(&(b.start_round, &b.label)));
        // Channels that never carried activity keep all-zero tallies but
        // only exist up to the highest channel that did; drop trailing
        // zero-channel placeholders that were never initialized.
        let channels = self
            .channels
            .into_iter()
            .filter(|t| t.channel != 0)
            .collect();
        RunRecord {
            seed,
            solved_round: self.solved_round,
            solver: self.solver,
            rounds: self.rounds,
            transmissions: self.transmissions,
            listens: self.listens,
            max_node_transmissions: self.node_tx.iter().copied().max().unwrap_or(0),
            wall_ns,
            spans,
            channels,
            phase_node_rounds: self
                .phase_node_rounds
                .into_iter()
                .map(|(l, v)| (l.to_string(), v))
                .collect(),
            phase_transmissions: self
                .phase_transmissions
                .into_iter()
                .map(|(l, v)| (l.to_string(), v))
                .collect(),
        }
    }
}

impl EventSink for RunRecorder {
    fn on_transmission(
        &mut self,
        _round: u64,
        node: NodeId,
        _channel: ChannelId,
        phase: &'static str,
    ) {
        self.transmissions += 1;
        self.bump_node(node.0);
        self.round_acts.bump(phase, 1, 0);
        *self.phase_node_rounds.entry(phase).or_insert(0) += 1;
        *self.phase_transmissions.entry(phase).or_insert(0) += 1;
    }

    fn on_listen(&mut self, _round: u64, _node: NodeId, _channel: ChannelId, phase: &'static str) {
        self.listens += 1;
        self.round_acts.bump(phase, 0, 1);
        *self.phase_node_rounds.entry(phase).or_insert(0) += 1;
    }

    fn on_solved(&mut self, round: u64, solver: NodeId) {
        self.solved_round = Some(round);
        self.solver = Some(solver.0 as u64);
    }

    fn on_round(&mut self, round: u64, phase: &'static str, outcomes: &[ChannelOutcome]) {
        self.rounds += 1;
        // A round with no acting node at all (everyone asleep or
        // terminated) is attributed to the engine's representative label,
        // typically "idle".
        if self.round_acts.by_label.is_empty() {
            self.round_acts.by_label.push((phase, 0, 0));
        }
        let acts = std::mem::take(&mut self.round_acts.by_label);
        for &(label, tx, rx) in &acts {
            // `last_round + 1 == round` never matches in round 0, so the
            // very first round always opens fresh spans.
            match self
                .open
                .iter_mut()
                .find(|o| o.span.label == label && o.last_round + 1 == round)
            {
                Some(open) => {
                    open.span.end_round = round;
                    open.span.rounds += 1;
                    open.span.transmissions += tx;
                    open.span.listens += rx;
                    open.last_round = round;
                }
                None => {
                    self.open.push(OpenSpan {
                        span: PhaseSpan {
                            label: label.to_string(),
                            start_round: round,
                            end_round: round,
                            rounds: 1,
                            transmissions: tx,
                            listens: rx,
                            wall_ns: 0,
                        },
                        last_round: round,
                        opened: Instant::now(),
                    });
                }
            }
        }
        self.round_acts.by_label = acts;
        self.round_acts.by_label.clear();
        self.close_stale_spans(round);
        for outcome in outcomes {
            let tally = self.channel_tally(outcome.channel.get());
            match outcome.kind {
                OutcomeKind::Silence => tally.silences += 1,
                OutcomeKind::Message => tally.messages += 1,
                OutcomeKind::Collision => tally.collisions += 1,
            }
            tally.transmissions += outcome.transmitters as u64;
            tally.listens += outcome.listeners as u64;
        }
    }

    fn on_finished(&mut self, _rounds_executed: u64) {
        self.close_stale_spans(u64::MAX);
        self.wall_ns = Some(u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    fn wants_outcomes(&self) -> bool {
        true
    }

    fn wants_node_phases(&self) -> bool {
        true
    }
}

/// Full provenance of a recorded batch: everything needed to reproduce it.
///
/// Written as the first line of every JSONL record file (`kind:
/// "manifest"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Name of the algorithm or experiment that ran.
    pub algorithm: String,
    /// The master seed (for batches, the base seed of trial 0).
    pub master_seed: u64,
    /// Channel count `C`.
    pub channels: u32,
    /// The collision-detection mode, in `Debug` form.
    pub cd_mode: String,
    /// The stop condition, in `Debug` form.
    pub stop_when: String,
    /// The configured round cap.
    pub max_rounds: u64,
    /// The fault watchdog budget, if armed.
    pub round_budget: Option<u64>,
    /// The id-space size `n`, when meaningful.
    pub n: Option<u64>,
    /// The number of activated nodes `|A|`, when meaningful.
    pub active: Option<u64>,
    /// Human-readable descriptions of any fault layers in effect.
    pub fault_layers: Vec<String>,
    /// The git revision the binary was built from, when discoverable.
    pub git_rev: Option<String>,
    /// `(crate, version)` pairs of the involved crates.
    pub crates: Vec<(String, String)>,
    /// Free-form extra provenance (`scale`, experiment section, …).
    pub extra: Vec<(String, String)>,
}

impl RunManifest {
    /// Captures `config` under the given algorithm name. The `mac-sim`
    /// crate version is always included; add more with
    /// [`RunManifest::crate_version`].
    #[must_use]
    pub fn new(algorithm: impl Into<String>, config: &SimConfig) -> Self {
        RunManifest {
            algorithm: algorithm.into(),
            master_seed: config.master_seed,
            channels: config.channels,
            cd_mode: format!("{:?}", config.cd_mode),
            stop_when: format!("{:?}", config.stop_when),
            max_rounds: config.max_rounds,
            round_budget: config.round_budget,
            n: None,
            active: None,
            fault_layers: Vec::new(),
            git_rev: None,
            crates: vec![("mac-sim".to_string(), env!("CARGO_PKG_VERSION").to_string())],
            extra: Vec::new(),
        }
    }

    /// Sets the id-space size `n`.
    #[must_use]
    pub fn n(mut self, n: u64) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the activated-node count `|A|`.
    #[must_use]
    pub fn active(mut self, active: u64) -> Self {
        self.active = Some(active);
        self
    }

    /// Records a fault layer description.
    #[must_use]
    pub fn fault_layer(mut self, description: impl Into<String>) -> Self {
        self.fault_layers.push(description.into());
        self
    }

    /// Records the git revision.
    #[must_use]
    pub fn git_rev(mut self, rev: impl Into<String>) -> Self {
        self.git_rev = Some(rev.into());
        self
    }

    /// Records another crate's version, replacing any earlier entry for
    /// the same crate (so re-recording `mac-sim` cannot produce duplicate
    /// JSON keys).
    #[must_use]
    pub fn crate_version(mut self, name: impl Into<String>, version: impl Into<String>) -> Self {
        let (name, version) = (name.into(), version.into());
        match self.crates.iter_mut().find(|(n, _)| *n == name) {
            Some(entry) => entry.1 = version,
            None => self.crates.push((name, version)),
        }
        self
    }

    /// Attaches a free-form `(key, value)` provenance pair.
    #[must_use]
    pub fn extra(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra.push((key.into(), value.into()));
        self
    }

    /// This manifest as a JSON value (`kind: "manifest"`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version".into(), SCHEMA_VERSION.into()),
            ("kind".into(), "manifest".into()),
            ("algorithm".into(), self.algorithm.as_str().into()),
            ("master_seed".into(), self.master_seed.into()),
            ("channels".into(), self.channels.into()),
            ("cd_mode".into(), self.cd_mode.as_str().into()),
            ("stop_when".into(), self.stop_when.as_str().into()),
            ("max_rounds".into(), self.max_rounds.into()),
            ("round_budget".into(), self.round_budget.into()),
            ("n".into(), self.n.into()),
            ("active".into(), self.active.into()),
            (
                "fault_layers".into(),
                Json::Arr(
                    self.fault_layers
                        .iter()
                        .map(|s| s.as_str().into())
                        .collect(),
                ),
            ),
            ("git_rev".into(), self.git_rev.clone().into()),
            (
                "crates".into(),
                Json::Obj(
                    self.crates
                        .iter()
                        .map(|(name, version)| (name.clone(), version.as_str().into()))
                        .collect(),
                ),
            ),
            (
                "extra".into(),
                Json::Obj(
                    self.extra
                        .iter()
                        .map(|(key, value)| (key.clone(), value.as_str().into()))
                        .collect(),
                ),
            ),
        ])
    }

    /// One JSONL line for this manifest.
    #[must_use]
    pub fn to_jsonl_line(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Feedback};
    use crate::config::StopWhen;
    use crate::engine::Engine;
    use crate::protocol::{Protocol, RoundContext, Status};
    use rand::rngs::SmallRng;

    /// Transmits for `tx_rounds` rounds in phase "early", then listens for
    /// `rx_rounds` in phase "late", then retires.
    struct TwoPhase {
        acted: u64,
        tx_rounds: u64,
        rx_rounds: u64,
    }

    impl Protocol for TwoPhase {
        type Msg = u8;
        fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u8> {
            self.acted += 1;
            if self.acted <= self.tx_rounds {
                Action::transmit(ChannelId::new(2), 0)
            } else {
                Action::listen(ChannelId::PRIMARY)
            }
        }
        fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u8>, _rng: &mut SmallRng) {}
        fn status(&self) -> Status {
            if self.acted >= self.tx_rounds + self.rx_rounds {
                Status::Inactive
            } else {
                Status::Active
            }
        }
        fn phase(&self) -> &'static str {
            if self.acted < self.tx_rounds {
                "early"
            } else {
                "late"
            }
        }
    }

    fn recorded_run() -> RunRecord {
        let cfg = SimConfig::new(4)
            .seed(3)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100);
        let mut engine = Engine::new(cfg);
        engine.add_node(TwoPhase {
            acted: 0,
            tx_rounds: 3,
            rx_rounds: 2,
        });
        let mut recorder = RunRecorder::new();
        engine.run_observed(&mut recorder).unwrap();
        recorder.into_record(3)
    }

    #[test]
    fn recorder_builds_contiguous_spans() {
        let record = recorded_run();
        assert_eq!(record.rounds, 5);
        assert_eq!(record.transmissions, 3);
        assert_eq!(record.listens, 2);
        assert_eq!(record.max_node_transmissions, 3);
        // Per-node phase labels are read post-act, so the 3rd transmission
        // already reports "late" (acted == tx_rounds after the bump).
        assert_eq!(record.node_rounds("early"), 2);
        assert_eq!(record.node_rounds("late"), 3);
        assert_eq!(record.phase_tx("early"), 2);
        assert_eq!(record.phase_tx("late"), 1);
        let labels: Vec<&str> = record.spans.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["early", "late"]);
        assert_eq!(record.spans[0].start_round, 0);
        assert_eq!(record.spans[0].end_round, 1);
        assert_eq!(record.spans[1].start_round, 2);
        assert_eq!(record.spans[1].end_round, 4);
        assert_eq!(record.phase_rounds("late"), 3);
    }

    #[test]
    fn recorder_tallies_channels() {
        let record = recorded_run();
        // Channel 2 carried 3 lone transmissions; channel 1 heard 2
        // silent listens.
        let ch2 = record.channels.iter().find(|t| t.channel == 2).unwrap();
        assert_eq!(ch2.messages, 3);
        assert_eq!(ch2.transmissions, 3);
        let ch1 = record.channels.iter().find(|t| t.channel == 1).unwrap();
        assert_eq!(ch1.silences, 2);
        assert_eq!(ch1.listens, 2);
    }

    #[test]
    fn record_roundtrips_through_json() {
        let record = recorded_run();
        let line = record.to_jsonl_line();
        let parsed = RunRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, record);
        assert!(line.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")));
        assert!(line.contains("\"kind\":\"trial\""));
    }

    #[test]
    fn tree_rendering_mentions_every_span() {
        let record = recorded_run();
        let tree = record.render_tree();
        assert!(tree.contains("early"));
        assert!(tree.contains("late"));
        assert!(tree.contains("run seed=3"));
    }

    #[test]
    fn manifest_serializes_with_provenance() {
        let cfg = SimConfig::new(8).seed(42).round_budget(500);
        let manifest = RunManifest::new("full", &cfg)
            .n(1024)
            .active(40)
            .fault_layer("NoisyCd(p=0.01)")
            .git_rev("abc1234")
            .crate_version("contention", "0.1.0")
            .extra("scale", "quick");
        let line = manifest.to_jsonl_line();
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("manifest"));
        assert_eq!(v.get("master_seed").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("round_budget").and_then(Json::as_u64), Some(500));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(1024));
        assert_eq!(
            v.get("fault_layers")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("git_rev").and_then(Json::as_str), Some("abc1234"));
        assert!(v.get("crates").unwrap().get("mac-sim").is_some());
    }

    #[test]
    fn unsolved_record_serializes_nulls() {
        let cfg = SimConfig::new(2)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(10);
        let mut engine = Engine::new(cfg);
        engine.add_node(TwoPhase {
            acted: 0,
            tx_rounds: 0,
            rx_rounds: 1,
        });
        let mut recorder = RunRecorder::new();
        engine.run_observed(&mut recorder).unwrap();
        let record = recorder.into_record(0);
        assert_eq!(record.solved_round, None);
        let line = record.to_jsonl_line();
        assert!(line.contains("\"solved_round\":null"));
        let parsed = RunRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed.solved_round, None);
    }
}
