//! ASCII rendering of recorded traces: a channel × round activity chart.
//!
//! Useful for eyeballing an execution — which channels the algorithm
//! touches, where the collisions are, when the primary channel goes quiet:
//!
//! ```text
//! ch  1 |X..M.....S
//! ch  2 |.M...X....
//!        0123456789
//! ```
//!
//! `S` silence-with-listeners, `M` a delivered message, `X` a collision,
//! `.` an untouched channel.

use std::fmt::Write as _;

use crate::channel::{ChannelOutcome, OutcomeKind};
use crate::sink::EventSink;
use crate::trace::{RoundTrace, Trace};

/// Renders `trace` as an activity chart, showing only channels that carried
/// any activity and at most `max_rounds` columns (from the start).
///
/// Returns an empty string for an empty trace.
#[must_use]
pub fn activity_chart(trace: &Trace, max_rounds: usize) -> String {
    let rounds: Vec<_> = trace.rounds().iter().take(max_rounds).collect();
    if rounds.is_empty() {
        return String::new();
    }

    // Channels that appear at least once, sorted.
    let mut channels: Vec<u32> = rounds
        .iter()
        .flat_map(|rt| rt.outcomes.iter().map(|oc| oc.channel.get()))
        .collect();
    channels.sort_unstable();
    channels.dedup();

    let cols = rounds.len();
    let mut out = String::new();
    for &ch in &channels {
        let _ = write!(out, "ch{ch:>5} |");
        for rt in &rounds {
            let cell = rt
                .outcomes
                .iter()
                .find(|oc| oc.channel.get() == ch)
                .map_or('.', |oc| match oc.kind {
                    OutcomeKind::Silence => 'S',
                    OutcomeKind::Message => 'M',
                    OutcomeKind::Collision => 'X',
                });
            out.push(cell);
        }
        out.push('\n');
    }
    // Round ruler (mod 10).
    let _ = write!(out, "{:>8} ", "round");
    for (i, _) in rounds.iter().enumerate().take(cols) {
        let _ = write!(out, "{}", i % 10);
    }
    out.push('\n');
    out
}

/// Per-channel activity counts over a trace: `(channel, messages,
/// collisions, silences)`, sorted by channel. The utilization summary the
/// energy experiments report.
#[must_use]
pub fn channel_utilization(trace: &Trace) -> Vec<(u32, u64, u64, u64)> {
    let mut map: std::collections::BTreeMap<u32, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for rt in trace.rounds() {
        for oc in &rt.outcomes {
            let entry = map.entry(oc.channel.get()).or_insert((0, 0, 0));
            match oc.kind {
                OutcomeKind::Message => entry.0 += 1,
                OutcomeKind::Collision => entry.1 += 1,
                OutcomeKind::Silence => entry.2 += 1,
            }
        }
    }
    map.into_iter()
        .map(|(ch, (m, x, s))| (ch, m, x, s))
        .collect()
}

/// An [`EventSink`] that accumulates a [`Trace`] and renders it on demand —
/// live charting without enabling [`crate::TraceLevel::Channels`] in the
/// configuration:
///
/// ```
/// use mac_sim::render::ActivityRecorder;
/// use mac_sim::{Action, ChannelId, Engine, Feedback, Protocol, RoundContext,
///               SimConfig, Status};
/// use rand::rngs::SmallRng;
///
/// struct Beacon;
/// impl Protocol for Beacon {
///     type Msg = u8;
///     fn act(&mut self, _: &RoundContext, _: &mut SmallRng) -> Action<u8> {
///         Action::transmit(ChannelId::PRIMARY, 1)
///     }
///     fn observe(&mut self, _: &RoundContext, _: Feedback<u8>, _: &mut SmallRng) {}
///     fn status(&self) -> Status { Status::Active }
/// }
///
/// let mut engine = Engine::new(SimConfig::new(2));
/// engine.add_node(Beacon);
/// let mut recorder = ActivityRecorder::new();
/// engine.run_observed(&mut recorder)?;
/// assert!(recorder.chart(80).contains("ch    1 |M"));
/// # Ok::<(), mac_sim::SimError>(())
/// ```
#[derive(Debug, Default)]
pub struct ActivityRecorder {
    trace: Trace,
}

impl ActivityRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        ActivityRecorder::default()
    }

    /// The recorded trace so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Renders the recording via [`activity_chart`].
    #[must_use]
    pub fn chart(&self, max_rounds: usize) -> String {
        activity_chart(&self.trace, max_rounds)
    }

    /// Summarizes the recording via [`channel_utilization`].
    #[must_use]
    pub fn utilization(&self) -> Vec<(u32, u64, u64, u64)> {
        channel_utilization(&self.trace)
    }
}

impl EventSink for ActivityRecorder {
    fn on_round(&mut self, round: u64, phase: &'static str, outcomes: &[ChannelOutcome]) {
        self.trace.push(RoundTrace {
            round,
            outcomes: outcomes.to_vec(),
            phase,
        });
    }

    fn wants_outcomes(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(RoundTrace {
            round: 0,
            outcomes: vec![
                ChannelOutcome {
                    channel: ChannelId::new(1),
                    kind: OutcomeKind::Collision,
                    transmitters: 3,
                    listeners: 0,
                },
                ChannelOutcome {
                    channel: ChannelId::new(3),
                    kind: OutcomeKind::Message,
                    transmitters: 1,
                    listeners: 2,
                },
            ],
            phase: "p",
        });
        t.push(RoundTrace {
            round: 1,
            outcomes: vec![ChannelOutcome {
                channel: ChannelId::new(1),
                kind: OutcomeKind::Silence,
                transmitters: 0,
                listeners: 4,
            }],
            phase: "p",
        });
        t
    }

    #[test]
    fn chart_shows_only_active_channels() {
        let chart = activity_chart(&sample_trace(), 100);
        assert!(chart.contains("ch    1 |XS"));
        assert!(chart.contains("ch    3 |M."));
        assert!(!chart.contains("ch    2"));
        assert!(chart.contains("round 01"));
    }

    #[test]
    fn chart_truncates_to_max_rounds() {
        let chart = activity_chart(&sample_trace(), 1);
        assert!(chart.contains("ch    1 |X\n"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(activity_chart(&Trace::new(), 10), "");
    }

    #[test]
    fn utilization_counts() {
        let util = channel_utilization(&sample_trace());
        assert_eq!(util, vec![(1, 0, 1, 1), (3, 1, 0, 0)]);
    }

    #[test]
    fn recorder_matches_direct_trace() {
        let mut rec = ActivityRecorder::new();
        for rt in sample_trace().rounds() {
            rec.on_round(rt.round, rt.phase, &rt.outcomes);
        }
        assert!(rec.wants_outcomes());
        assert_eq!(rec.trace().len(), 2);
        assert_eq!(rec.chart(100), activity_chart(&sample_trace(), 100));
        assert_eq!(rec.utilization(), channel_utilization(&sample_trace()));
    }
}
