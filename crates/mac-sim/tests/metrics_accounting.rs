//! Precise accounting tests for the executor's metrics: per-phase TX
//! attribution, RX counting, and phase-round bookkeeping, all against
//! scripted executions with known ground truth.

use mac_sim::{
    Action, ChannelId, Engine, Feedback, Protocol, RoundContext, SimConfig, Status, StopWhen,
};
use rand::rngs::SmallRng;

/// Transmits for `tx_rounds` rounds in phase "alpha", then listens for
/// `rx_rounds` rounds in phase "beta", then stops.
struct TwoPhase {
    tx_rounds: u64,
    rx_rounds: u64,
    done_rounds: u64,
}

impl Protocol for TwoPhase {
    type Msg = u32;
    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        self.done_rounds += 1;
        if self.done_rounds <= self.tx_rounds {
            Action::transmit(ChannelId::new(2), 0)
        } else {
            Action::listen(ChannelId::new(3))
        }
    }
    fn observe(&mut self, _ctx: &RoundContext, _fb: Feedback<u32>, _rng: &mut SmallRng) {}
    fn status(&self) -> Status {
        if self.done_rounds >= self.tx_rounds + self.rx_rounds {
            Status::Inactive
        } else {
            Status::Active
        }
    }
    fn phase(&self) -> &'static str {
        if self.done_rounds < self.tx_rounds {
            "alpha"
        } else {
            "beta"
        }
    }
}

#[test]
fn per_phase_transmissions_are_attributed() {
    let cfg = SimConfig::new(4)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    exec.add_node(TwoPhase {
        tx_rounds: 3,
        rx_rounds: 2,
        done_rounds: 0,
    });
    let report = exec.run().expect("finishes");
    assert_eq!(report.metrics.transmissions, 3);
    assert_eq!(report.metrics.listens, 2);
    assert_eq!(report.metrics.transmissions_by_phase.get("alpha"), Some(&3));
    assert_eq!(report.metrics.transmissions_by_phase.get("beta"), None);
    assert_eq!(report.metrics.phases.rounds_in("alpha"), 3);
    assert_eq!(report.metrics.phases.rounds_in("beta"), 2);
    assert_eq!(report.metrics.phases.total(), report.rounds_executed);
}

#[test]
fn per_node_counts_sum_to_total() {
    let cfg = SimConfig::new(4)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    for i in 0..5u64 {
        exec.add_node(TwoPhase {
            tx_rounds: i,
            rx_rounds: 1,
            done_rounds: 0,
        });
    }
    let report = exec.run().expect("finishes");
    let total: u64 = report.metrics.transmissions_per_node.iter().sum();
    assert_eq!(total, report.metrics.transmissions);
    assert_eq!(report.metrics.transmissions, 10);
    assert_eq!(report.metrics.transmissions_per_node, vec![0, 1, 2, 3, 4]);
    assert_eq!(report.metrics.max_transmissions_per_node(), 4);
}

#[test]
fn late_wakers_do_not_consume_phase_rounds_before_waking() {
    let cfg = SimConfig::new(4)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    exec.add_node_at(
        TwoPhase {
            tx_rounds: 1,
            rx_rounds: 1,
            done_rounds: 0,
        },
        4,
    );
    let report = exec.run().expect("finishes");
    // Rounds 0..4 are idle (no awake active node), then alpha, beta.
    assert_eq!(report.metrics.phases.rounds_in("idle"), 4);
    assert_eq!(report.metrics.phases.rounds_in("alpha"), 1);
    assert_eq!(report.metrics.phases.rounds_in("beta"), 1);
    assert_eq!(report.rounds_executed, 6);
}

#[test]
fn mid_run_snapshot_metrics_are_prefixes() {
    let cfg = SimConfig::new(4)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    exec.add_node(TwoPhase {
        tx_rounds: 4,
        rx_rounds: 0,
        done_rounds: 0,
    });
    exec.step().expect("steps");
    exec.step().expect("steps");
    let snap = exec.report();
    assert_eq!(snap.metrics.transmissions, 2);
    let _ = exec.run().expect("finishes");
    assert_eq!(exec.report().metrics.transmissions, 4);
}
