//! Property suite pinning the traffic driver on the active-set scheduler
//! to the dense O(n) reference.
//!
//! [`mac_sim::run_traffic`] injects a continuous arrival stream into the
//! agenda-based [`mac_sim::Engine`]; [`mac_sim::run_traffic_dense`] runs
//! the *same* driver over the full-scan [`mac_sim::dense::DenseEngine`].
//! Over random arrival processes × collision-detection modes × fault
//! stacks × workload protocols, both must produce **bit-identical**
//! [`TrafficReport`]s — same delivery ledger, same latency histogram,
//! same backlog trajectory moments, same stop cause. Any divergence means
//! incremental agenda injection or continuous-delivery retirement changed
//! observable semantics relative to the dense reference, which is exactly
//! what this suite exists to catch.

use mac_sim::fault::{CrashStop, JamBudget, Layered, LossyChannel, NoisyCd};
use mac_sim::{
    run_traffic, run_traffic_dense, ArrivalProcess, BackoffMac, CdMode, FeedbackModel, SimConfig,
    SlottedAloha, TrafficReport, TrafficSpec,
};
use proptest::prelude::*;

/// The workload both drivers execute.
#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    channels: u32,
    process: ArrivalProcess,
    window: u64,
    horizon: Option<u64>,
    rearm: Option<u64>,
    protocol: ProtoChoice,
    cd_mode: CdMode,
    faults: FaultChoice,
}

#[derive(Debug, Clone, Copy)]
enum ProtoChoice {
    /// p-persistent ALOHA with `p = tenths / 10`.
    Aloha {
        tenths: u8,
    },
    Backoff {
        cw_max: u64,
    },
}

#[derive(Debug, Clone, Copy)]
enum FaultChoice {
    Clean,
    CrashRandom { f: usize, window: u64 },
    Assassin { kills: u64 },
    JamBudget { budget: u64 },
    Stacked,
}

fn config(w: &Workload) -> SimConfig {
    SimConfig::new(w.channels)
        .seed(w.seed)
        .cd_mode(w.cd_mode)
        .max_rounds(200_000)
        .round_budget(5_000)
}

fn spec(w: &Workload) -> TrafficSpec {
    let mut spec = TrafficSpec::new(w.process, w.window);
    spec.horizon = w.horizon;
    spec.rearm = w.rearm;
    spec
}

/// Runs the workload through either driver; both paths share this code so
/// only the engine under test differs.
fn run_workload(w: &Workload, dense: bool) -> Result<TrafficReport, String> {
    fn drive<F: FeedbackModel>(
        w: &Workload,
        feedback: F,
        dense: bool,
    ) -> Result<TrafficReport, String> {
        let out = match (w.protocol, dense) {
            (ProtoChoice::Aloha { tenths }, false) => {
                run_traffic(config(w), feedback, &spec(w), |pkt| {
                    SlottedAloha::new(f64::from(tenths) / 10.0, pkt)
                })
            }
            (ProtoChoice::Aloha { tenths }, true) => {
                run_traffic_dense(config(w), feedback, &spec(w), |pkt| {
                    SlottedAloha::new(f64::from(tenths) / 10.0, pkt)
                })
            }
            (ProtoChoice::Backoff { cw_max }, false) => {
                run_traffic(config(w), feedback, &spec(w), |pkt| {
                    BackoffMac::new(2, cw_max, pkt)
                })
            }
            (ProtoChoice::Backoff { cw_max }, true) => {
                run_traffic_dense(config(w), feedback, &spec(w), |pkt| {
                    BackoffMac::new(2, cw_max, pkt)
                })
            }
        };
        out.map_err(|e| format!("{e:?}"))
    }

    // Crash victims are drawn among the first 16 NodeIds — both drivers
    // assign ids in arrival order, so the victim set is the same packets.
    match w.faults {
        FaultChoice::Clean => drive(w, w.cd_mode, dense),
        FaultChoice::CrashRandom { f, window } => drive(
            w,
            Layered::new(CrashStop::random(f, 16, window), w.cd_mode),
            dense,
        ),
        FaultChoice::Assassin { kills } => drive(
            w,
            Layered::new(CrashStop::assassin(kills), w.cd_mode),
            dense,
        ),
        FaultChoice::JamBudget { budget } => drive(w, JamBudget::new(w.cd_mode, budget), dense),
        FaultChoice::Stacked => drive(
            w,
            Layered::new(
                NoisyCd::symmetric(0.05),
                Layered::new(
                    LossyChannel::new(0.05),
                    Layered::new(CrashStop::random(1, 16, 16), JamBudget::new(w.cd_mode, 1)),
                ),
            ),
            dense,
        ),
    }
}

fn process_strategy() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (1u32..16).prop_map(|r| ArrivalProcess::Poisson {
            rate: f64::from(r) / 10.0,
        }),
        (1u32..20, 1u32..6, 1u32..6).prop_map(|(r, off, on)| ArrivalProcess::Bursty {
            burst_rate: f64::from(r) / 10.0,
            on_to_off: f64::from(off) / 10.0,
            off_to_on: f64::from(on) / 10.0,
        }),
        (1u64..12, 1u32..4).prop_map(|(period, batch)| ArrivalProcess::FixedRate { period, batch }),
        (
            0u64..24,
            1u32..8,
            prop_oneof![Just(None), (4u64..32).prop_map(Some)]
        )
            .prop_map(|(at, size, period)| ArrivalProcess::Batch { at, size, period }),
    ]
}

fn cd_mode_strategy() -> impl Strategy<Value = CdMode> {
    prop_oneof![
        Just(CdMode::Strong),
        Just(CdMode::ReceiverOnly),
        Just(CdMode::None),
    ]
}

fn proto_strategy() -> impl Strategy<Value = ProtoChoice> {
    prop_oneof![
        (1u8..6).prop_map(|tenths| ProtoChoice::Aloha { tenths }),
        (8u64..128).prop_map(|cw_max| ProtoChoice::Backoff { cw_max }),
    ]
}

fn fault_strategy() -> impl Strategy<Value = FaultChoice> {
    prop_oneof![
        Just(FaultChoice::Clean),
        (1usize..3, 1u64..32).prop_map(|(f, window)| FaultChoice::CrashRandom { f, window }),
        (1u64..3).prop_map(|kills| FaultChoice::Assassin { kills }),
        (1u64..4).prop_map(|budget| FaultChoice::JamBudget { budget }),
        Just(FaultChoice::Stacked),
    ]
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        (any::<u64>(), 2u32..9, process_strategy(), 1u64..64),
        (
            prop_oneof![Just(None), (32u64..256).prop_map(Some)],
            prop_oneof![Just(None), (1u64..8).prop_map(Some)],
            proto_strategy(),
            cd_mode_strategy(),
            fault_strategy(),
        ),
    )
        .prop_map(
            |((seed, channels, process, window), (horizon, rearm, protocol, cd_mode, faults))| {
                Workload {
                    seed,
                    channels,
                    process,
                    window,
                    horizon,
                    rearm,
                    protocol,
                    cd_mode,
                    faults,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: for any traffic workload, the active-set
    /// driver and the dense reference produce bit-identical reports.
    #[test]
    fn traffic_matches_dense_reference(w in workload_strategy()) {
        let active = run_workload(&w, false);
        let dense = run_workload(&w, true);
        prop_assert_eq!(active, dense);
    }
}

/// Deterministic spot-checks of corners the random strategy can miss:
/// a long idle gap between batches (stop-latch re-arming), an overload
/// that only the budget stops, a crash schedule racing the drain, and a
/// closed-loop rearm workload.
#[test]
fn corner_cases_match_dense_reference() {
    let base = Workload {
        seed: 11,
        channels: 4,
        process: ArrivalProcess::Batch {
            at: 0,
            size: 1,
            period: Some(300),
        },
        window: 301,
        horizon: None,
        rearm: None,
        protocol: ProtoChoice::Backoff { cw_max: 32 },
        cd_mode: CdMode::Strong,
        faults: FaultChoice::Clean,
    };
    // Idle gap: batch at 0, batch at 300 — the driver idles across the gap.
    assert_eq!(run_workload(&base, false), run_workload(&base, true));

    // Overload with zero deliveries possible: two steady arrivals per
    // round at ALOHA p near 1 jam forever; only the budget stops it.
    let mut jammed = base.clone();
    jammed.process = ArrivalProcess::FixedRate {
        period: 1,
        batch: 2,
    };
    jammed.window = 6_000;
    jammed.protocol = ProtoChoice::Aloha { tenths: 9 };
    let report = run_workload(&jammed, false);
    assert_eq!(report, run_workload(&jammed, true));
    assert_eq!(
        report.unwrap().stop,
        mac_sim::StopCause::BudgetExhausted,
        "overload past the budget must stop cleanly"
    );

    // Crash schedule overlapping the drain tail.
    let mut crashed = base.clone();
    crashed.process = ArrivalProcess::Batch {
        at: 0,
        size: 6,
        period: None,
    };
    crashed.window = 1;
    crashed.faults = FaultChoice::CrashRandom { f: 2, window: 8 };
    assert_eq!(run_workload(&crashed, false), run_workload(&crashed, true));

    // Closed loop: every delivery inside the window re-arms a packet.
    let mut saturated = base;
    saturated.process = ArrivalProcess::Batch {
        at: 0,
        size: 3,
        period: None,
    };
    saturated.window = 200;
    saturated.horizon = Some(200);
    saturated.rearm = Some(2);
    assert_eq!(
        run_workload(&saturated, false),
        run_workload(&saturated, true)
    );
}
