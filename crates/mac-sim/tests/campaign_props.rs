//! Property-based tests for the campaign scheduler's aggregation contract.
//!
//! Two layers of invariance are claimed by `mac_sim::campaign`:
//!
//! 1. `Aggregate::merge` over the monoid-like impls (counters, `Collect`,
//!    element-wise vectors, tuples of those) is associative, so *any*
//!    contiguous shard decomposition merged in *any* grouping reproduces
//!    the sequential fold.
//! 2. The `Campaign` pool itself delivers bit-identical output for every
//!    worker count and shard size, because shards are merged in seed order.

use mac_sim::campaign::{Aggregate, Campaign, Cell, Collect, SeedStream};
use proptest::collection::vec;
use proptest::prelude::*;

/// The aggregate under test: a counter, an order-preserving collector, and
/// an element-wise histogram vector — one of each merge flavor.
type Agg = (u64, Collect<u64>, Vec<u64>);

fn make_agg() -> Agg {
    (0, Collect::default(), vec![0; 4])
}

fn fold_sample(acc: &mut Agg, x: u64) {
    acc.0 += x;
    acc.1 .0.push(x);
    acc.2[(x % 4) as usize] += 1;
}

/// Folds one contiguous shard sequentially.
fn shard_agg(samples: &[u64]) -> Agg {
    let mut acc = make_agg();
    for &x in samples {
        fold_sample(&mut acc, x);
    }
    acc
}

/// Splits `samples` at the (normalized, deduped) cut points.
fn shards<'a>(samples: &'a [u64], cuts: &[usize]) -> Vec<&'a [u64]> {
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (samples.len() + 1)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut out = Vec::new();
    let mut prev = 0;
    for c in cuts {
        out.push(&samples[prev..c]);
        prev = c;
    }
    out.push(&samples[prev..]);
    out
}

proptest! {
    /// Any shard decomposition, merged left-to-right or right-to-left,
    /// equals the sequential fold — `merge` is associative for the
    /// counter / collector / element-wise impls.
    #[test]
    fn aggregate_merge_is_shard_invariant(
        samples in vec(0u64..1_000_000, 0..120),
        cuts in vec(0usize..120, 0..8),
        fold_right in any::<bool>(),
    ) {
        let expect = shard_agg(&samples);
        let parts: Vec<Agg> = shards(&samples, &cuts).iter().map(|s| shard_agg(s)).collect();
        let merged = if fold_right {
            let mut acc = make_agg();
            for part in parts.into_iter().rev() {
                let mut next = part;
                next.merge(std::mem::replace(&mut acc, make_agg()));
                acc = next;
            }
            acc
        } else {
            let mut acc = make_agg();
            for part in parts {
                acc.merge(part);
            }
            acc
        };
        prop_assert_eq!(merged, expect);
    }
}

proptest! {
    // Each case spins up a real worker pool, so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Campaign output is bit-identical for every worker count and shard
    /// size: shards merge in seed order, never in completion order.
    #[test]
    fn campaign_output_is_schedule_invariant(
        cells in vec((0usize..24, 0u64..1_000), 1..4),
        workers in 1usize..5,
        shard_size in 1usize..9,
    ) {
        // Sequential reference, one fold per cell in push order.
        let expect: Vec<Agg> = cells
            .iter()
            .map(|&(trials, base)| {
                let stream = SeedStream::Derived(base);
                let samples: Vec<u64> =
                    (0..trials as u64).map(|i| stream.seed(i) % 997).collect();
                shard_agg(&samples)
            })
            .collect();

        let mut campaign = Campaign::new().workers(workers).shard_size(shard_size);
        for &(trials, base) in &cells {
            campaign.push(Cell::new(
                trials,
                SeedStream::Derived(base),
                make_agg,
                |seed, acc| fold_sample(acc, seed % 997),
            ));
        }
        prop_assert_eq!(campaign.run_collect(), expect);
    }
}
