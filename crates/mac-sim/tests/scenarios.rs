//! Simulator scenario tests: heterogeneous populations, adversarial
//! scheduling helpers, trace rendering, and feedback-model edge cases.

use mac_sim::adversary::{ActivationPattern, WakeSchedule};
use mac_sim::render::{activity_chart, channel_utilization};
use mac_sim::{
    Action, CdMode, ChannelId, Engine, Feedback, Protocol, RoundContext, SimConfig, Status,
    StopWhen, TraceLevel,
};
use rand::rngs::SmallRng;

/// A scriptable node: a fixed list of actions, then inactive.
struct Script {
    actions: Vec<Action<u32>>,
    cursor: usize,
    heard: Vec<Feedback<u32>>,
}

impl Script {
    fn new(actions: Vec<Action<u32>>) -> Self {
        Script {
            actions,
            cursor: 0,
            heard: Vec::new(),
        }
    }
}

impl Protocol for Script {
    type Msg = u32;
    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        let action = self
            .actions
            .get(self.cursor)
            .cloned()
            .unwrap_or(Action::Sleep);
        self.cursor += 1;
        action
    }
    fn observe(&mut self, _ctx: &RoundContext, fb: Feedback<u32>, _rng: &mut SmallRng) {
        self.heard.push(fb);
    }
    fn status(&self) -> Status {
        if self.cursor >= self.actions.len() {
            Status::Inactive
        } else {
            Status::Active
        }
    }
}

#[test]
fn scripted_rendezvous_and_miss() {
    // Two nodes meet on channel 2 in round 0, miss each other in round 1.
    let cfg = SimConfig::new(4)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10);
    let mut exec = Engine::new(cfg);
    let a = exec.add_node(Script::new(vec![
        Action::transmit(ChannelId::new(2), 7),
        Action::transmit(ChannelId::new(3), 8),
    ]));
    let b = exec.add_node(Script::new(vec![
        Action::listen(ChannelId::new(2)),
        Action::listen(ChannelId::new(4)),
    ]));
    exec.run().expect("finishes");
    assert_eq!(exec.node(b).heard[0], Feedback::Message(7));
    assert_eq!(exec.node(b).heard[1], Feedback::Silence);
    assert_eq!(exec.node(a).heard[0], Feedback::Message(7)); // hears itself
    assert_eq!(exec.node(a).heard[1], Feedback::Message(8));
}

#[test]
fn message_payloads_are_delivered_verbatim() {
    let cfg = SimConfig::new(2)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![Action::transmit(
        ChannelId::new(2),
        u32::MAX,
    )]));
    let rx = exec.add_node(Script::new(vec![Action::listen(ChannelId::new(2))]));
    exec.run().expect("finishes");
    assert_eq!(exec.node(rx).heard[0], Feedback::Message(u32::MAX));
}

#[test]
fn three_transmitters_still_one_collision() {
    let cfg = SimConfig::new(2)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10);
    let mut exec = Engine::new(cfg);
    for payload in 0..3 {
        exec.add_node(Script::new(vec![Action::transmit(
            ChannelId::new(2),
            payload,
        )]));
    }
    let rx = exec.add_node(Script::new(vec![Action::listen(ChannelId::new(2))]));
    let report = exec.run().expect("finishes");
    assert_eq!(exec.node(rx).heard[0], Feedback::Collision);
    assert_eq!(report.metrics.transmissions, 3);
}

#[test]
fn solve_detection_ignores_listeners_on_primary() {
    // One transmitter + many listeners on channel 1 is still a solve.
    let cfg = SimConfig::new(2).max_rounds(10);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![Action::transmit(ChannelId::PRIMARY, 1)]));
    for _ in 0..5 {
        exec.add_node(Script::new(vec![Action::listen(ChannelId::PRIMARY)]));
    }
    let report = exec.run().expect("finishes");
    assert_eq!(report.solved_round, Some(0));
}

#[test]
fn sleepers_do_not_block_channel_resolution() {
    let cfg = SimConfig::new(2).max_rounds(10);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![
        Action::Sleep,
        Action::transmit(ChannelId::PRIMARY, 0),
    ]));
    let report = exec.run().expect("finishes");
    assert_eq!(report.solved_round, Some(1));
}

#[test]
fn wake_schedule_drives_executor() {
    let schedule = WakeSchedule::waves(6, 3, 5);
    let cfg = SimConfig::new(2)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    for off in schedule.iter() {
        exec.add_node_at(Script::new(vec![Action::listen(ChannelId::new(2))]), off);
    }
    let report = exec.run().expect("finishes");
    // Last wave wakes at round 10 and acts for one round.
    assert_eq!(report.rounds_executed, 11);
}

#[test]
fn activation_pattern_feeds_distinct_identities() {
    let ids = ActivationPattern::UniformSubset { k: 20, seed: 3 }.materialize(64);
    let set: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(set.len(), 20);
    let comb = ActivationPattern::Comb { k: 8, stride: 8 }.materialize(64);
    assert_eq!(comb, vec![0, 8, 16, 24, 32, 40, 48, 56]);
}

#[test]
fn trace_chart_reflects_execution() {
    let cfg = SimConfig::new(4)
        .stop_when(StopWhen::AllTerminated)
        .trace_level(TraceLevel::Channels)
        .max_rounds(10);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![
        Action::transmit(ChannelId::new(2), 1),
        Action::transmit(ChannelId::new(2), 1),
    ]));
    exec.add_node(Script::new(vec![
        Action::Sleep,
        Action::transmit(ChannelId::new(2), 2),
    ]));
    let report = exec.run().expect("finishes");
    let chart = activity_chart(&report.trace, 50);
    assert!(chart.contains("ch    2 |MX"), "chart was:\n{chart}");
    let util = channel_utilization(&report.trace);
    assert_eq!(util, vec![(2, 1, 1, 0)]);
}

#[test]
fn receiver_only_mode_blinds_exactly_the_transmitters() {
    let cfg = SimConfig::new(2)
        .cd_mode(CdMode::ReceiverOnly)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10);
    let mut exec = Engine::new(cfg);
    let tx = exec.add_node(Script::new(vec![Action::transmit(ChannelId::new(2), 1)]));
    let rx = exec.add_node(Script::new(vec![Action::listen(ChannelId::new(2))]));
    exec.run().expect("finishes");
    assert_eq!(exec.node(tx).heard[0], Feedback::TransmittedBlind);
    assert_eq!(exec.node(rx).heard[0], Feedback::Message(1));
}

#[test]
fn boxed_heterogeneous_population() {
    // Mixing protocol types through boxing: a beacon and a scripted ear.
    struct Beacon;
    impl Protocol for Beacon {
        type Msg = u32;
        fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
            Action::transmit(ChannelId::PRIMARY, 9)
        }
        fn observe(&mut self, _: &RoundContext, _: Feedback<u32>, _: &mut SmallRng) {}
        fn status(&self) -> Status {
            Status::Active
        }
    }
    let cfg = SimConfig::new(2).max_rounds(10);
    let mut exec: Engine<Box<dyn Protocol<Msg = u32>>> = Engine::new(cfg);
    exec.add_node(Box::new(Beacon));
    exec.add_node(Box::new(Script::new(vec![Action::listen(
        ChannelId::PRIMARY,
    )])));
    let report = exec.run().expect("finishes");
    assert_eq!(report.solved_round, Some(0));
}

#[test]
fn max_rounds_zero_times_out_immediately() {
    let cfg = SimConfig::new(2).max_rounds(0);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![Action::Sleep]));
    assert!(matches!(exec.run(), Err(mac_sim::SimError::Timeout { .. })));
}

#[test]
fn stepping_matches_run_exactly() {
    // Driving with step() produces identical results to run().
    let build = || {
        let cfg = SimConfig::new(4)
            .seed(6)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(100);
        let mut exec = Engine::new(cfg);
        exec.add_node(Script::new(vec![
            Action::transmit(ChannelId::new(2), 1),
            Action::transmit(ChannelId::PRIMARY, 2),
        ]));
        exec.add_node(Script::new(vec![
            Action::listen(ChannelId::new(2)),
            Action::listen(ChannelId::PRIMARY),
        ]));
        exec
    };
    let run_report = build().run().expect("runs");
    let mut stepped = build();
    let mut steps = 0;
    while stepped.step().expect("steps") == mac_sim::StepStatus::Running {
        steps += 1;
        assert!(steps < 100, "stepping never finished");
    }
    let step_report = stepped.report();
    assert_eq!(run_report.solved_round, step_report.solved_round);
    assert_eq!(run_report.rounds_executed, step_report.rounds_executed);
    assert_eq!(
        run_report.metrics.transmissions,
        step_report.metrics.transmissions
    );
    assert_eq!(run_report.leaders, step_report.leaders);
}

#[test]
fn step_is_idempotent_after_finish() {
    let cfg = SimConfig::new(2).max_rounds(100);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![Action::transmit(ChannelId::PRIMARY, 0)]));
    assert_eq!(exec.step().expect("steps"), mac_sim::StepStatus::Finished);
    let before = exec.current_round();
    assert_eq!(exec.step().expect("steps"), mac_sim::StepStatus::Finished);
    assert_eq!(
        exec.current_round(),
        before,
        "finished step must not advance"
    );
    assert!(exec.is_finished());
}

#[test]
fn mid_run_report_is_a_snapshot() {
    let cfg = SimConfig::new(2)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![
        Action::listen(ChannelId::new(2)),
        Action::transmit(ChannelId::PRIMARY, 0),
    ]));
    exec.step().expect("steps");
    let snap = exec.report();
    assert_eq!(snap.rounds_executed, 1);
    assert_eq!(snap.solved_round, None);
    assert_eq!(snap.active_remaining.len(), 1);
    exec.step().expect("steps");
    let done = exec.report();
    assert_eq!(done.rounds_executed, 2);
    assert_eq!(done.solved_round, Some(1));
}

#[test]
fn run_after_partial_stepping_continues() {
    let cfg = SimConfig::new(2)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100);
    let mut exec = Engine::new(cfg);
    exec.add_node(Script::new(vec![
        Action::listen(ChannelId::new(2)),
        Action::listen(ChannelId::new(2)),
        Action::transmit(ChannelId::PRIMARY, 0),
    ]));
    exec.step().expect("steps");
    let report = exec.run().expect("continues");
    assert_eq!(report.rounds_executed, 3);
    assert_eq!(report.solved_round, Some(2));
}
