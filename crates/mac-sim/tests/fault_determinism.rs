//! Determinism of the fault-injection layers.
//!
//! Every fault model draws from an RNG stream derived from the master seed
//! (disjoint from the per-node streams), so a faulted run is a pure
//! function of its `SimConfig`. These tests pin that down for each model:
//!
//! * **bit-identity** — running the same seeded configuration twice yields
//!   identical reports, round for round and metric for metric;
//! * **thread-count invariance** — fanning trials over 1 worker thread or
//!   several yields identical results, because each trial's engine (fault
//!   state included) is rebuilt from its own seed.

use mac_sim::fault::{CrashStop, JamBudget, Layered, LossyChannel, NoisyCd};
use mac_sim::trials::run_trials_with_threads;
use mac_sim::{
    Action, CdMode, ChannelId, Engine, Feedback, FeedbackModel, Metrics, NodeId, Protocol,
    RoundContext, RunReport, SimConfig, Status,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// Flips a coin each round: transmit on the primary channel or listen.
/// Terminates once it hears its own lone transmission come back. Uses its
/// per-node RNG every round, so any seeding drift shows up immediately.
struct Backoff {
    done: bool,
    transmitted: bool,
}

impl Backoff {
    fn new() -> Self {
        Backoff {
            done: false,
            transmitted: false,
        }
    }
}

impl Protocol for Backoff {
    type Msg = u64;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u64> {
        if rng.gen_bool(0.5) {
            self.transmitted = true;
            Action::transmit(ChannelId::PRIMARY, ctx.round)
        } else {
            self.transmitted = false;
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _: &RoundContext, fb: Feedback<u64>, _: &mut SmallRng) {
        if self.transmitted && matches!(fb, Feedback::Message(_)) {
            self.done = true;
        }
    }

    fn status(&self) -> Status {
        if self.done {
            Status::Leader
        } else {
            Status::Active
        }
    }
}

/// Everything a run can legally differ in, in one comparable value.
type Fingerprint = (
    Option<u64>,
    Option<NodeId>,
    u64,
    Vec<NodeId>,
    Vec<NodeId>,
    Metrics,
);

fn fingerprint(report: &RunReport) -> Fingerprint {
    (
        report.solved_round,
        report.solver,
        report.rounds_executed,
        report.leaders.clone(),
        report.active_remaining.clone(),
        report.metrics.clone(),
    )
}

fn engine_with<F: FeedbackModel>(seed: u64, feedback: F) -> Engine<Backoff, F> {
    let cfg = SimConfig::new(8).seed(seed).max_rounds(50_000);
    let mut engine = Engine::with_feedback(cfg, feedback);
    for _ in 0..6 {
        engine.add_node(Backoff::new());
    }
    engine
}

/// Runs every fault model's engine builder through `check`, so each test
/// covers the whole taxonomy without repeating the list.
fn for_each_model(mut check: impl FnMut(&str, &dyn Fn(u64) -> Fingerprint)) {
    check("noisy-cd", &|seed| {
        fingerprint(
            &engine_with(seed, Layered::new(NoisyCd::symmetric(0.2), CdMode::Strong))
                .run()
                .expect("noisy run solves"),
        )
    });
    check("lossy-channel", &|seed| {
        fingerprint(
            &engine_with(seed, Layered::new(LossyChannel::new(0.3), CdMode::Strong))
                .run()
                .expect("lossy run solves"),
        )
    });
    check("crash-stop-random", &|seed| {
        fingerprint(
            &engine_with(
                seed,
                Layered::new(CrashStop::random(2, 6, 10), CdMode::Strong),
            )
            .run()
            .expect("crash run solves"),
        )
    });
    check("crash-stop-assassin", &|seed| {
        fingerprint(
            &engine_with(seed, Layered::new(CrashStop::assassin(2), CdMode::Strong))
                .run()
                .expect("assassin run solves"),
        )
    });
    check("jam-budget", &|seed| {
        fingerprint(
            &engine_with(seed, JamBudget::new(CdMode::Strong, 3))
                .run()
                .expect("jammed run solves"),
        )
    });
    check("stacked", &|seed| {
        fingerprint(
            &engine_with(
                seed,
                Layered::new(
                    NoisyCd::symmetric(0.1),
                    Layered::new(
                        LossyChannel::new(0.1),
                        Layered::new(CrashStop::random(1, 6, 5), CdMode::Strong),
                    ),
                ),
            )
            .run()
            .expect("stacked run solves"),
        )
    });
}

#[test]
fn same_seed_is_bit_identical_for_every_fault_model() {
    for_each_model(|name, run| {
        for seed in [0, 1, 7, 0xDEAD_BEEF] {
            assert_eq!(run(seed), run(seed), "{name}: seed {seed} not reproducible");
        }
    });
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against a model accidentally ignoring the master seed: across
    // a handful of seeds, at least one fingerprint must change.
    for_each_model(|name, run| {
        let prints: Vec<_> = (0..6).map(run).collect();
        assert!(
            prints.iter().any(|p| p != &prints[0]),
            "{name}: six seeds produced identical runs"
        );
    });
}

#[test]
fn thread_count_does_not_change_faulted_trial_results() {
    fn fan<F: FeedbackModel>(
        threads: usize,
        make_feedback: &(impl Fn() -> F + Sync),
    ) -> Vec<Fingerprint> {
        run_trials_with_threads(
            12,
            900,
            threads,
            |seed| engine_with(seed, make_feedback()),
            |_, report| fingerprint(report),
        )
    }

    fn check<F: FeedbackModel>(name: &str, make_feedback: impl Fn() -> F + Sync) {
        let single = fan(1, &make_feedback);
        for threads in [2, 5] {
            assert_eq!(
                single,
                fan(threads, &make_feedback),
                "{name}: {threads} threads diverged from 1 thread"
            );
        }
    }

    check("noisy-cd", || {
        Layered::new(NoisyCd::symmetric(0.2), CdMode::Strong)
    });
    check("lossy-channel", || {
        Layered::new(LossyChannel::new(0.3), CdMode::Strong)
    });
    check("crash-stop", || {
        Layered::new(CrashStop::random(2, 6, 10), CdMode::Strong)
    });
    check("jam-budget", || JamBudget::new(CdMode::Strong, 3));
}
