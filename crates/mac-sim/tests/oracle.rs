//! Differential testing of the executor against a naive reference model.
//!
//! The executor uses incremental per-channel scratch buffers for speed; the
//! oracle here recomputes every round from scratch with the dumbest
//! possible code. Property: for arbitrary random action scripts, both
//! produce identical feedback for every node in every round, identical
//! solve rounds, and identical transmission counts — under every
//! collision-detection mode.

use mac_sim::{
    Action, CdMode, ChannelId, Engine, Feedback, Protocol, RoundContext, SimConfig, Status,
    StopWhen,
};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;

/// A compact encodable action for proptest generation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Tx { ch: u8, msg: u8 },
    Rx { ch: u8 },
    Zzz,
}

fn op_strategy(channels: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..=channels, any::<u8>()).prop_map(|(ch, msg)| Op::Tx { ch, msg }),
        (1..=channels).prop_map(|ch| Op::Rx { ch }),
        Just(Op::Zzz),
    ]
}

/// Scripted node driven by a pre-generated action list.
struct Scripted {
    script: Vec<Op>,
    cursor: usize,
    heard: Vec<Feedback<u32>>,
}

impl Protocol for Scripted {
    type Msg = u32;
    fn act(&mut self, _ctx: &RoundContext, _rng: &mut SmallRng) -> Action<u32> {
        let op = self.script.get(self.cursor).copied().unwrap_or(Op::Zzz);
        self.cursor += 1;
        match op {
            Op::Tx { ch, msg } => Action::transmit(ChannelId::new(u32::from(ch)), u32::from(msg)),
            Op::Rx { ch } => Action::listen(ChannelId::new(u32::from(ch))),
            Op::Zzz => Action::Sleep,
        }
    }
    fn observe(&mut self, _ctx: &RoundContext, fb: Feedback<u32>, _rng: &mut SmallRng) {
        self.heard.push(fb);
    }
    fn status(&self) -> Status {
        if self.cursor >= self.script.len() {
            Status::Inactive
        } else {
            Status::Active
        }
    }
}

/// The reference model: recompute everything naively.
#[allow(clippy::type_complexity)]
fn oracle(
    scripts: &[Vec<Op>],
    channels: u8,
    cd: CdMode,
) -> (Vec<Vec<Feedback<u32>>>, Option<u64>, u64) {
    let rounds = scripts.iter().map(Vec::len).max().unwrap_or(0);
    let mut heard: Vec<Vec<Feedback<u32>>> = vec![Vec::new(); scripts.len()];
    let mut solved: Option<u64> = None;
    let mut transmissions = 0u64;
    for r in 0..rounds {
        // Gather this round's ops for still-active nodes (a node is active
        // until its script is exhausted).
        let ops: Vec<Option<Op>> = scripts
            .iter()
            .map(|s| if r < s.len() { Some(s[r]) } else { None })
            .collect();
        // Per-channel transmitter lists.
        let mut txs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); usize::from(channels) + 1];
        for (node, op) in ops.iter().enumerate() {
            if let Some(Op::Tx { ch, msg }) = op {
                txs[usize::from(*ch)].push((node, u32::from(*msg)));
                transmissions += 1;
            }
        }
        if solved.is_none() && txs[1].len() == 1 {
            solved = Some(r as u64);
        }
        for (node, op) in ops.iter().enumerate() {
            let Some(op) = op else { continue };
            let fb = match op {
                Op::Zzz => Feedback::Slept,
                Op::Tx { ch, .. } | Op::Rx { ch } => {
                    let on = &txs[usize::from(*ch)];
                    let truth = match on.len() {
                        0 => Feedback::Silence,
                        1 => Feedback::Message(on[0].1),
                        _ => Feedback::Collision,
                    };
                    let is_tx = matches!(op, Op::Tx { .. });
                    match cd {
                        CdMode::Strong => truth,
                        CdMode::ReceiverOnly if is_tx => Feedback::TransmittedBlind,
                        CdMode::ReceiverOnly => truth,
                        CdMode::None if is_tx => Feedback::TransmittedBlind,
                        CdMode::None => match truth {
                            Feedback::Collision => Feedback::Silence,
                            other => other,
                        },
                    }
                }
            };
            heard[node].push(fb);
        }
    }
    (heard, solved, transmissions)
}

fn run_executor(
    scripts: &[Vec<Op>],
    channels: u8,
    cd: CdMode,
) -> (Vec<Vec<Feedback<u32>>>, Option<u64>, u64) {
    let cfg = SimConfig::new(u32::from(channels))
        .cd_mode(cd)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000);
    let mut exec = Engine::new(cfg);
    for script in scripts {
        exec.add_node(Scripted {
            script: script.clone(),
            cursor: 0,
            heard: Vec::new(),
        });
    }
    let report = exec.run().expect("scripts terminate");
    let heard = exec.iter_nodes().map(|n| n.heard.clone()).collect();
    (heard, report.solved_round, report.metrics.transmissions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn executor_matches_naive_oracle(
        scripts in vec(vec(op_strategy(5), 0..12), 1..8),
        mode in prop_oneof![Just(CdMode::Strong), Just(CdMode::ReceiverOnly), Just(CdMode::None)],
    ) {
        let (oracle_heard, oracle_solved, oracle_tx) = oracle(&scripts, 5, mode);
        let (exec_heard, exec_solved, exec_tx) = run_executor(&scripts, 5, mode);
        prop_assert_eq!(exec_heard, oracle_heard);
        prop_assert_eq!(exec_solved, oracle_solved);
        prop_assert_eq!(exec_tx, oracle_tx);
    }
}

#[test]
fn oracle_spot_check() {
    // Hand-computed: node 0 transmits ch1, node 1 listens ch1, node 2
    // transmits ch2 then everyone stops.
    let scripts = vec![
        vec![Op::Tx { ch: 1, msg: 9 }],
        vec![Op::Rx { ch: 1 }],
        vec![Op::Tx { ch: 2, msg: 4 }],
    ];
    let (heard, solved, tx) = oracle(&scripts, 3, CdMode::Strong);
    assert_eq!(heard[0], vec![Feedback::Message(9)]);
    assert_eq!(heard[1], vec![Feedback::Message(9)]);
    assert_eq!(heard[2], vec![Feedback::Message(4)]);
    assert_eq!(solved, Some(0));
    assert_eq!(tx, 2);
}
