//! Property-based tests (proptest) over the `WakeSchedule` generators.
//!
//! Every constructor must produce exactly `k` offsets, and each family's
//! structural promise — wave spacing, ramp modulus, uniform window — must
//! hold for arbitrary parameters, not just the hand-picked unit-test cases.

use mac_sim::adversary::WakeSchedule;
use proptest::prelude::*;

proptest! {
    /// `simultaneous(k)` is `k` zeros: span 0, every offset 0.
    #[test]
    fn simultaneous_is_all_zero(k in 0usize..200) {
        let s = WakeSchedule::simultaneous(k);
        prop_assert_eq!(s.len(), k);
        prop_assert_eq!(s.is_empty(), k == 0);
        prop_assert_eq!(s.span(), 0);
        prop_assert!(s.iter().all(|o| o == 0));
    }

    /// `offset_one(k)` alternates 0/1 starting at 0, so its span is 1 as
    /// soon as two nodes exist.
    #[test]
    fn offset_one_alternates(k in 0usize..200) {
        let s = WakeSchedule::offset_one(k);
        prop_assert_eq!(s.len(), k);
        for (i, o) in s.iter().enumerate() {
            prop_assert_eq!(o, (i as u64) % 2);
        }
        prop_assert_eq!(s.span(), u64::from(k >= 2));
    }

    /// `waves(k, w, gap)` uses only the `w` burst offsets `{0, gap, …}`,
    /// assigns them round-robin, and never exceeds span `(w-1)·gap`.
    #[test]
    fn waves_are_round_robin_bursts(
        k in 0usize..200,
        w in 1usize..10,
        gap in 0u64..50,
    ) {
        let s = WakeSchedule::waves(k, w, gap);
        prop_assert_eq!(s.len(), k);
        for (i, o) in s.iter().enumerate() {
            prop_assert_eq!(o, (i % w) as u64 * gap);
        }
        prop_assert!(s.span() <= (w as u64 - 1) * gap);
        if k >= w && gap > 0 {
            // Every burst is populated once the round-robin wraps.
            prop_assert_eq!(s.span(), (w as u64 - 1) * gap);
        }
    }

    /// `ramp(k, stride, period)` stays inside `0..period` and follows the
    /// advertised `i·stride mod period` formula.
    #[test]
    fn ramp_respects_period(
        k in 0usize..200,
        stride in 0u64..100,
        period in 1u64..100,
    ) {
        let s = WakeSchedule::ramp(k, stride, period);
        prop_assert_eq!(s.len(), k);
        for (i, o) in s.iter().enumerate() {
            prop_assert!(o < period);
            prop_assert_eq!(o, (i as u64 * stride) % period);
        }
        prop_assert!(s.span() < period);
    }

    /// `uniform(k, window, seed)` stays inside `0..window` and is a pure
    /// function of its seed: same seed, same offsets.
    #[test]
    fn uniform_is_bounded_and_seed_deterministic(
        k in 0usize..200,
        window in 1u64..1000,
        seed in any::<u64>(),
    ) {
        let s = WakeSchedule::uniform(k, window, seed);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.iter().all(|o| o < window));
        prop_assert!(s.span() < window);
        let again = WakeSchedule::uniform(k, window, seed);
        prop_assert_eq!(s.offsets(), again.offsets());
    }

    /// `span` is invariant under a uniform shift of what "earliest" means:
    /// it is always `max - min` over the offsets, for every family.
    #[test]
    fn span_is_max_minus_min(
        k in 1usize..100,
        w in 1usize..8,
        gap in 0u64..20,
        stride in 0u64..40,
        period in 1u64..40,
        window in 1u64..200,
        seed in any::<u64>(),
    ) {
        for s in [
            WakeSchedule::simultaneous(k),
            WakeSchedule::offset_one(k),
            WakeSchedule::waves(k, w, gap),
            WakeSchedule::ramp(k, stride, period),
            WakeSchedule::uniform(k, window, seed),
        ] {
            let max = s.iter().max().unwrap_or(0);
            let min = s.iter().min().unwrap_or(0);
            prop_assert_eq!(s.span(), max - min);
            prop_assert_eq!(s.offsets().len(), s.len());
        }
    }
}
