//! Property suite pinning the active-set scheduler to the dense O(n)
//! reference implementation.
//!
//! [`mac_sim::Engine`] schedules via a wake agenda + live set
//! (O(|live|)/round); [`mac_sim::dense::DenseEngine`] executes the same
//! semantics with full slot scans (O(n)/round). Over random wake
//! schedules × collision-detection modes × fault layers, both must
//! produce **bit-identical** results: the same [`RunReport`] (solve data,
//! leaders, active survivors, full metrics) and the same structured
//! [`RunRecord`] (span accounting, per-channel tallies) — not merely the
//! same solve round. Any divergence means the agenda/live-set/retirement
//! bookkeeping changed observable semantics, which is exactly what this
//! suite exists to catch.

use mac_sim::dense::DenseEngine;
use mac_sim::fault::{CrashStop, JamBudget, Layered, LossyChannel, NoisyCd};
use mac_sim::obs::{RunRecord, RunRecorder};
use mac_sim::{
    Action, CdMode, ChannelId, Engine, Feedback, FeedbackModel, Metrics, NodeId, Protocol,
    RoundContext, RunReport, SimConfig, Status,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// Seeded random backoff: transmits on a random channel with decaying
/// probability, terminates once it hears its own lone primary-channel
/// transmission echo back. Exercises per-node RNG every round (so any
/// stream drift diverges immediately) and spreads load over channels (so
/// channel-outcome tallies are non-trivial).
struct Backoff {
    channels: u32,
    transmitted_primary: bool,
    done: bool,
}

impl Backoff {
    fn new(channels: u32) -> Self {
        Backoff {
            channels,
            transmitted_primary: false,
            done: false,
        }
    }
}

impl Protocol for Backoff {
    type Msg = u64;

    fn act(&mut self, ctx: &RoundContext, rng: &mut SmallRng) -> Action<u64> {
        let p = 2.0_f64.powi(-(1 + (ctx.local_round % 8) as i32));
        if rng.gen_bool(p.max(0.05)) {
            let channel = ChannelId::new(rng.gen_range(1..=self.channels));
            self.transmitted_primary = channel == ChannelId::PRIMARY;
            Action::transmit(channel, ctx.round)
        } else {
            self.transmitted_primary = false;
            Action::listen(ChannelId::PRIMARY)
        }
    }

    fn observe(&mut self, _: &RoundContext, fb: Feedback<u64>, _: &mut SmallRng) {
        if self.transmitted_primary && matches!(fb, Feedback::Message(_)) {
            self.done = true;
        }
    }

    fn status(&self) -> Status {
        if self.done {
            Status::Leader
        } else {
            Status::Active
        }
    }

    fn phase(&self) -> &'static str {
        if self.done {
            "done"
        } else {
            "backoff"
        }
    }
}

/// Everything a run can legally differ in, in one comparable value.
type Fingerprint = (
    Result<RunReportKey, String>,
    RunRecord, // wall_ns normalized to 0
);

type RunReportKey = (
    Option<u64>,
    Option<NodeId>,
    u64,
    Vec<NodeId>,
    Vec<NodeId>,
    Metrics,
);

fn report_key(report: &RunReport) -> RunReportKey {
    (
        report.solved_round,
        report.solver,
        report.rounds_executed,
        report.leaders.clone(),
        report.active_remaining.clone(),
        report.metrics.clone(),
    )
}

/// The workload both engines execute: node count, per-node wake offsets,
/// CD mode, and which fault stack rides along.
#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    channels: u32,
    wake_offsets: Vec<u64>,
    cd_mode: CdMode,
    faults: FaultChoice,
}

#[derive(Debug, Clone, Copy)]
enum FaultChoice {
    Clean,
    CrashRandom { f: usize, window: u64 },
    Assassin { kills: u64 },
    JamBudget { budget: u64 },
    Stacked,
}

fn config(w: &Workload) -> SimConfig {
    SimConfig::new(w.channels)
        .seed(w.seed)
        .cd_mode(w.cd_mode)
        .max_rounds(200_000)
        .round_budget(5_000)
}

/// Runs the workload on either engine via the two closures, so active-set
/// and dense runs are built by the exact same code path.
fn run_workload(w: &Workload, dense: bool) -> Fingerprint {
    fn drive<F: FeedbackModel>(w: &Workload, feedback: F, dense: bool) -> Fingerprint {
        let mut recorder = RunRecorder::new();
        let outcome = if dense {
            let mut eng = DenseEngine::with_feedback(config(w), feedback);
            for &offset in &w.wake_offsets {
                eng.add_node_at(Backoff::new(w.channels), offset);
            }
            eng.run_observed(&mut recorder)
        } else {
            let mut eng = Engine::with_feedback(config(w), feedback);
            for &offset in &w.wake_offsets {
                eng.add_node_at(Backoff::new(w.channels), offset);
            }
            eng.run_observed(&mut recorder)
        };
        let key = outcome
            .as_ref()
            .map(report_key)
            .map_err(|e| format!("{e:?}"));
        let mut record = recorder.into_record(w.seed);
        // Wall-clock fields are the one legitimately nondeterministic part
        // of a record; everything else must match bit for bit.
        record.wall_ns = 0;
        for span in &mut record.spans {
            span.wall_ns = 0;
        }
        (key, record)
    }

    let n = w.wake_offsets.len();
    match w.faults {
        FaultChoice::Clean => drive(w, w.cd_mode, dense),
        FaultChoice::CrashRandom { f, window } => drive(
            w,
            Layered::new(CrashStop::random(f.min(n), n, window), w.cd_mode),
            dense,
        ),
        FaultChoice::Assassin { kills } => drive(
            w,
            Layered::new(CrashStop::assassin(kills), w.cd_mode),
            dense,
        ),
        FaultChoice::JamBudget { budget } => drive(w, JamBudget::new(w.cd_mode, budget), dense),
        FaultChoice::Stacked => drive(
            w,
            Layered::new(
                NoisyCd::symmetric(0.05),
                Layered::new(
                    LossyChannel::new(0.05),
                    Layered::new(
                        CrashStop::random(1.min(n), n, 16),
                        JamBudget::new(w.cd_mode, 1),
                    ),
                ),
            ),
            dense,
        ),
    }
}

fn cd_mode_strategy() -> impl Strategy<Value = CdMode> {
    prop_oneof![
        Just(CdMode::Strong),
        Just(CdMode::ReceiverOnly),
        Just(CdMode::None),
    ]
}

fn fault_strategy() -> impl Strategy<Value = FaultChoice> {
    prop_oneof![
        Just(FaultChoice::Clean),
        (1usize..3, 1u64..32).prop_map(|(f, window)| FaultChoice::CrashRandom { f, window }),
        (1u64..3).prop_map(|kills| FaultChoice::Assassin { kills }),
        (1u64..4).prop_map(|budget| FaultChoice::JamBudget { budget }),
        Just(FaultChoice::Stacked),
    ]
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        any::<u64>(),
        2u32..9,
        prop_vec(0u64..48, 1..10),
        cd_mode_strategy(),
        fault_strategy(),
    )
        .prop_map(|(seed, channels, wake_offsets, cd_mode, faults)| Workload {
            seed,
            channels,
            wake_offsets,
            cd_mode,
            faults,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: for any workload, the active-set engine and
    /// the dense reference produce bit-identical reports and records.
    #[test]
    fn active_set_matches_dense_reference(w in workload_strategy()) {
        let active = run_workload(&w, false);
        let dense = run_workload(&w, true);
        prop_assert_eq!(active, dense);
    }
}

/// Deterministic spot-checks of corners the random strategy can miss:
/// everyone waking late, a crash scheduled before its victim's wake round,
/// and an all-crashed population wedging against the round budget.
#[test]
fn corner_cases_match_dense_reference() {
    let base = Workload {
        seed: 11,
        channels: 4,
        wake_offsets: vec![7, 7, 7],
        cd_mode: CdMode::Strong,
        faults: FaultChoice::Clean,
    };
    assert_eq!(run_workload(&base, false), run_workload(&base, true));

    // Crash a node before it ever wakes: schedule round 0, wake round 9.
    let mut pre_wake_crash = base.clone();
    pre_wake_crash.wake_offsets = vec![0, 9];
    pre_wake_crash.faults = FaultChoice::CrashRandom { f: 1, window: 1 };
    assert_eq!(
        run_workload(&pre_wake_crash, false),
        run_workload(&pre_wake_crash, true)
    );

    // Crash everyone: both engines must wedge identically on the budget.
    let mut all_dead = base.clone();
    all_dead.faults = FaultChoice::CrashRandom { f: 3, window: 2 };
    assert_eq!(
        run_workload(&all_dead, false),
        run_workload(&all_dead, true)
    );
}
