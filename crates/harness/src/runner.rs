//! Multi-seed trial execution — now a compatibility shim.
//!
//! The trial fan-out was promoted into the simulator itself as
//! [`mac_sim::trials`], so experiments, benches, and tests share one
//! implementation. The harness re-exports deprecated wrappers here so old
//! call sites keep compiling; new code calls `mac_sim::trials` directly.
//! [`sample_distinct`] (identity sampling, not trial execution) still lives
//! here.

#[allow(deprecated)]
use mac_sim::{Executor, Protocol, RunReport};

/// Runs `trials` independent executions built by `build` (which receives
/// the trial's seed) and returns their reports in seed order.
///
/// # Panics
///
/// Panics if any trial fails.
#[deprecated(since = "0.2.0", note = "moved to `mac_sim::trials::run_trials`")]
#[allow(deprecated)]
pub fn run_trials<P, F>(trials: usize, base_seed: u64, build: F) -> Vec<RunReport>
where
    P: Protocol,
    F: Fn(u64) -> Executor<P> + Sync,
{
    mac_sim::trials::run_trials(trials, base_seed, build)
}

/// Like [`run_trials`], but maps each finished execution through `extract`.
///
/// # Panics
///
/// Panics if any trial fails.
#[deprecated(since = "0.2.0", note = "moved to `mac_sim::trials::run_trials_with`")]
#[allow(deprecated)]
pub fn run_trials_with<P, F, G, T>(trials: usize, base_seed: u64, build: F, extract: G) -> Vec<T>
where
    P: Protocol,
    F: Fn(u64) -> Executor<P> + Sync,
    G: Fn(&Executor<P>, &RunReport) -> T + Sync,
    T: Send,
{
    mac_sim::trials::run_trials_with(trials, base_seed, build, extract)
}

/// Samples `count` distinct values from `0..universe` (a partial
/// Fisher-Yates), deterministically from `seed`. Used to pick which node
/// ids are activated in baseline runs.
///
/// # Panics
///
/// Panics if `count > universe`.
#[must_use]
pub fn sample_distinct(universe: u64, count: usize, seed: u64) -> Vec<u64> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    assert!(
        count as u64 <= universe,
        "cannot sample {count} distinct values from 0..{universe}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Partial Fisher–Yates over a sparse map to stay O(count) in memory.
    let mut swaps: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(count);
    for i in 0..count as u64 {
        let j = rng.gen_range(i..universe);
        let vi = *swaps.get(&i).unwrap_or(&i);
        let vj = *swaps.get(&j).unwrap_or(&j);
        out.push(vj);
        swaps.insert(j, vi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention::baselines::CdTournament;
    use mac_sim::{trials, Engine, SimConfig};

    #[test]
    fn deprecated_wrappers_match_trials_module() {
        let build = |seed: u64| {
            let mut engine = Engine::new(SimConfig::new(1).seed(seed).max_rounds(10_000));
            for _ in 0..16 {
                engine.add_node(CdTournament::new());
            }
            engine
        };
        #[allow(deprecated)]
        let old: Vec<u64> = run_trials(8, 100, build)
            .iter()
            .map(|r| r.rounds_to_solve().unwrap())
            .collect();
        let new: Vec<u64> = trials::run_trials(8, 100, build)
            .iter()
            .map(|r| r.rounds_to_solve().unwrap())
            .collect();
        assert_eq!(old, new);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        for seed in 0..20 {
            let s = sample_distinct(100, 50, seed);
            assert_eq!(s.len(), 50);
            let set: std::collections::HashSet<u64> = s.iter().copied().collect();
            assert_eq!(set.len(), 50, "seed {seed}: duplicates");
            assert!(s.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sample_distinct_full_universe_is_permutation() {
        let mut s = sample_distinct(10, 10, 3);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = sample_distinct(5, 6, 0);
    }
}
