//! Deterministic identity sampling for experiment populations.
//!
//! Multi-seed trial execution lives in the simulator itself
//! ([`mac_sim::trials`]), so experiments, benches, and tests share one
//! implementation; this module keeps only [`sample_distinct`], which picks
//! *which* node ids participate rather than running anything.

/// Samples `count` distinct values from `0..universe` (a partial
/// Fisher-Yates), deterministically from `seed`. Used to pick which node
/// ids are activated in baseline runs.
///
/// # Panics
///
/// Panics if `count > universe`.
#[must_use]
pub fn sample_distinct(universe: u64, count: usize, seed: u64) -> Vec<u64> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    assert!(
        count as u64 <= universe,
        "cannot sample {count} distinct values from 0..{universe}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Partial Fisher–Yates over a sparse map to stay O(count) in memory.
    let mut swaps: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(count);
    for i in 0..count as u64 {
        let j = rng.gen_range(i..universe);
        let vi = *swaps.get(&i).unwrap_or(&i);
        let vj = *swaps.get(&j).unwrap_or(&j);
        out.push(vj);
        swaps.insert(j, vi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        for seed in 0..20 {
            let s = sample_distinct(100, 50, seed);
            assert_eq!(s.len(), 50);
            let set: std::collections::HashSet<u64> = s.iter().copied().collect();
            assert_eq!(set.len(), 50, "seed {seed}: duplicates");
            assert!(s.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sample_distinct_full_universe_is_permutation() {
        let mut s = sample_distinct(10, 10, 3);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = sample_distinct(5, 6, 0);
    }
}
