//! Multi-seed trial execution, parallelized across OS threads.

use mac_sim::{Executor, Protocol, RunReport};

/// Runs `trials` independent executions built by `build` (which receives
/// the trial's seed) and returns their reports in seed order.
///
/// Trials are spread over `std::thread::available_parallelism()` threads;
/// results are deterministic regardless of thread count because each trial
/// is fully determined by its seed.
///
/// # Panics
///
/// Panics if any trial fails (a timeout or protocol error is an experiment
/// bug, not a data point — the panic message carries the seed for replay).
pub fn run_trials<P, F>(trials: usize, base_seed: u64, build: F) -> Vec<RunReport>
where
    P: Protocol,
    F: Fn(u64) -> Executor<P> + Sync,
{
    run_trials_with(trials, base_seed, build, |_, report| report.clone())
}

/// Like [`run_trials`], but maps each finished execution through `extract`,
/// which also receives the executor so it can inspect final protocol state
/// (adopted ids, survivor flags, per-phase stats, …).
///
/// # Panics
///
/// Panics if any trial fails; the message carries the seed for replay.
pub fn run_trials_with<P, F, G, T>(trials: usize, base_seed: u64, build: F, extract: G) -> Vec<T>
where
    P: Protocol,
    F: Fn(u64) -> Executor<P> + Sync,
    G: Fn(&Executor<P>, &RunReport) -> T + Sync,
    T: Send,
{
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let threads = threads.min(trials.max(1));
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();

    std::thread::scope(|scope| {
        let chunk_size = trials.div_ceil(threads);
        for (chunk_idx, chunk) in results.chunks_mut(chunk_size).enumerate() {
            let build = &build;
            let extract = &extract;
            let start = chunk_idx * chunk_size;
            scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    let seed = base_seed + (start + offset) as u64;
                    let mut exec = build(seed);
                    let report = exec
                        .run()
                        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
                    *slot = Some(extract(&exec, &report));
                }
            });
        }
    });

    results.into_iter().map(|r| r.expect("trial completed")).collect()
}

/// Samples `count` distinct values from `0..universe` (a partial
/// Fisher-Yates), deterministically from `seed`. Used to pick which node
/// ids are activated in baseline runs.
///
/// # Panics
///
/// Panics if `count > universe`.
#[must_use]
pub fn sample_distinct(universe: u64, count: usize, seed: u64) -> Vec<u64> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    assert!(
        count as u64 <= universe,
        "cannot sample {count} distinct values from 0..{universe}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Partial Fisher–Yates over a sparse map to stay O(count) in memory.
    let mut swaps: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(count);
    for i in 0..count as u64 {
        let j = rng.gen_range(i..universe);
        let vi = *swaps.get(&i).unwrap_or(&i);
        let vj = *swaps.get(&j).unwrap_or(&j);
        out.push(vj);
        swaps.insert(j, vi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention::baselines::CdTournament;
    use mac_sim::SimConfig;

    #[test]
    fn trials_are_deterministic_and_ordered() {
        let build = |seed: u64| {
            let mut exec = Executor::new(SimConfig::new(1).seed(seed).max_rounds(10_000));
            for _ in 0..16 {
                exec.add_node(CdTournament::new());
            }
            exec
        };
        let a: Vec<u64> = run_trials(8, 100, build)
            .iter()
            .map(|r| r.rounds_to_solve().unwrap())
            .collect();
        let b: Vec<u64> = run_trials(8, 100, build)
            .iter()
            .map(|r| r.rounds_to_solve().unwrap())
            .collect();
        assert_eq!(a, b);
        // Different seeds give different outcomes somewhere in the batch.
        let c: Vec<u64> = run_trials(8, 999, build)
            .iter()
            .map(|r| r.rounds_to_solve().unwrap())
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn single_trial_works() {
        let build = |seed: u64| {
            let mut exec = Executor::new(SimConfig::new(1).seed(seed).max_rounds(10_000));
            exec.add_node(CdTournament::new());
            exec
        };
        assert_eq!(run_trials(1, 0, build).len(), 1);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        for seed in 0..20 {
            let s = sample_distinct(100, 50, seed);
            assert_eq!(s.len(), 50);
            let set: std::collections::HashSet<u64> = s.iter().copied().collect();
            assert_eq!(set.len(), 50, "seed {seed}: duplicates");
            assert!(s.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sample_distinct_full_universe_is_permutation() {
        let mut s = sample_distinct(10, 10, 3);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = sample_distinct(5, 6, 0);
    }
}
