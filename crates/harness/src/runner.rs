//! The campaign-backed experiment runner.
//!
//! Everything an experiment needs to execute lives in a [`RunCtx`]: the
//! [`Scale`], the worker count, a cancellation token, an optional progress
//! hub, and an optional [`RecordStore`] for checkpoint/resume. Experiments
//! describe their measurements as [`Sweep`]s — one cell per table row, each
//! cell a `(trials, seed stream, aggregate, trial closure, render closure)`
//! tuple — and the sweep schedules every cell on one
//! [`mac_sim::campaign::Campaign`] worker pool. Results stream into
//! aggregates (no `Vec<RunReport>` accumulation), finished rows are
//! checkpointed to disk as they complete, and rows already present in a
//! resumed record store are replayed without running a single trial.
//!
//! Determinism contract: the campaign layer merges shard aggregates in a
//! fixed order, so a sweep's rendered rows are bit-identical for every
//! worker count; the record store replays the exact row strings, so a
//! killed-and-resumed run is bit-identical to an uninterrupted one. For
//! that to hold end to end, experiments must derive their prose notes from
//! the rendered row strings (via [`cell_f64`]/[`cell_u64`]), not from
//! transient sample vectors.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use contention_analysis::Table;
use mac_sim::campaign::{
    Aggregate, Campaign, CancelToken, Cell, ProgressSink, Quarantined, SeedStream,
    DEFAULT_SHARD_SIZE,
};
use mac_sim::obs::Json;
use mac_sim::MetricsHub;

use crate::record::{quarantine_record, RecordStore};
use crate::Scale;

/// Samples `count` distinct values from `0..universe` (a partial
/// Fisher-Yates), deterministically from `seed`. Used to pick which node
/// ids are activated in baseline runs.
///
/// # Panics
///
/// Panics if `count > universe`.
#[must_use]
pub fn sample_distinct(universe: u64, count: usize, seed: u64) -> Vec<u64> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    assert!(
        count as u64 <= universe,
        "cannot sample {count} distinct values from 0..{universe}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Partial Fisher–Yates over a sparse map to stay O(count) in memory.
    let mut swaps: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(count);
    for i in 0..count as u64 {
        let j = rng.gen_range(i..universe);
        let vi = *swaps.get(&i).unwrap_or(&i);
        let vj = *swaps.get(&j).unwrap_or(&j);
        out.push(vj);
        swaps.insert(j, vi);
    }
    out
}

/// An [`contention_analysis::OnlineSummary`] wrapped as a campaign
/// [`Aggregate`]: the standard streamed replacement for collecting a
/// sample vector and batch-summarising it. Memory per cell is `O(1)` in
/// the trial count, and the merge is exactly associative, so shard splits
/// never change the result.
#[derive(Debug, Clone, Default)]
pub struct Samples(pub contention_analysis::OnlineSummary);

impl Samples {
    /// Folds one sample in.
    pub fn push(&mut self, sample: u64) {
        self.0.push(sample);
    }
}

impl Aggregate for Samples {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }
}

/// Parses a rendered table cell back to `f64`, tolerating a trailing `%`.
///
/// Notes must be derived from rendered cells (not transient samples) so
/// that resumed rows — which exist only as strings — produce bit-identical
/// reports; this is the standard parser for doing so.
///
/// # Panics
///
/// Panics if the cell is not numeric.
#[must_use]
pub fn cell_f64(cell: &str) -> f64 {
    let trimmed = cell.trim().trim_end_matches('%');
    trimmed
        .parse::<f64>()
        .unwrap_or_else(|_| panic!("table cell {cell:?} is not numeric"))
}

/// [`cell_f64`] for integer cells.
///
/// # Panics
///
/// Panics if the cell is not an unsigned integer.
#[must_use]
pub fn cell_u64(cell: &str) -> u64 {
    cell.trim()
        .parse::<u64>()
        .unwrap_or_else(|_| panic!("table cell {cell:?} is not an unsigned integer"))
}

/// Panic payload thrown by [`Sweep::run`] when its campaign is cancelled
/// (deadline or explicit token) before every row completed. The rows that
/// did complete are already checkpointed in the record store; `repro`
/// catches this payload, reports how to resume, and exits cleanly.
#[derive(Debug, Clone, Copy)]
pub struct SweepCancelled;

/// Everything an experiment run needs: scale, scheduling knobs, and the
/// optional observability/persistence attachments.
pub struct RunCtx {
    /// The sizing of the run (trial counts, grid thinning).
    pub scale: Scale,
    workers: Option<usize>,
    cancel: CancelToken,
    hub: Option<Arc<ProgressHub>>,
    metrics: Option<Arc<MetricsHub>>,
    store: Option<Mutex<RecordStore>>,
    /// Self-healing: retry panicking trials up to this many attempts, then
    /// quarantine the seed so the sweep completes ([`Campaign::self_heal`]).
    heal_attempts: Option<u32>,
    /// Fault injection for the chaos harness: the trial at exactly this
    /// seed panics, exercising the quarantine path end to end.
    chaos_panic_seed: Option<u64>,
    /// Registry id of the experiment currently running (for quarantine
    /// records).
    current_id: Mutex<String>,
    /// Set when checkpoint I/O failed permanently and the run degraded to
    /// computing without persistence.
    degraded: AtomicBool,
}

impl RunCtx {
    /// A plain context: default worker count, no cancellation, no
    /// progress, no records. What tests use.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        RunCtx {
            scale,
            workers: None,
            cancel: CancelToken::new(),
            hub: None,
            metrics: None,
            store: None,
            heal_attempts: None,
            chaos_panic_seed: None,
            current_id: Mutex::new(String::new()),
            degraded: AtomicBool::new(false),
        }
    }

    /// Pins the campaign worker count.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Attaches a cancellation token (flag or deadline).
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a throttled stderr progress line with a whole-sweep ETA.
    #[must_use]
    pub fn progress(mut self) -> Self {
        self.hub = Some(Arc::new(ProgressHub::new()));
        self
    }

    /// Attaches a live metrics hub: every sweep's campaign streams its
    /// scheduler counters into the hub's per-worker shards, and when a
    /// record store is also attached, each finished sweep appends one
    /// `kind: "snapshot"` record to `metrics.jsonl` in the record
    /// directory. The hub observes — it never feeds back into scheduling
    /// or trial RNG, so an attached run is bit-identical to a bare one.
    #[must_use]
    pub fn metrics_hub(mut self, hub: Arc<MetricsHub>) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// Attaches a record store for checkpointing and resume.
    #[must_use]
    pub fn record_store(mut self, store: RecordStore) -> Self {
        self.store = Some(Mutex::new(store));
        self
    }

    /// Enables trial self-healing on every sweep: a panicking trial is
    /// retried up to `attempts` times, then its seed is quarantined
    /// (reported to stderr and, when a record store is attached, to
    /// `quarantine.jsonl`) so the sweep still completes. Off by default —
    /// a panic in a vanilla run stays loud.
    #[must_use]
    pub fn self_heal(mut self, attempts: u32) -> Self {
        self.heal_attempts = Some(attempts);
        self
    }

    /// Chaos harness hook: makes the trial at exactly `seed` panic,
    /// exercising quarantine, checkpointing, and resume under injected
    /// failure. Implies nothing by itself — pair with [`RunCtx::self_heal`]
    /// to let the sweep survive it.
    #[must_use]
    pub fn chaos_panic_seed(mut self, seed: u64) -> Self {
        self.chaos_panic_seed = Some(seed);
        self
    }

    /// Whether checkpoint I/O failed permanently and the run degraded to
    /// computing without persistence (records incomplete).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Marks the run degraded: checkpoint I/O is abandoned (the sweep
    /// keeps computing), and the caller is told records are incomplete.
    fn degrade(&self, what: &str, error: &std::io::Error) {
        eprintln!(
            "warning: {what}: {error}; continuing without checkpoints — records will be incomplete"
        );
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Starts a sweep: one table with the given `headers`, one campaign
    /// cell per [`Sweep::row`], identified for resume by the `section`
    /// caption.
    #[must_use]
    pub fn sweep<'ctx, 'a, A: Aggregate>(
        &'ctx self,
        section: impl Into<String>,
        headers: &[&str],
    ) -> Sweep<'ctx, 'a, A> {
        Sweep {
            ctx: self,
            section: section.into(),
            headers: headers.iter().map(|&h| h.to_string()).collect(),
            campaign: Campaign::new().shard_size(default_shard_size(self.scale)),
            rows: Vec::new(),
            renders: Vec::new(),
        }
    }

    /// Marks the start of experiment `id` (registry form, `"e9"`): loads
    /// resumable rows and opens the incremental checkpoint. Called by the
    /// experiment registry, not by experiments.
    ///
    /// Checkpoint I/O failures are retried with backoff; a persistent
    /// failure degrades the run (stderr warning, [`RunCtx::is_degraded`])
    /// instead of killing it — losing the records is better than losing
    /// the compute.
    pub fn begin_experiment(&self, id: &str) {
        if let Some(hub) = &self.hub {
            hub.set_label(id);
        }
        *self.current_id.lock().expect("current id lock") = id.to_string();
        if self.is_degraded() {
            return;
        }
        if let Some(store) = &self.store {
            let result = io_with_retry(|| {
                store
                    .lock()
                    .expect("record store lock")
                    .begin_experiment(id, self.scale)
            });
            if let Err(e) = result {
                self.degrade(&format!("cannot checkpoint {id}"), &e);
                return;
            }
            // Surface checkpoint rows the resume quarantined as damaged.
            let store = store.lock().expect("record store lock");
            for row in store.quarantined() {
                eprintln!(
                    "warning: quarantined checkpoint row {}:{} ({}); it will be re-run",
                    row.file.display(),
                    row.line,
                    row.reason
                );
            }
        }
    }

    /// Marks the end of an experiment: writes the final record file and
    /// removes the checkpoint. I/O failures retry, then degrade (stderr
    /// warning + [`RunCtx::is_degraded`]) rather than panic.
    pub fn finish_experiment(&self, report: &crate::ExperimentReport) {
        if self.is_degraded() {
            return;
        }
        if let Some(store) = &self.store {
            let result = io_with_retry(|| {
                store
                    .lock()
                    .expect("record store lock")
                    .finish_experiment(report, self.scale)
            });
            if let Err(e) = result {
                self.degrade(&format!("cannot finalize records for {}", report.id), &e);
            }
        }
    }

    /// Prints the final progress summary, if a hub is attached.
    pub fn finish_progress(&self) {
        if let Some(hub) = &self.hub {
            hub.finish();
        }
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    fn stored_row(&self, section: &str, row: usize) -> Option<Vec<String>> {
        self.store
            .as_ref()?
            .lock()
            .expect("record store lock")
            .stored_row(section, row)
    }

    fn record_row(&self, section: &str, headers: &[String], row: usize, cells: &[String]) {
        if self.is_degraded() {
            return;
        }
        if let Some(store) = &self.store {
            let result = io_with_retry(|| {
                store
                    .lock()
                    .expect("record store lock")
                    .record_row(section, headers, row, cells)
            });
            if let Err(e) = result {
                self.degrade(&format!("cannot checkpoint row {row} of {section:?}"), &e);
            }
        }
    }

    /// Appends one metrics snapshot to the record store's side stream
    /// (`metrics.jsonl`), when both a hub and a store are attached. Called
    /// at the end of every sweep, so the stream records the hub's
    /// evolution sweep by sweep and a resumed run can replay its metric
    /// history.
    fn checkpoint_metrics(&self) {
        let (Some(hub), Some(store)) = (&self.metrics, &self.store) else {
            return;
        };
        if self.is_degraded() {
            return;
        }
        let snapshot = hub.snapshot();
        let result = io_with_retry(|| {
            store
                .lock()
                .expect("record store lock")
                .record_snapshot(&snapshot)
        });
        if let Err(e) = result {
            self.degrade("cannot checkpoint metrics snapshot", &e);
        }
    }

    /// Reports trials the self-healing campaign quarantined: a stderr
    /// summary always, plus `kind: "quarantine"` JSONL records appended to
    /// `quarantine.jsonl` in the record directory when a store is attached.
    fn report_quarantined(&self, section: &str, entries: &[(usize, &Quarantined)]) {
        use std::io::Write as _;
        if entries.is_empty() {
            return;
        }
        let experiment = self
            .current_id
            .lock()
            .expect("current id lock")
            .to_uppercase();
        for (row, q) in entries {
            eprintln!(
                "warning: quarantined trial {} (seed {}) of {section:?} row {row} after {} attempts: {}",
                q.trial, q.seed, q.attempts, q.error
            );
        }
        let Some(store) = &self.store else {
            return;
        };
        let dir = store.lock().expect("record store lock").dir().to_path_buf();
        let result = io_with_retry(|| {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("quarantine.jsonl"))?;
            for (row, q) in entries {
                let record = quarantine_record(
                    &experiment,
                    &q.error,
                    vec![
                        ("section".into(), section.into()),
                        ("row".into(), (*row).into()),
                        ("trial".into(), q.trial.into()),
                        ("seed".into(), q.seed.into()),
                        ("attempts".into(), Json::UInt(u64::from(q.attempts))),
                    ],
                );
                writeln!(file, "{}", record.render())?;
            }
            file.flush()
        });
        if let Err(e) = result {
            self.degrade("cannot record quarantined trials", &e);
        }
    }
}

/// Runs a fallible I/O operation up to three times with a short backoff,
/// returning the last error if every attempt fails. Transient conditions
/// (NFS hiccup, `ENOSPC` racing a cleanup) get a second chance; persistent
/// ones degrade gracefully at the call sites.
fn io_with_retry(mut op: impl FnMut() -> std::io::Result<()>) -> std::io::Result<()> {
    let mut backoff = std::time::Duration::from_millis(10);
    let mut last = None;
    for attempt in 0..3 {
        match op() {
            Ok(()) => return Ok(()),
            Err(e) => last = Some(e),
        }
        if attempt < 2 {
            std::thread::sleep(backoff);
            backoff *= 5;
        }
    }
    Err(last.expect("three failed attempts leave an error"))
}

/// Shard granularity by scale: quick sweeps have tiny cells, so shards of
/// the default size would serialize them; full sweeps amortize better.
fn default_shard_size(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 4,
        Scale::Full => DEFAULT_SHARD_SIZE,
    }
}

type RenderFn<'a, A> = Box<dyn FnOnce(A) -> Vec<String> + Send + 'a>;

/// One table's worth of measurements, scheduled as a single campaign.
///
/// Each [`Sweep::row`] is one campaign cell; rows already present in a
/// resumed record store are replayed without scheduling anything. The
/// sweep renders into a [`Table`] whose rows arrive in declaration order.
pub struct Sweep<'ctx, 'a, A: Aggregate> {
    ctx: &'ctx RunCtx,
    section: String,
    headers: Vec<String>,
    campaign: Campaign<'a, A>,
    rows: Vec<Option<Vec<String>>>,
    renders: Vec<(usize, Option<RenderFn<'a, A>>)>,
}

impl<'ctx, 'a, A: Aggregate> Sweep<'ctx, 'a, A> {
    /// Overrides the trials-per-shard granularity for this sweep. The
    /// decomposition is a pure function of `(trials, shard_size)`, so this
    /// changes load-balancing — never results (for associative aggregates)
    /// or merge order.
    #[must_use]
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.campaign = self.campaign.shard_size(shard_size);
        self
    }

    /// Declares the next table row: `trials` trials over `seeds`, folded
    /// into the aggregate built by `make` via `run`, rendered to table
    /// cells by `render` once the row's last shard merges.
    pub fn row(
        &mut self,
        trials: usize,
        seeds: SeedStream,
        make: impl Fn() -> A + Send + Sync + 'a,
        run: impl Fn(u64, &mut A) + Send + Sync + 'a,
        render: impl FnOnce(A) -> Vec<String> + Send + 'a,
    ) {
        let row_idx = self.rows.len();
        if let Some(stored) = self.ctx.stored_row(&self.section, row_idx) {
            self.rows.push(Some(stored));
            return;
        }
        self.rows.push(None);
        let chaos = self.ctx.chaos_panic_seed;
        let cell = self
            .campaign
            .push(Cell::new(trials, seeds, make, move |seed, acc: &mut A| {
                if chaos == Some(seed) {
                    panic!("chaos: injected panic at seed {seed}");
                }
                run(seed, acc);
            }));
        debug_assert_eq!(cell, self.renders.len());
        self.renders.push((row_idx, Some(Box::new(render))));
    }

    /// A row computed without trials (pure math / theory columns): always
    /// recomputed inline, deterministic and effectively free, so it needs
    /// no checkpoint.
    pub fn fixed_row(&mut self, cells: Vec<String>) {
        self.rows.push(Some(cells));
    }

    /// Runs the campaign and returns the completed table.
    ///
    /// # Panics
    ///
    /// Panics with [`SweepCancelled`] if the context's cancellation token
    /// fired before every row completed (completed rows are already
    /// checkpointed); propagates trial panics.
    #[must_use = "the sweep's table is its output"]
    pub fn run(self) -> Table {
        let Sweep {
            ctx,
            section,
            headers,
            campaign,
            rows,
            renders,
        } = self;
        if let Some(hub) = &ctx.hub {
            hub.begin_campaign(campaign.total_trials());
        }
        let mut campaign = campaign.cancel_token(ctx.cancel.clone());
        if let Some(workers) = ctx.workers {
            campaign = campaign.workers(workers);
        }
        if let Some(attempts) = ctx.heal_attempts {
            campaign = campaign.self_heal(attempts);
        }
        if let Some(hub) = &ctx.hub {
            campaign = campaign.progress(hub.clone());
        }
        if let Some(hub) = &ctx.metrics {
            campaign = campaign.telemetry(hub.clone());
        }
        let mut rows = rows;
        let mut renders = renders;
        let outcome = campaign.run(|cell, acc| {
            let (row_idx, render) = &mut renders[cell];
            let row_idx = *row_idx;
            let render = render.take().expect("each cell delivers once");
            let cells = render(acc);
            ctx.record_row(&section, &headers, row_idx, &cells);
            rows[row_idx] = Some(cells);
        });
        if let Some(hub) = &ctx.hub {
            hub.end_campaign();
        }
        let quarantined: Vec<(usize, &Quarantined)> = outcome
            .quarantined
            .iter()
            .map(|q| (renders[q.cell].0, q))
            .collect();
        ctx.report_quarantined(&section, &quarantined);
        ctx.checkpoint_metrics();
        for shard in &outcome.stuck_shards {
            eprintln!(
                "warning: shard {shard} of {section:?} exceeded its deadline; campaign cancelled"
            );
        }
        if outcome.cancelled && rows.iter().any(Option::is_none) {
            std::panic::panic_any(SweepCancelled);
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for row in rows {
            let cells = row.expect("uncancelled sweep delivered every row");
            let cell_refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            table.row(&cell_refs);
        }
        table
    }
}

/// A campaign-scoped running total folded into a run-wide base when the
/// campaign ends. Progress events carry per-campaign running totals (so a
/// dropped event costs granularity, never accuracy), which makes the
/// live update a `fetch_max`, not an increment.
#[derive(Default)]
struct FoldedTotal {
    base: AtomicU64,
    current: AtomicU64,
}

impl FoldedTotal {
    fn observe(&self, running_total: u64) {
        self.current.fetch_max(running_total, Ordering::Relaxed);
    }

    fn fold(&self) {
        let n = self.current.swap(0, Ordering::Relaxed);
        self.base.fetch_add(n, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.base.load(Ordering::Relaxed) + self.current.load(Ordering::Relaxed)
    }
}

/// The unified progress channel: one throttled stderr line covering every
/// campaign the context runs, with a cumulative trial rate and an ETA for
/// the trials known so far — interleaved cells can no longer garble the
/// output, because the campaign reports through a single sink.
///
/// When the run self-heals, the line grows a `heal: rX qY wZ` segment:
/// `r` trials retried, `q` seeds quarantined, `w` stuck-shard watchdog
/// firings, cumulative across every campaign the context has run.
pub struct ProgressHub {
    started: Instant,
    label: Mutex<String>,
    /// Trials completed by campaigns that already finished.
    base_done: AtomicU64,
    /// Trials in all campaigns seen so far (finished + current).
    total_known: AtomicU64,
    /// Trials completed in the current campaign.
    current_done: AtomicU64,
    retries: FoldedTotal,
    quarantined: FoldedTotal,
    stuck: FoldedTotal,
    last_print: Mutex<Instant>,
}

impl ProgressHub {
    fn new() -> Self {
        let now = Instant::now();
        ProgressHub {
            started: now,
            label: Mutex::new(String::new()),
            base_done: AtomicU64::new(0),
            total_known: AtomicU64::new(0),
            current_done: AtomicU64::new(0),
            retries: FoldedTotal::default(),
            quarantined: FoldedTotal::default(),
            stuck: FoldedTotal::default(),
            last_print: Mutex::new(now - std::time::Duration::from_secs(1)),
        }
    }

    fn set_label(&self, label: &str) {
        *self.label.lock().expect("label lock") = label.to_string();
    }

    fn begin_campaign(&self, total: u64) {
        self.total_known.fetch_add(total, Ordering::Relaxed);
        self.current_done.store(0, Ordering::Relaxed);
    }

    fn end_campaign(&self) {
        let done = self.current_done.swap(0, Ordering::Relaxed);
        self.base_done.fetch_add(done, Ordering::Relaxed);
        self.retries.fold();
        self.quarantined.fold();
        self.stuck.fold();
    }

    /// The `heal: rX qY wZ` segment, empty while the run is healthy.
    fn heal_segment(&self) -> String {
        let (r, q, w) = (
            self.retries.total(),
            self.quarantined.total(),
            self.stuck.total(),
        );
        if r + q + w == 0 {
            String::new()
        } else {
            format!("  heal: r{r} q{q} w{w}")
        }
    }

    fn finish(&self) {
        let done = self.base_done.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        let rate = done as f64 / elapsed.max(1e-9);
        let heal = self.heal_segment();
        eprintln!("\r  done: {done} trials in {elapsed:.1}s ({rate:.0}/s){heal}        ");
    }

    fn print_line(&self) {
        let done =
            self.base_done.load(Ordering::Relaxed) + self.current_done.load(Ordering::Relaxed);
        let total = self.total_known.load(Ordering::Relaxed);
        let label = self.label.lock().expect("label lock").clone();
        let elapsed = self.started.elapsed().as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        let rate = done as f64 / elapsed.max(1e-9);
        #[allow(clippy::cast_precision_loss)]
        let eta = if rate > 0.0 && total > done {
            (total - done) as f64 / rate
        } else {
            0.0
        };
        let heal = self.heal_segment();
        eprint!("\r  {label}: {done}/{total} trials  {rate:.0}/s  ETA {eta:.0}s{heal}   ");
    }
}

impl ProgressSink for ProgressHub {
    fn on_trial(&self, done: u64, _total: u64) {
        self.current_done.store(done, Ordering::Relaxed);
        // Throttle: at most ~5 updates a second, whoever wins the lock.
        let Ok(mut last) = self.last_print.try_lock() else {
            return;
        };
        if last.elapsed().as_millis() < 200 {
            return;
        }
        *last = Instant::now();
        drop(last);
        self.print_line();
    }

    fn on_retry(&self, retries: u64) {
        self.retries.observe(retries);
    }

    fn on_quarantine(&self, quarantined: u64) {
        self.quarantined.observe(quarantined);
    }

    fn on_stuck(&self, stuck: u64) {
        self.stuck.observe(stuck);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        for seed in 0..20 {
            let s = sample_distinct(100, 50, seed);
            assert_eq!(s.len(), 50);
            let set: std::collections::HashSet<u64> = s.iter().copied().collect();
            assert_eq!(set.len(), 50, "seed {seed}: duplicates");
            assert!(s.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sample_distinct_full_universe_is_permutation() {
        let mut s = sample_distinct(10, 10, 3);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = sample_distinct(5, 6, 0);
    }

    #[test]
    fn sweep_renders_rows_in_declaration_order() {
        let ctx = RunCtx::new(Scale::Quick);
        let mut sweep = ctx.sweep::<Samples>("smoke", &["k", "mean"]);
        for k in 1u64..=3 {
            sweep.row(
                10,
                SeedStream::Offset(100 * k),
                Samples::default,
                move |seed, acc| acc.push(seed % (k + 1)),
                move |acc| vec![k.to_string(), format!("{:.2}", acc.0.finish().mean)],
            );
        }
        let table = sweep.run();
        assert_eq!(table.rows().len(), 3);
        assert_eq!(table.rows()[0][0], "1");
        assert_eq!(table.rows()[2][0], "3");
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let render_table = |workers: usize| {
            let ctx = RunCtx::new(Scale::Quick).workers(workers);
            let mut sweep = ctx.sweep::<Samples>("smoke", &["k", "mean", "p95"]);
            for k in 1u64..=4 {
                sweep.row(
                    33,
                    SeedStream::Derived(k),
                    Samples::default,
                    move |seed, acc| acc.push(seed.wrapping_mul(k) % 1000),
                    move |acc| {
                        let s = acc.0.finish();
                        vec![
                            k.to_string(),
                            format!("{:.3}", s.mean),
                            format!("{:.3}", s.p95),
                        ]
                    },
                );
            }
            format!("{}", sweep.run())
        };
        let one = render_table(1);
        for workers in [2, 3, 8] {
            assert_eq!(one, render_table(workers), "{workers} workers diverged");
        }
    }

    #[test]
    fn fixed_rows_interleave_with_measured_rows() {
        let ctx = RunCtx::new(Scale::Quick);
        let mut sweep = ctx.sweep::<Samples>("mix", &["k", "v"]);
        sweep.fixed_row(vec!["theory".into(), "1.00".into()]);
        sweep.row(
            5,
            SeedStream::Offset(0),
            Samples::default,
            |seed, acc| acc.push(seed),
            |acc| vec!["measured".into(), format!("{}", acc.0.count())],
        );
        sweep.fixed_row(vec!["theory2".into(), "2.00".into()]);
        let table = sweep.run();
        assert_eq!(table.rows()[0][0], "theory");
        assert_eq!(table.rows()[1][1], "5");
        assert_eq!(table.rows()[2][0], "theory2");
    }

    #[test]
    fn chaos_seed_is_quarantined_and_sweep_completes() {
        let ctx = RunCtx::new(Scale::Quick).self_heal(2).chaos_panic_seed(105);
        let mut sweep = ctx.sweep::<Samples>("chaos", &["k", "n"]);
        for k in 0u64..2 {
            sweep.row(
                10,
                SeedStream::Offset(100 * (k + 1)),
                Samples::default,
                move |seed, acc| acc.push(seed),
                move |acc| vec![k.to_string(), acc.0.count().to_string()],
            );
        }
        let table = sweep.run();
        // Row 0 covers seeds 100..110 and loses exactly the poisoned one;
        // row 1 (seeds 200..210) is untouched.
        assert_eq!(table.rows()[0][1], "9");
        assert_eq!(table.rows()[1][1], "10");
        assert!(!ctx.is_degraded());
    }

    // The seed-naming message is printed by the worker thread; the scope
    // re-panics with its own payload, so only the panic itself is asserted.
    #[test]
    #[should_panic]
    fn chaos_seed_without_self_heal_stays_loud() {
        let ctx = RunCtx::new(Scale::Quick).workers(1).chaos_panic_seed(105);
        let mut sweep = ctx.sweep::<Samples>("chaos", &["n"]);
        sweep.row(
            10,
            SeedStream::Offset(100),
            Samples::default,
            |seed, acc| acc.push(seed),
            |acc| vec![acc.0.count().to_string()],
        );
        let _ = sweep.run();
    }

    #[test]
    fn self_heal_keeps_panic_free_sweeps_bit_identical() {
        let render = |heal: bool| {
            let ctx = RunCtx::new(Scale::Quick);
            let ctx = if heal { ctx.self_heal(2) } else { ctx };
            let mut sweep = ctx.sweep::<Samples>("same", &["mean", "p95"]);
            sweep.row(
                40,
                SeedStream::Derived(7),
                Samples::default,
                |seed, acc| acc.push(seed % 977),
                |acc| {
                    let s = acc.0.finish();
                    vec![format!("{:.6}", s.mean), format!("{:.6}", s.p95)]
                },
            );
            format!("{}", sweep.run())
        };
        assert_eq!(render(false), render(true));
    }

    #[test]
    fn checkpoint_failure_degrades_instead_of_panicking() {
        // A store whose directory is swept away mid-run: every write fails,
        // the run keeps going, and the context reports degradation.
        let dir = std::env::temp_dir().join("contention-runner-test-degraded");
        let _ = std::fs::remove_dir_all(&dir);
        let store = RecordStore::create(dir.join("records")).unwrap();
        let ctx = RunCtx::new(Scale::Quick).record_store(store);
        let _ = std::fs::remove_dir_all(&dir);
        ctx.begin_experiment("e99");
        assert!(ctx.is_degraded(), "begin on a dead store must degrade");
        let mut sweep = ctx.sweep::<Samples>("s", &["n"]);
        sweep.row(
            5,
            SeedStream::Offset(0),
            Samples::default,
            |seed, acc| acc.push(seed),
            |acc| vec![acc.0.count().to_string()],
        );
        let table = sweep.run();
        assert_eq!(table.rows()[0][0], "5", "compute must survive degradation");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_hub_observes_sweeps_without_changing_them() {
        let render = |hub: Option<Arc<MetricsHub>>| {
            let mut ctx = RunCtx::new(Scale::Quick).workers(3);
            if let Some(hub) = hub {
                ctx = ctx.metrics_hub(hub);
            }
            let mut sweep = ctx.sweep::<Samples>("observed", &["k", "mean"]);
            for k in 1u64..=3 {
                sweep.row(
                    20,
                    SeedStream::Derived(k),
                    Samples::default,
                    move |seed, acc| acc.push(seed.wrapping_mul(k) % 503),
                    move |acc| vec![k.to_string(), format!("{:.4}", acc.0.finish().mean)],
                );
            }
            format!("{}", sweep.run())
        };
        let bare = render(None);
        let hub = Arc::new(MetricsHub::new(3));
        let observed = render(Some(hub.clone()));
        assert_eq!(bare, observed, "attaching the hub changed the table");
        let snapshot = hub.snapshot();
        assert_eq!(snapshot.registry.counter("campaign_trials_done_total"), 60);
        assert_eq!(
            snapshot.registry.counter("campaign_cells_delivered_total"),
            3
        );
    }

    #[test]
    fn sweep_checkpoints_a_metrics_snapshot_per_run() {
        let dir = std::env::temp_dir().join("contention-runner-test-metrics");
        let _ = std::fs::remove_dir_all(&dir);
        let hub = Arc::new(MetricsHub::new(2));
        let store = RecordStore::create(&dir).unwrap();
        let metrics_path = store.metrics_path();
        let ctx = RunCtx::new(Scale::Quick)
            .workers(2)
            .metrics_hub(hub.clone())
            .record_store(store);
        ctx.begin_experiment("e1");
        for pass in 0..2u64 {
            let mut sweep = ctx.sweep::<Samples>(format!("pass{pass}"), &["n"]);
            sweep.row(
                8,
                SeedStream::Offset(100 * pass),
                Samples::default,
                |seed, acc| acc.push(seed),
                |acc| vec![acc.0.count().to_string()],
            );
            let _ = sweep.run();
        }
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one snapshot per finished sweep");
        for (i, line) in lines.iter().enumerate() {
            let snap = mac_sim::MetricsSnapshot::from_json(&Json::parse(line).unwrap()).unwrap();
            assert_eq!(snap.seq, i as u64, "snapshots are numbered in order");
        }
        let last = mac_sim::MetricsSnapshot::from_json(&Json::parse(lines[1]).unwrap()).unwrap();
        assert_eq!(last.registry.counter("campaign_trials_done_total"), 16);
        assert!(!ctx.is_degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn folded_totals_accumulate_across_campaigns() {
        let t = FoldedTotal::default();
        t.observe(3);
        t.observe(2); // a late event with a smaller running total is a no-op
        assert_eq!(t.total(), 3);
        t.fold();
        t.observe(4);
        assert_eq!(t.total(), 7);
    }

    #[test]
    fn progress_hub_renders_heal_state_only_when_unhealthy() {
        let hub = ProgressHub::new();
        assert_eq!(hub.heal_segment(), "");
        hub.on_retry(2);
        hub.on_quarantine(1);
        hub.on_stuck(1);
        assert_eq!(hub.heal_segment(), "  heal: r2 q1 w1");
    }

    #[test]
    fn cell_parsers_round_trip() {
        assert!((cell_f64("1.25") - 1.25).abs() < 1e-12);
        assert!((cell_f64("37%") - 37.0).abs() < 1e-12);
        assert_eq!(cell_u64(" 42 "), 42);
    }

    #[test]
    #[should_panic(expected = "is not numeric")]
    fn cell_f64_rejects_labels() {
        let _ = cell_f64("2^10");
    }
}
