//! # contention-harness — the experiment suite
//!
//! The paper is a theory paper: its "results" are theorem bounds, not
//! benchmark tables. This crate regenerates every one of those bounds
//! empirically — each experiment sweeps a workload, measures rounds on the
//! `mac-sim` substrate, and prints the paper-vs-measured rows recorded in
//! `EXPERIMENTS.md`. See DESIGN.md §3 for the experiment ↔ claim index.
//!
//! | Experiment | Claim |
//! |---|---|
//! | [`experiments::e01_two_active_vs_n`] | Thm 1 round scaling in `n` |
//! | [`experiments::e02_two_active_vs_c`] | Thm 1 round scaling in `C` |
//! | [`experiments::e03_rename_geometric`] | Lemma 2 geometric tail |
//! | [`experiments::e04_split_check`] | Lemma 3 deterministic search cost |
//! | [`experiments::e05_reduce`] | Thm 5 survivor bound |
//! | [`experiments::e06_id_reduction`] | Thm 6 / Lemmas 7–10 |
//! | [`experiments::e07_balls_in_bins`] | Lemma 9 bound |
//! | [`experiments::e08_leaf_election`] | Thm 17 / Lemma 16 |
//! | [`experiments::e09_full_vs_baselines`] | Thm 4 + §2 landscape |
//! | [`experiments::e10_lower_bound_ratio`] | Optimality vs the \[14\] bound |
//! | [`experiments::e11_two_vs_general`] | §4 vs §5 on `|A| = 2` |
//! | [`experiments::e12_wakeup`] | §3 staggered-start transform |
//! | [`experiments::e13_cohort_ablation`] | Coalescing-cohorts speed-up |
//! | [`experiments::e14_expected_time`] | §6: expected O(1) with ~lg n channels |
//! | [`experiments::e15_energy`] | transmission-energy landscape |
//! | [`experiments::e16_cd_modes`] | collision-detection model matrix |
//! | [`experiments::e17_serve_all`] | serving all contenders (conflict resolution) |
//! | [`experiments::e18_fault_thresholds`] | breakdown thresholds under injected faults |
//!
//! Run them all with the `repro` binary:
//!
//! ```text
//! cargo run --release -p contention-harness --bin repro -- --quick
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod record;
mod report;
mod runner;
mod scale;

pub use record::RecordStore;
pub use report::{ExperimentReport, Section};
pub use runner::{
    cell_f64, cell_u64, sample_distinct, ProgressHub, RunCtx, Samples, Sweep, SweepCancelled,
};
pub use scale::Scale;
