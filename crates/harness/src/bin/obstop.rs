//! `obstop` — live TTY dashboard over a campaign's telemetry stream.
//!
//! ```text
//! obstop <record-dir | metrics.jsonl> [--interval MS] [--once]
//!
//!   <path>         a `repro --record-dir` directory (its `metrics.jsonl`
//!                  is tailed) or a snapshot JSONL file directly
//!   --interval MS  redraw period in milliseconds       (default: 1000)
//!   --once         render a single frame without clearing the screen and
//!                  exit — what CI uses to prove the dashboard renders
//! ```
//!
//! The dashboard is file-based: `repro --metrics-out ... --record-dir DIR`
//! appends one `kind: "snapshot"` record to `DIR/metrics.jsonl` per
//! finished sweep, and `obstop` re-reads the stream every interval. The
//! top lines summarise scheduler progress (trials, shards, queue depth,
//! self-heal state) with a throughput estimate from successive frames;
//! every histogram in the snapshot renders as a power-of-two-bucket
//! sparkline. A half-written trailing line (the writer is mid-append) is
//! skipped, never an error.
//!
//! Exit codes: 0 clean, 1 stream missing/empty under `--once`, 2 usage.

use mac_sim::obs::Json;
use mac_sim::{MetricsSnapshot, PowHistogram};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    path: PathBuf,
    interval: Duration,
    once: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<PathBuf> = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--interval needs a value")?
                    .parse()
                    .map_err(|e| format!("--interval: {e}"))?;
                if ms == 0 {
                    return Err("--interval must be at least 1ms".into());
                }
                interval = Duration::from_millis(ms);
            }
            "--once" => once = true,
            "--help" | "-h" => {
                println!("usage: obstop <record-dir | metrics.jsonl> [--interval MS] [--once]");
                std::process::exit(0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => {
                if path.replace(PathBuf::from(other)).is_some() {
                    return Err("obstop takes exactly one path".into());
                }
            }
        }
    }
    let mut path = path.ok_or("obstop needs a record dir or metrics.jsonl path")?;
    if path.is_dir() {
        path = path.join("metrics.jsonl");
    }
    Ok(Args {
        path,
        interval,
        once,
    })
}

/// Reads every parseable snapshot in the stream, in file order. The
/// writer appends and flushes line-atomically, but a reader can still
/// catch a torn tail on some filesystems; unparseable lines are skipped.
fn load_snapshots(path: &std::path::Path) -> Vec<MetricsSnapshot> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .filter_map(|line| MetricsSnapshot::from_json(&Json::parse(line).ok()?).ok())
        .collect()
}

/// Scales the histogram's power-of-two buckets into a fixed-width bar
/// strip. Wider-than-width bucket spans merge adjacent buckets, so the
/// shape survives at any scale.
fn sparkline(h: &PowHistogram, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let buckets = h.buckets();
    let (Some(&lo), Some(&hi)) = (buckets.keys().min(), buckets.keys().max()) else {
        return "—".to_string();
    };
    let span = (hi - lo + 1) as usize;
    let per_cell = span.div_ceil(width).max(1);
    let cells = span.div_ceil(per_cell);
    let mut counts = vec![0u64; cells];
    for (&bucket, &count) in buckets {
        counts[(bucket - lo) as usize / per_cell] += count;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                ' '
            } else {
                let idx = (c * (BARS.len() as u64 - 1)).div_ceil(peak) as usize;
                BARS[idx.min(BARS.len() - 1)]
            }
        })
        .collect()
}

/// Renders a nanosecond quantity at a human scale.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// One dashboard frame, rendered from the latest snapshot. `rate` is the
/// trials-per-second estimate from the previous frame, when one exists.
fn render(snap: &MetricsSnapshot, stream_len: usize, rate: Option<f64>, source: &str) -> String {
    let reg = &snap.registry;
    let counter = |name: &str| reg.counter(name);
    let gauge = |name: &str| reg.gauges().get(name).copied().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "obstop — {source}  (snapshot #{}, {} in stream)",
        snap.seq, stream_len
    );
    let _ = writeln!(
        out,
        "campaign   trials {}  cells {}  shards {}  queue {}  workers {}",
        counter("campaign_trials_done_total"),
        counter("campaign_cells_delivered_total"),
        counter("campaign_shards_claimed_total"),
        gauge("campaign_queue_depth"),
        gauge("campaign_workers"),
    );
    let queue = gauge("campaign_queue_depth");
    let workers = gauge("campaign_workers").max(1);
    let mean_shard_ns = reg
        .histograms()
        .get("campaign_shard_wall_ns")
        .map_or(0.0, PowHistogram::mean);
    #[allow(clippy::cast_precision_loss)]
    let eta = queue as f64 * mean_shard_ns / workers as f64 / 1e9;
    // A fresh or idle stream has no queue or no completed shard yet: there
    // is no estimate, and "ETA 0s" (or worse, inf/NaN) would lie about it.
    let eta = if queue == 0 || mean_shard_ns <= 0.0 || !eta.is_finite() {
        "—".to_string()
    } else {
        format!("{eta:.0}s")
    };
    match rate {
        Some(rate) if rate.is_finite() => {
            let _ = writeln!(out, "           rate {rate:.0} trials/s  ETA {eta}");
        }
        Some(_) => {
            let _ = writeln!(out, "           rate —  ETA {eta}");
        }
        None => {
            let _ = writeln!(out, "           ETA {eta} (queue × mean shard wall)");
        }
    }
    let _ = writeln!(
        out,
        "heal       retried {}  quarantined {}  events dropped {}",
        counter("campaign_trials_retried_total"),
        counter("campaign_trials_quarantined_total"),
        counter("campaign_progress_dropped_total"),
    );
    // Everything the summary lines above did not consume, grouped so the
    // engine/session/fault layers read as their own blocks.
    let shown = [
        "campaign_trials_done_total",
        "campaign_cells_delivered_total",
        "campaign_shards_claimed_total",
        "campaign_trials_retried_total",
        "campaign_trials_quarantined_total",
        "campaign_progress_dropped_total",
        "campaign_worker_busy_ns_total",
    ];
    let rest: Vec<(&String, &u64)> = reg
        .counters()
        .iter()
        .filter(|(name, _)| !shown.contains(&name.as_str()))
        .collect();
    let busy = counter("campaign_worker_busy_ns_total");
    if !rest.is_empty() || busy > 0 {
        let _ = writeln!(out, "counters");
        for (name, value) in rest {
            let _ = writeln!(out, "  {name:<44} {value}");
        }
        if busy > 0 {
            #[allow(clippy::cast_precision_loss)]
            let _ = writeln!(
                out,
                "  {:<44} {}",
                "campaign_worker_busy_ns_total",
                fmt_ns(busy as f64)
            );
        }
    }
    if !reg.histograms().is_empty() {
        let _ = writeln!(out, "histograms");
        for (name, h) in reg.histograms() {
            let mean = if h.count() == 0 {
                "—".to_string()
            } else if name.contains("_ns") {
                fmt_ns(h.mean())
            } else {
                format!("{:.1}", h.mean())
            };
            let _ = writeln!(
                out,
                "  {name:<34} n={:<7} mean={mean:<9} |{}|",
                h.count(),
                sparkline(h, 32)
            );
        }
    }
    out
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let source = args.path.display().to_string();
    let mut prev: Option<(Instant, u64)> = None;
    loop {
        let snapshots = load_snapshots(&args.path);
        match snapshots.last() {
            Some(snap) => {
                let done = snap.registry.counter("campaign_trials_done_total");
                #[allow(clippy::cast_precision_loss)]
                let rate = prev.map(|(at, was)| {
                    let dt = at.elapsed().as_secs_f64().max(1e-9);
                    done.saturating_sub(was) as f64 / dt
                });
                prev = Some((Instant::now(), done));
                let frame = render(snap, snapshots.len(), rate, &source);
                if args.once {
                    print!("{frame}");
                } else {
                    // Clear, home, draw: one flicker-free frame per interval.
                    print!("\x1b[2J\x1b[H{frame}");
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
            }
            None if args.once => {
                eprintln!("obstop: no snapshots in {source}");
                std::process::exit(1);
            }
            None => {
                print!("\x1b[2J\x1b[Hobstop — {source}  (waiting for snapshots)\r\n");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
        }
        if args.once {
            return;
        }
        std::thread::sleep(args.interval);
    }
}
