//! `obsdiff` — record, validate, and diff structured run-record files.
//!
//! ```text
//! obsdiff record <out.jsonl> [--trials N] [--seed S] [--channels C]
//!                            [--log2n K] [--active A]
//!     run the deterministic full-algorithm probe and write a record file
//!     (manifest line + one trial record per seed)
//!
//! obsdiff check <file.jsonl>...
//!     validate every line of every file against the record schema
//!
//! obsdiff diff <a.jsonl> <b.jsonl> [--round-pct P] [--energy-pct P]
//!                                  [--cell-pct P] [--wall-pct P]
//!     compare two record files: per-phase round-count deltas, energy
//!     deltas, and table-cell deltas are flagged beyond their thresholds
//!     (default 0 — deterministic fields must match exactly); wall-clock
//!     deltas are informational unless --wall-pct is given
//!
//! obsdiff trend <a.jsonl> <b.jsonl> [--mean-pct P]
//!     compare two telemetry streams (`metrics.jsonl` snapshot files
//!     and/or `BENCH_*.json` exports): the last snapshot of each stream is
//!     diffed metric by metric — deterministic counters and histogram
//!     shapes must match exactly, wall-clock and scheduling-dependent
//!     metrics are informational — and bench mean_ns moves are
//!     informational unless --mean-pct gates them
//! ```
//!
//! Exit codes: 0 clean, 1 flagged regressions / invalid records, 2 usage.
//!
//! See `docs/OBSERVABILITY.md` for the schema and the CI wiring.

use contention::{FullAlgorithm, Params};
use contention_harness::record::{self, validate_record};
use mac_sim::obs::{Json, RunManifest, RunRecord};
use mac_sim::trials::run_trials_recorded;
use mac_sim::{Engine, MetricsSnapshot, SimConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("trend") => cmd_trend(&args[1..]),
        Some("--help" | "-h") | None => {
            eprintln!(
                "usage: obsdiff record <out.jsonl> [--trials N] [--seed S] [--channels C] \
                 [--log2n K] [--active A]\n       obsdiff check <file.jsonl>...\n       \
                 obsdiff diff <a.jsonl> <b.jsonl> [--round-pct P] [--energy-pct P] \
                 [--cell-pct P] [--wall-pct P]\n       \
                 obsdiff trend <a.jsonl> <b.jsonl> [--mean-pct P]"
            );
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("unknown subcommand: {other}");
            ExitCode::from(2)
        }
    }
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            let value = iter.next().ok_or(format!("{flag} needs a value"))?;
            return value
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("{flag}: cannot parse '{value}'"));
        }
    }
    Ok(None)
}

fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg.starts_with("--") {
            let _ = iter.next(); // every flag takes one value
        } else {
            out.push(arg);
        }
    }
    out
}

// --- record ----------------------------------------------------------------

fn cmd_record(args: &[String]) -> ExitCode {
    let run = || -> Result<PathBuf, String> {
        let pos = positionals(args);
        let out = pos.first().ok_or("record needs an output path")?;
        let out = PathBuf::from(out);
        let trials: usize = parse_flag(args, "--trials")?.unwrap_or(5);
        let seed: u64 = parse_flag(args, "--seed")?.unwrap_or(11);
        let channels: u32 = parse_flag(args, "--channels")?.unwrap_or(16);
        let log2n: u32 = parse_flag(args, "--log2n")?.unwrap_or(10);
        let n = 1u64 << log2n;
        let active: usize = parse_flag(args, "--active")?.unwrap_or(64);

        let config = SimConfig::new(channels).seed(seed).max_rounds(10_000_000);
        let mut manifest = RunManifest::new("full-algorithm", &config)
            .n(n)
            .active(active as u64)
            .crate_version("contention-harness", env!("CARGO_PKG_VERSION"))
            .extra("trials", trials.to_string())
            .extra("params", "practical");
        if let Some(rev) = record::git_rev() {
            manifest = manifest.git_rev(rev);
        }

        let pairs = run_trials_recorded(trials, seed, |s| {
            let mut engine = Engine::new(SimConfig::new(channels).seed(s).max_rounds(10_000_000));
            for _ in 0..active {
                engine.add_node(FullAlgorithm::new(Params::practical(), channels, n));
            }
            engine
        });
        let mut lines = vec![manifest.to_jsonl_line()];
        lines.extend(pairs.iter().map(|(_, rec)| rec.to_jsonl_line()));
        record::write_jsonl(&out, &lines).map_err(|e| format!("write {}: {e}", out.display()))?;
        Ok(out)
    };
    match run() {
        Ok(out) => {
            eprintln!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obsdiff record: {e}");
            ExitCode::from(2)
        }
    }
}

// --- check -----------------------------------------------------------------

fn cmd_check(args: &[String]) -> ExitCode {
    let files = positionals(args);
    if files.is_empty() {
        eprintln!("obsdiff check: no files given");
        return ExitCode::from(2);
    }
    let mut bad = 0usize;
    let mut records = 0usize;
    for file in files {
        let path = Path::new(file);
        match record::load_jsonl(path) {
            Ok(parsed) => {
                for (idx, value) in parsed.iter().enumerate() {
                    records += 1;
                    if let Err(e) = validate_record(value) {
                        eprintln!("{}:{}: {e}", path.display(), idx + 1);
                        bad += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                bad += 1;
            }
        }
    }
    if bad == 0 {
        eprintln!("ok: {records} records valid");
        ExitCode::SUCCESS
    } else {
        eprintln!("{bad} invalid");
        ExitCode::FAILURE
    }
}

// --- diff ------------------------------------------------------------------

/// Classified contents of one record file.
#[derive(Default)]
struct RecordFile {
    trials: Vec<RunRecord>,
    cells: Vec<Json>,
    benches: Vec<Json>,
}

fn classify(path: &Path) -> Result<RecordFile, String> {
    let mut out = RecordFile::default();
    for value in record::load_jsonl(path)? {
        validate_record(&value).map_err(|e| format!("{}: {e}", path.display()))?;
        match value.get("kind").and_then(Json::as_str) {
            Some("trial") => out.trials.push(RunRecord::from_json(&value)?),
            Some("cell") => out.cells.push(value),
            Some("bench") => out.benches.push(value),
            _ => {} // manifests carry provenance, not comparable results
        }
    }
    Ok(out)
}

/// Accumulates comparison outcomes and renders the flagged/ok tally.
struct DiffReport {
    flagged: usize,
    ok: usize,
}

impl DiffReport {
    /// Compares `a` vs `b` under a percentage threshold; prints and counts
    /// a FLAG beyond it, stays silent (but counted) within it.
    fn compare(&mut self, what: &str, a: f64, b: f64, pct: f64) {
        let base = a.abs().max(1e-9);
        let delta_pct = (b - a).abs() / base * 100.0;
        if delta_pct > pct {
            println!("FLAG {what}: {a} -> {b} ({delta_pct:+.1}% > {pct}%)");
            self.flagged += 1;
        } else {
            self.ok += 1;
        }
    }

    /// Reports a wall-clock delta: informational unless a threshold is set.
    fn compare_wall(&mut self, what: &str, a: u64, b: u64, pct: Option<f64>) {
        let base = (a as f64).max(1.0);
        let delta_pct = (b as f64 - a as f64) / base * 100.0;
        match pct {
            Some(p) if delta_pct.abs() > p => {
                println!("FLAG {what}: wall {a}ns -> {b}ns ({delta_pct:+.1}% > {p}%)");
                self.flagged += 1;
            }
            Some(_) => self.ok += 1,
            None => println!("info {what}: wall {a}ns -> {b}ns ({delta_pct:+.1}%)"),
        }
    }

    fn missing(&mut self, what: &str, side: &str) {
        println!("FLAG {what}: only present in {side}");
        self.flagged += 1;
    }
}

fn diff_trials(a: &[RunRecord], b: &[RunRecord], args: &DiffArgs, report: &mut DiffReport) {
    for ra in a {
        let Some(rb) = b.iter().find(|r| r.seed == ra.seed) else {
            report.missing(&format!("trial seed={}", ra.seed), "A");
            continue;
        };
        let id = format!("trial seed={}", ra.seed);
        report.compare(
            &format!("{id} rounds"),
            ra.rounds as f64,
            rb.rounds as f64,
            args.round_pct,
        );
        report.compare(
            &format!("{id} energy(tx)"),
            ra.transmissions as f64,
            rb.transmissions as f64,
            args.energy_pct,
        );
        report.compare(
            &format!("{id} energy(rx)"),
            ra.listens as f64,
            rb.listens as f64,
            args.energy_pct,
        );
        report.compare(
            &format!("{id} max-node-tx"),
            ra.max_node_transmissions as f64,
            rb.max_node_transmissions as f64,
            args.energy_pct,
        );
        let mut labels: Vec<&str> = ra
            .phase_node_rounds
            .iter()
            .chain(&rb.phase_node_rounds)
            .map(|(l, _)| l.as_str())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        for label in labels {
            report.compare(
                &format!("{id} phase[{label}] node-rounds"),
                ra.node_rounds(label) as f64,
                rb.node_rounds(label) as f64,
                args.round_pct,
            );
            report.compare(
                &format!("{id} phase[{label}] tx"),
                ra.phase_tx(label) as f64,
                rb.phase_tx(label) as f64,
                args.energy_pct,
            );
        }
        report.compare_wall(&id, ra.wall_ns, rb.wall_ns, args.wall_pct);
    }
    for rb in b {
        if !a.iter().any(|r| r.seed == rb.seed) {
            report.missing(&format!("trial seed={}", rb.seed), "B");
        }
    }
}

fn cell_key(cell: &Json) -> String {
    format!(
        "cell {}/{}#{}",
        cell.get("experiment").and_then(Json::as_str).unwrap_or("?"),
        cell.get("section").and_then(Json::as_str).unwrap_or("?"),
        cell.get("row").and_then(Json::as_u64).unwrap_or(0),
    )
}

fn diff_cells(a: &[Json], b: &[Json], args: &DiffArgs, report: &mut DiffReport) {
    let same_key = |x: &Json, y: &Json| cell_key(x) == cell_key(y);
    for ca in a {
        let Some(cb) = b.iter().find(|c| same_key(ca, c)) else {
            report.missing(&cell_key(ca), "A");
            continue;
        };
        let key = cell_key(ca);
        let (Some(va), Some(vb)) = (
            ca.get("values").and_then(Json::as_obj),
            cb.get("values").and_then(Json::as_obj),
        ) else {
            continue;
        };
        for (column, value_a) in va {
            let Some(value_b) = vb.iter().find(|(c, _)| c == column).map(|(_, v)| v) else {
                report.missing(&format!("{key} [{column}]"), "A");
                continue;
            };
            match (value_a.as_f64(), value_b.as_f64()) {
                (Some(x), Some(y)) => {
                    report.compare(&format!("{key} [{column}]"), x, y, args.cell_pct);
                }
                _ => {
                    // Non-numeric columns (keys, winner names): exact match
                    // in strict mode, informational under a loose threshold.
                    if value_a == value_b {
                        report.ok += 1;
                    } else if args.cell_pct == 0.0 {
                        println!(
                            "FLAG {key} [{column}]: {} -> {}",
                            value_a.render(),
                            value_b.render()
                        );
                        report.flagged += 1;
                    } else {
                        println!(
                            "info {key} [{column}]: {} -> {}",
                            value_a.render(),
                            value_b.render()
                        );
                    }
                }
            }
        }
    }
    for cb in b {
        if !a.iter().any(|c| same_key(c, cb)) {
            report.missing(&cell_key(cb), "B");
        }
    }
}

fn diff_benches(a: &[Json], b: &[Json], args: &DiffArgs, report: &mut DiffReport) {
    let name = |j: &Json| {
        j.get("name")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    for ba in a {
        let Some(bb) = b.iter().find(|x| name(x) == name(ba)) else {
            report.missing(&format!("bench {}", name(ba)), "A");
            continue;
        };
        let (Some(x), Some(y)) = (
            ba.get("mean_ns").and_then(Json::as_f64),
            bb.get("mean_ns").and_then(Json::as_f64),
        ) else {
            continue;
        };
        // Bench means are wall-clock: never flagged without --wall-pct.
        report.compare_wall(
            &format!("bench {}", name(ba)),
            x as u64,
            y as u64,
            args.wall_pct,
        );
    }
    for bb in b {
        if !a.iter().any(|x| name(x) == name(bb)) {
            report.missing(&format!("bench {}", name(bb)), "B");
        }
    }
}

// --- trend -----------------------------------------------------------------

/// Telemetry contents of one trend input: the snapshot stream (in file
/// order) plus any bench records riding in the same file.
#[derive(Default)]
struct TrendFile {
    snapshots: Vec<MetricsSnapshot>,
    benches: Vec<Json>,
}

fn load_trend(path: &Path) -> Result<TrendFile, String> {
    let mut out = TrendFile::default();
    for value in record::load_jsonl(path)? {
        validate_record(&value).map_err(|e| format!("{}: {e}", path.display()))?;
        match value.get("kind").and_then(Json::as_str) {
            Some("snapshot") => out.snapshots.push(MetricsSnapshot::from_json(&value)?),
            Some("bench") => out.benches.push(value),
            _ => {} // trend reads telemetry; run records belong to `diff`
        }
    }
    Ok(out)
}

/// Metrics that legitimately move run to run: wall-clock tallies, and
/// scheduling artifacts of worker timing (drop counts, queue depth).
fn is_machine_dependent(name: &str) -> bool {
    name.contains("_ns") || name == "campaign_progress_dropped_total"
}

fn trend_snapshots(a: &MetricsSnapshot, b: &MetricsSnapshot, report: &mut DiffReport) {
    fn union<'a>(xa: Vec<&'a String>, xb: Vec<&'a String>) -> Vec<&'a String> {
        let mut names: Vec<&String> = xa.into_iter().chain(xb).collect();
        names.sort_unstable();
        names.dedup();
        names
    }
    let (ca, cb) = (a.registry.counters(), b.registry.counters());
    for name in union(ca.keys().collect(), cb.keys().collect()) {
        match (ca.get(name), cb.get(name)) {
            (Some(&x), Some(&y)) if x == y => report.ok += 1,
            (Some(&x), Some(&y)) if is_machine_dependent(name) => {
                println!("info counter {name}: {x} -> {y}");
                report.ok += 1;
            }
            (Some(&x), Some(&y)) => {
                println!("FLAG counter {name}: {x} -> {y} (deterministic counter drifted)");
                report.flagged += 1;
            }
            (a_side, _) => report.missing(
                &format!("counter {name}"),
                if a_side.is_some() { "A" } else { "B" },
            ),
        }
    }
    // Gauges describe the run's shape (worker count, queue depth): they
    // vary with the machine, so they inform but never flag.
    let (ga, gb) = (a.registry.gauges(), b.registry.gauges());
    for name in union(ga.keys().collect(), gb.keys().collect()) {
        let (x, y) = (ga.get(name), gb.get(name));
        if x != y {
            let show = |v: Option<&u64>| v.map_or("absent".to_string(), u64::to_string);
            println!("info gauge {name}: {} -> {}", show(x), show(y));
        }
        report.ok += 1;
    }
    let (ha, hb) = (a.registry.histograms(), b.registry.histograms());
    for name in union(ha.keys().collect(), hb.keys().collect()) {
        match (ha.get(name), hb.get(name)) {
            (Some(x), Some(y)) => {
                // Observation counts are deterministic even for wall-clock
                // histograms; the observed values only are machine-bound.
                if x.count() != y.count() {
                    println!(
                        "FLAG histogram {name}: count {} -> {}",
                        x.count(),
                        y.count()
                    );
                    report.flagged += 1;
                } else if !is_machine_dependent(name) && x.sum() != y.sum() {
                    println!("FLAG histogram {name}: sum {} -> {}", x.sum(), y.sum());
                    report.flagged += 1;
                } else {
                    report.ok += 1;
                }
            }
            (x, _) => report.missing(
                &format!("histogram {name}"),
                if x.is_some() { "A" } else { "B" },
            ),
        }
    }
}

fn cmd_trend(args: &[String]) -> ExitCode {
    let run = || -> Result<usize, String> {
        let pos = positionals(args);
        let [path_a, path_b] = pos.as_slice() else {
            return Err("trend needs exactly two telemetry files".into());
        };
        let mean_pct: Option<f64> = parse_flag(args, "--mean-pct")?;
        let a = load_trend(Path::new(path_a.as_str()))?;
        let b = load_trend(Path::new(path_b.as_str()))?;
        println!(
            "obsdiff trend: A={path_a} ({} snapshots, {} benches) vs B={path_b} ({}, {})",
            a.snapshots.len(),
            a.benches.len(),
            b.snapshots.len(),
            b.benches.len()
        );
        let mut report = DiffReport { flagged: 0, ok: 0 };
        match (a.snapshots.last(), b.snapshots.last()) {
            (Some(sa), Some(sb)) => trend_snapshots(sa, sb, &mut report),
            (Some(_), None) => report.missing("snapshot stream", "A"),
            (None, Some(_)) => report.missing("snapshot stream", "B"),
            (None, None) => {}
        }
        let bench_args = DiffArgs {
            round_pct: 0.0,
            energy_pct: 0.0,
            cell_pct: 0.0,
            wall_pct: mean_pct,
        };
        diff_benches(&a.benches, &b.benches, &bench_args, &mut report);
        println!(
            "summary: {} flagged, {} within thresholds",
            report.flagged, report.ok
        );
        Ok(report.flagged)
    };
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("obsdiff trend: {e}");
            ExitCode::from(2)
        }
    }
}

struct DiffArgs {
    round_pct: f64,
    energy_pct: f64,
    cell_pct: f64,
    wall_pct: Option<f64>,
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let run = || -> Result<usize, String> {
        let pos = positionals(args);
        let [path_a, path_b] = pos.as_slice() else {
            return Err("diff needs exactly two record files".into());
        };
        let diff_args = DiffArgs {
            round_pct: parse_flag(args, "--round-pct")?.unwrap_or(0.0),
            energy_pct: parse_flag(args, "--energy-pct")?.unwrap_or(0.0),
            cell_pct: parse_flag(args, "--cell-pct")?.unwrap_or(0.0),
            wall_pct: parse_flag(args, "--wall-pct")?,
        };
        let a = classify(Path::new(path_a.as_str()))?;
        let b = classify(Path::new(path_b.as_str()))?;
        println!(
            "obsdiff: A={path_a} ({} trials, {} cells, {} benches) vs B={path_b} ({}, {}, {})",
            a.trials.len(),
            a.cells.len(),
            a.benches.len(),
            b.trials.len(),
            b.cells.len(),
            b.benches.len()
        );
        let mut report = DiffReport { flagged: 0, ok: 0 };
        diff_trials(&a.trials, &b.trials, &diff_args, &mut report);
        diff_cells(&a.cells, &b.cells, &diff_args, &mut report);
        diff_benches(&a.benches, &b.benches, &diff_args, &mut report);
        println!(
            "summary: {} flagged, {} within thresholds",
            report.flagged, report.ok
        );
        Ok(report.flagged)
    };
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("obsdiff diff: {e}");
            ExitCode::from(2)
        }
    }
}
