//! `contend` — run one contention-resolution session from the command line.
//!
//! ```text
//! contend [--algo NAME] [--channels C] [--universe N] [--active K]
//!         [--seed S] [--trials T] [--trace] [--complete]
//!
//!   --algo      paper | supervised | two-active | tournament | descent |
//!               tree-split | willard | decay | multichannel-nocd |
//!               expected                         (default: paper)
//!               (`supervised` wraps the paper stack in restart-with-backoff
//!               recovery: 4 attempts, 250-round slices — see docs/ROBUSTNESS.md)
//!   --channels  number of channels C            (default: 64)
//!   --universe  universe size n                 (default: 4096)
//!   --active    activated nodes |A|             (default: 100)
//!   --seed      master seed                     (default: 0)
//!   --trials    run T seeded sessions (seed, seed+1, …) through the
//!               campaign scheduler and print streamed summary statistics
//!               instead of one run's story            (default: 1)
//!   --trace     print the channel-activity chart of the run
//!   --complete  run until every node terminates (default: stop at solve)
//!   --metrics   append the session-layer telemetry (runs, rounds, energy,
//!               solve-round histogram, supervised restarts) as Prometheus
//!               text exposition after the human-readable output
//! ```

use contention::session::{Algorithm, Session};
use contention::Params;
use contention_harness::Samples;
use mac_sim::campaign::{Campaign, Cell, SeedStream};
use mac_sim::MetricsHub;

struct Args {
    algo: Algorithm,
    channels: u32,
    universe: u64,
    active: usize,
    seed: u64,
    trials: usize,
    trace: bool,
    complete: bool,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        algo: Algorithm::Paper(Params::practical()),
        channels: 64,
        universe: 4096,
        active: 100,
        seed: 0,
        trials: 1,
        trace: false,
        complete: false,
        metrics: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--algo" => {
                args.algo = match value("--algo")?.as_str() {
                    "paper" => Algorithm::Paper(Params::practical()),
                    "supervised" => Algorithm::SupervisedPaper(
                        Params::practical(),
                        contention::RestartPolicy::new(250, 4),
                    ),
                    "paper-literal" => Algorithm::Paper(Params::paper()),
                    "two-active" => Algorithm::TwoActive,
                    "tournament" => Algorithm::CdTournament,
                    "descent" => Algorithm::BinaryDescent,
                    "tree-split" => Algorithm::TreeSplit,
                    "decay" => Algorithm::Decay,
                    "multichannel-nocd" => Algorithm::MultiChannelNoCd,
                    "expected" => Algorithm::ExpectedConstant,
                    "willard" => Algorithm::Willard,
                    other => return Err(format!("unknown algorithm: {other}")),
                };
            }
            "--channels" | "-c" => {
                args.channels = value("--channels")?
                    .parse()
                    .map_err(|e| format!("--channels: {e}"))?;
            }
            "--universe" | "-n" => {
                args.universe = value("--universe")?
                    .parse()
                    .map_err(|e| format!("--universe: {e}"))?;
            }
            "--active" | "-k" => {
                args.active = value("--active")?
                    .parse()
                    .map_err(|e| format!("--active: {e}"))?;
            }
            "--seed" | "-s" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--trials" | "-t" => {
                args.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
                if args.trials == 0 {
                    return Err("--trials must be at least 1".to_string());
                }
            }
            "--trace" => args.trace = true,
            "--complete" => args.complete = true,
            "--metrics" => args.metrics = true,
            "--help" | "-h" => {
                println!(
                    "usage: contend [--algo NAME] [--channels C] [--universe N] \
                     [--active K] [--seed S] [--trials T] [--trace] [--complete] \
                     [--metrics]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// Streamed multi-trial mode: `--trials T` schedules one campaign cell of
/// `T` seeded sessions (seed, seed+1, …) and folds every run into online
/// summaries — constant memory however many trials are requested, and the
/// same scheduler (and determinism contract) the experiment sweeps use.
fn run_trials(args: &Args) {
    type Agg = (Samples, Samples, Samples, u64);
    let hub = args.metrics.then(|| MetricsHub::new(1));
    let cell = Cell::new(
        args.trials,
        SeedStream::Offset(args.seed),
        Agg::default,
        |seed, acc: &mut Agg| {
            let session = Session::new(args.channels, args.universe)
                .algorithm(args.algo)
                .seed(seed)
                .run_to_completion(args.complete);
            let resolution = session.run(args.active).unwrap_or_else(|e| {
                eprintln!("error: trial with seed {seed} failed: {e}");
                std::process::exit(1);
            });
            if let Some(hub) = &hub {
                hub.with_shard(0, |reg| resolution.record_telemetry(reg));
            }
            if let Some(r) = resolution.report.rounds_to_solve() {
                acc.0.push(r);
                acc.3 += 1;
            }
            acc.1.push(resolution.report.metrics.transmissions);
            acc.2.push(resolution.report.metrics.listens);
        },
    );
    let mut campaign = Campaign::new();
    campaign.push(cell);
    let (rounds, tx, rx, solved) = campaign
        .run_collect()
        .pop()
        .expect("one cell yields one aggregate");

    println!(
        "{} trials: C={} n={} |A|={} seeds {}..{}",
        args.trials,
        args.channels,
        args.universe,
        args.active,
        args.seed,
        args.seed.wrapping_add(args.trials as u64)
    );
    println!("solved: {solved}/{}", args.trials);
    if solved > 0 {
        let r = rounds.0.finish();
        println!(
            "rounds to solve: mean {:.1}, p95 {:.1}, max {:.0}",
            r.mean, r.p95, r.max
        );
    }
    println!(
        "energy per trial: mean {:.1} transmissions, mean {:.1} listens",
        tx.0.finish().mean,
        rx.0.finish().mean
    );
    if let Some(hub) = &hub {
        print!("\n{}", hub.snapshot().render_prometheus());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if args.trials > 1 {
        run_trials(&args);
        return;
    }

    let session = Session::new(args.channels, args.universe)
        .algorithm(args.algo)
        .seed(args.seed)
        .trace(args.trace)
        .run_to_completion(args.complete);

    match session.run(args.active) {
        Ok(resolution) => {
            println!(
                "{}: C={} n={} |A|={} seed={}",
                resolution.algorithm, args.channels, args.universe, args.active, args.seed
            );
            match resolution.report.solved_round {
                Some(round) => println!("solved in round {round} ({} rounds)", round + 1),
                None => println!("run ended without a lone primary-channel transmission"),
            }
            if let Some(solver) = resolution.report.solver {
                println!("solving transmission by node {solver}");
            }
            println!(
                "energy: {} transmissions, {} listens",
                resolution.report.metrics.transmissions, resolution.report.metrics.listens
            );
            if resolution.restarts() > 0 {
                println!(
                    "supervision: solver restarted {} time(s), {} rounds spent in \
                     abandoned attempts",
                    resolution.restarts(),
                    resolution.restart_rounds()
                );
            }
            let mut phases: Vec<String> = resolution
                .report
                .metrics
                .phases
                .iter()
                .map(|(p, r)| format!("{p}={r}"))
                .collect();
            phases.sort();
            println!("rounds by phase: {}", phases.join(" "));
            if args.trace {
                println!("\nactivity (S silence, M message, X collision):");
                print!(
                    "{}",
                    mac_sim::render::activity_chart(&resolution.report.trace, 60)
                );
            }
            if args.metrics {
                let hub = MetricsHub::new(1);
                hub.with_shard(0, |reg| resolution.record_telemetry(reg));
                print!("\n{}", hub.snapshot().render_prometheus());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
