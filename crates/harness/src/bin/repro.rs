//! `repro` — regenerate every experiment table from the paper reproduction.
//!
//! ```text
//! repro [--quick] [ids...]
//!
//!   --quick            reduced trial counts / thinned grids (seconds, not minutes)
//!   --tsv              emit tab-separated tables (for plotting) instead of markdown
//!   --record-dir DIR   write one schema-versioned JSONL record file per experiment
//!                      (manifest + cell records) into DIR, checkpointing completed
//!                      rows incrementally as `<id>.jsonl.part`
//!   --resume DIR       like --record-dir DIR, but rows already recorded in DIR
//!                      (from a finished file or a killed run's checkpoint) are
//!                      replayed instead of re-run; output is bit-identical to an
//!                      uninterrupted run
//!   --progress         one throttled stderr line: campaign-wide trials/sec + ETA
//!   --workers N        pin the campaign worker-pool size (default: all cores)
//!   --deadline SECS    cooperative deadline; on expiry the sweep checkpoints and
//!                      exits with code 3 (resume later with --resume)
//!   --self-heal N      isolate panicking trials (N attempts each) instead of
//!                      crashing the sweep; deterministically-failing seeds are
//!                      quarantined into `<record-dir>/quarantine.jsonl`
//!   --chaos-panic-seed S
//!                      fault-inject the runner itself: the trial drawing seed S
//!                      panics on every attempt (implies --self-heal 2); used by
//!                      the CI chaos job to prove the sweep survives and
//!                      quarantines exactly that seed
//!   --metrics-out PATH attach a live metrics hub and write its final snapshot
//!                      to PATH as Prometheus text exposition; with --record-dir
//!                      or --resume, every finished sweep also appends one
//!                      `kind: "snapshot"` JSONL record to DIR/metrics.jsonl
//!                      (a resumed run continues the snapshot stream where the
//!                      killed run left off)
//!   ids                experiment ids to run, e.g. `e1 e9 e16`; default: all
//! ```
//!
//! Exit codes: 0 success, 1 record-dir open failure, 2 usage, 3 deadline
//! expiry (checkpointed; resume later), 4 completed but degraded (checkpoint
//! I/O failed mid-run; tables were computed but records are incomplete).
//!
//! All experiments run on the campaign scheduler (`mac_sim::campaign`):
//! one worker pool spans every cell of every sweep, results stream into
//! `O(1)`-memory aggregates, and completed table rows are checkpointed to
//! the record dir the moment they finish. See docs/CAMPAIGNS.md.

use contention_harness::{experiments, RecordStore, RunCtx, Scale, SweepCancelled};
use mac_sim::campaign::CancelToken;
use mac_sim::MetricsHub;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut tsv = false;
    let mut progress = false;
    let mut record_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut workers: Option<usize> = None;
    let mut deadline: Option<f64> = None;
    let mut self_heal: Option<u32> = None;
    let mut chaos_panic_seed: Option<u64> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    let dir_arg = |iter: &mut std::slice::Iter<String>, flag: &str| -> PathBuf {
        match iter.next() {
            Some(dir) => PathBuf::from(dir),
            None => {
                eprintln!("{flag} needs a path argument");
                std::process::exit(2);
            }
        }
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--tsv" => tsv = true,
            "--progress" => progress = true,
            "--record-dir" => record_dir = Some(dir_arg(&mut iter, "--record-dir")),
            "--resume" => {
                record_dir = Some(dir_arg(&mut iter, "--resume"));
                resume = true;
            }
            "--workers" => match iter.next().and_then(|w| w.parse().ok()) {
                Some(w) if w > 0 => workers = Some(w),
                _ => {
                    eprintln!("--workers needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--deadline" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(secs) if secs > 0.0 => deadline = Some(secs),
                _ => {
                    eprintln!("--deadline needs a positive number of seconds");
                    std::process::exit(2);
                }
            },
            "--self-heal" => match iter.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => self_heal = Some(n),
                _ => {
                    eprintln!("--self-heal needs a positive attempt count");
                    std::process::exit(2);
                }
            },
            "--metrics-out" => metrics_out = Some(dir_arg(&mut iter, "--metrics-out")),
            "--chaos-panic-seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(seed) => chaos_panic_seed = Some(seed),
                None => {
                    eprintln!("--chaos-panic-seed needs a u64 seed argument");
                    std::process::exit(2);
                }
            },
            "--list" => {
                for (id, title) in experiments::list() {
                    println!("{id:<5} {title}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--tsv] [--record-dir DIR | --resume DIR] \
                     [--progress] [--workers N] [--deadline SECS] [--self-heal N] \
                     [--chaos-panic-seed S] [--metrics-out PATH] [--list] [e1 e2 ... e21]"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    let mut ctx = RunCtx::new(scale);
    if let Some(w) = workers {
        ctx = ctx.workers(w);
    }
    if progress {
        ctx = ctx.progress();
    }
    let token = CancelToken::new();
    if let Some(secs) = deadline {
        token.set_deadline(Duration::from_secs_f64(secs));
    }
    ctx = ctx.cancel_token(token);
    if chaos_panic_seed.is_some() && self_heal.is_none() {
        // Chaos injection is only useful if the runner is allowed to heal.
        self_heal = Some(2);
    }
    if let Some(attempts) = self_heal {
        ctx = ctx.self_heal(attempts);
    }
    if let Some(seed) = chaos_panic_seed {
        ctx = ctx.chaos_panic_seed(seed);
    }
    let metrics_hub = metrics_out.as_ref().map(|_| {
        // One hub shard per campaign worker: the hot loop tallies into its
        // own shard, and shards merge only at snapshot time.
        let shards =
            workers.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
        Arc::new(MetricsHub::new(shards))
    });
    if let Some(hub) = &metrics_hub {
        ctx = ctx.metrics_hub(hub.clone());
    }
    if let Some(dir) = &record_dir {
        let store = if resume {
            RecordStore::resume(dir)
        } else {
            RecordStore::create(dir)
        };
        match store {
            Ok(store) => {
                if resume {
                    // Continue the snapshot stream where the killed run
                    // left off, so seq stays contiguous across resumes.
                    if let Some(hub) = &metrics_hub {
                        hub.set_seq(store.snapshot_count());
                    }
                }
                ctx = ctx.record_store(store);
            }
            Err(e) => {
                eprintln!("cannot open record dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    let write_metrics = |hub: &Arc<MetricsHub>| {
        if let Some(path) = &metrics_out {
            if let Err(e) = std::fs::write(path, hub.snapshot().render_prometheus()) {
                eprintln!("warning: cannot write metrics to {}: {e}", path.display());
            }
        }
    };

    // A deadline expiry unwinds out of the sweep with a `SweepCancelled`
    // payload; it is expected control flow, so silence the default hook's
    // backtrace chatter for exactly that payload.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<SweepCancelled>().is_none() {
            default_hook(info);
        }
    }));

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# Reproduction: Contention Resolution on Multiple Channels with Collision Detection (PODC 2016)\n"
    )
    .expect("stdout");
    writeln!(out, "_Scale: {scale:?}_\n").expect("stdout");

    let started = Instant::now();
    if ids.is_empty() {
        ids = experiments::list()
            .iter()
            .map(|(id, _)| (*id).into())
            .collect();
    }
    for id in &ids {
        if experiments::by_id(id).is_none() {
            eprintln!("unknown experiment id: {id} (valid: e1..e21)");
            std::process::exit(2);
        }
    }
    for id in &ids {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            experiments::run_one(id, &ctx)
        }));
        match run {
            Ok(Some(report)) => {
                if tsv {
                    for section in &report.sections {
                        writeln!(out, "# {} / {}", report.id, section.caption).expect("stdout");
                        writeln!(out, "{}", section.table.to_tsv()).expect("stdout");
                        writeln!(out).expect("stdout");
                    }
                } else {
                    writeln!(out, "{report}").expect("stdout");
                }
            }
            Ok(None) => unreachable!("ids were validated above"),
            Err(payload) if payload.downcast_ref::<SweepCancelled>().is_some() => {
                ctx.finish_progress();
                if let Some(hub) = &metrics_hub {
                    write_metrics(hub);
                }
                let dir = record_dir
                    .as_ref()
                    .map_or_else(|| "<record dir>".into(), |d| d.display().to_string());
                eprintln!(
                    "\ndeadline reached during {id}: completed rows are checkpointed in {dir}; \
                     rerun with `--resume {dir}` to finish bit-identically"
                );
                std::process::exit(3);
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    ctx.finish_progress();
    if let Some(hub) = &metrics_hub {
        write_metrics(hub);
    }
    writeln!(out, "\n_Total wall time: {:.1?}_", started.elapsed()).expect("stdout");
    if ctx.is_degraded() {
        // Every table above was still computed and printed, but checkpoint
        // I/O failed somewhere along the way: the record files are not a
        // faithful transcript. Distinct from exit 3 (deadline, resumable).
        eprintln!("warning: run completed degraded; record files are incomplete");
        std::process::exit(4);
    }
}
