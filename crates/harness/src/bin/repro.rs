//! `repro` — regenerate every experiment table from the paper reproduction.
//!
//! ```text
//! repro [--quick] [ids...]
//!
//!   --quick            reduced trial counts / thinned grids (seconds, not minutes)
//!   --tsv              emit tab-separated tables (for plotting) instead of markdown
//!   --record-dir DIR   also write one schema-versioned JSONL record file per
//!                      experiment (manifest + cell records) into DIR
//!   --progress         print trial throughput / ETA to stderr while running
//!   ids                experiment ids to run, e.g. `e1 e9 e16`; default: all
//! ```

use contention_harness::{experiments, record, Scale};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut tsv = false;
    let mut record_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--full" => scale = Scale::Full,
            "--tsv" => tsv = true,
            "--progress" => mac_sim::trials::enable_stderr_progress(),
            "--record-dir" => match iter.next() {
                Some(dir) => record_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--record-dir needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--list" => {
                for (id, title) in experiments::list() {
                    println!("{id:<5} {title}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--tsv] [--record-dir DIR] [--progress] [--list] [e1 e2 ... e18]"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(
        out,
        "# Reproduction: Contention Resolution on Multiple Channels with Collision Detection (PODC 2016)\n"
    )
    .expect("stdout");
    writeln!(out, "_Scale: {scale:?}_\n").expect("stdout");

    let started = Instant::now();
    let mut emit = |report: &contention_harness::ExperimentReport| {
        if tsv {
            for section in &report.sections {
                writeln!(out, "# {} / {}", report.id, section.caption).expect("stdout");
                writeln!(out, "{}", section.table.to_tsv()).expect("stdout");
                writeln!(out).expect("stdout");
            }
        } else {
            writeln!(out, "{report}").expect("stdout");
        }
        if let Some(dir) = &record_dir {
            let lines = record::experiment_records(report, scale);
            let path = dir.join(format!("{}.jsonl", report.id.to_lowercase()));
            if let Err(e) = record::write_jsonl(&path, &lines) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    };
    if ids.is_empty() {
        for report in experiments::run_all(scale) {
            emit(&report);
        }
    } else {
        for id in &ids {
            match experiments::by_id(id) {
                Some(runner) => emit(&runner(scale)),
                None => {
                    eprintln!("unknown experiment id: {id} (valid: e1..e18)");
                    std::process::exit(2);
                }
            }
        }
    }
    writeln!(out, "\n_Total wall time: {:.1?}_", started.elapsed()).expect("stdout");
}
