//! **E15** (extension) — transmission energy. Round complexity is the
//! paper's metric, but for the radio networks motivating the model, the
//! number of *transmissions* is the battery cost. This experiment measures
//! total and per-node transmissions for every algorithm at a common
//! configuration — a dimension on which the paper's knock-out design turns
//! out to be extremely frugal (most nodes only ever listen).

use contention::baselines::{BinaryDescent, CdTournament, Decay, MultiChannelNoCd};
use contention::extensions::ExpectedConstant;
use contention::{FullAlgorithm, Params};
use contention_analysis::{Summary, Table};
use mac_sim::obs::RunRecord;
use mac_sim::{CdMode, Engine, RunReport, SimConfig};
use std::collections::BTreeMap;

use super::seed_base;
use crate::{sample_distinct, ExperimentReport, Scale};
use mac_sim::trials::run_trials_recorded;

/// (rounds, total tx, max tx by one node, total listens) per trial.
type Energy = (u64, u64, u64, u64);

/// Energy digests now come from the structured [`RunRecord`] counters (the
/// span-model recorder), not the legacy `Metrics` fields; the
/// `recorded_energy_matches_legacy_metrics` test below pins the two
/// accountings to each other exactly.
fn digest(pairs: &[(RunReport, RunRecord)]) -> Vec<Energy> {
    pairs
        .iter()
        .map(|(report, record)| {
            (
                report.rounds_to_solve().expect("solved"),
                record.transmissions,
                record.max_node_transmissions,
                record.listens,
            )
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("E15", "Transmission energy: who pays for symmetry breaking");
    let (c, n, active) = (64u32, 1u64 << 14, 1024usize);
    let trials = scale.trials().min(40);

    let full_pairs = run_trials_recorded(trials, seed_base("e15f", 0, 0), |s| {
        let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        exec
    });

    let runs: Vec<(&str, Vec<Energy>)> = vec![
        ("this paper (pipeline)", digest(&full_pairs)),
        (
            "expected-O(1)",
            digest(&run_trials_recorded(trials, seed_base("e15x", 0, 0), |s| {
                let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
                for _ in 0..active {
                    exec.add_node(ExpectedConstant::new(c, n));
                }
                exec
            })),
        ),
        (
            "CD tournament",
            digest(&run_trials_recorded(trials, seed_base("e15t", 0, 0), |s| {
                let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
                for _ in 0..active {
                    exec.add_node(CdTournament::new());
                }
                exec
            })),
        ),
        (
            "binary descent",
            digest(&run_trials_recorded(trials, seed_base("e15d", 0, 0), |s| {
                let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
                for id in sample_distinct(n, active, s ^ 0x15) {
                    exec.add_node(BinaryDescent::new(id, n));
                }
                exec
            })),
        ),
        (
            "decay (no CD)",
            digest(&run_trials_recorded(trials, seed_base("e15y", 0, 0), |s| {
                let cfg = SimConfig::new(c)
                    .seed(s)
                    .cd_mode(CdMode::None)
                    .max_rounds(1_000_000);
                let mut exec = Engine::new(cfg);
                for _ in 0..active {
                    exec.add_node(Decay::new(n));
                }
                exec
            })),
        ),
        (
            "multi no-CD",
            digest(&run_trials_recorded(trials, seed_base("e15m", 0, 0), |s| {
                let cfg = SimConfig::new(c)
                    .seed(s)
                    .cd_mode(CdMode::None)
                    .max_rounds(1_000_000);
                let mut exec = Engine::new(cfg);
                for _ in 0..active {
                    exec.add_node(MultiChannelNoCd::new(c, n));
                }
                exec
            })),
        ),
    ];

    let mut table = Table::new(&[
        "algorithm",
        "rounds mean",
        "total tx mean",
        "tx per active node",
        "max tx by one node",
        "total rx mean",
    ]);
    for (name, energies) in &runs {
        let rounds = Summary::from_u64(&energies.iter().map(|e| e.0).collect::<Vec<_>>());
        let total = Summary::from_u64(&energies.iter().map(|e| e.1).collect::<Vec<_>>());
        let peak = Summary::from_u64(&energies.iter().map(|e| e.2).collect::<Vec<_>>());
        let rx = Summary::from_u64(&energies.iter().map(|e| e.3).collect::<Vec<_>>());
        table.row_owned(vec![
            (*name).to_string(),
            format!("{:.1}", rounds.mean),
            format!("{:.0}", total.mean),
            format!("{:.2}", total.mean / active as f64),
            format!("{:.1}", peak.mean),
            format!("{:.0}", rx.mean),
        ]);
    }
    report.section(
        format!("Energy at C = {c}, n = 2^14, |A| = {active} (until solve)"),
        table,
    );

    // Where the pipeline's energy actually goes: the recorder attributes
    // every transmission and acting round to the acting node's own phase,
    // so this breakdown stays exact even when phases overlap.
    let mut by_phase: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (_, record) in &full_pairs {
        for (label, tx) in &record.phase_transmissions {
            by_phase.entry(label.clone()).or_insert((0, 0)).0 += tx;
        }
        for (label, rounds) in &record.phase_node_rounds {
            by_phase.entry(label.clone()).or_insert((0, 0)).1 += rounds;
        }
    }
    let mut phase_table =
        Table::new(&["phase", "mean tx", "mean node-rounds", "tx per node-round"]);
    for (label, (tx, rounds)) in &by_phase {
        phase_table.row_owned(vec![
            label.clone(),
            format!("{:.1}", *tx as f64 / trials as f64),
            format!("{:.1}", *rounds as f64 / trials as f64),
            format!("{:.4}", *tx as f64 / (*rounds).max(1) as f64),
        ]);
    }
    report.section(
        "Pipeline energy by phase (per-node attribution)",
        phase_table,
    );

    let primary_tx: u64 = full_pairs
        .iter()
        .flat_map(|(_, record)| record.channels.first())
        .map(|t| t.transmissions)
        .sum();
    let all_tx: u64 = full_pairs
        .iter()
        .map(|(_, record)| record.transmissions)
        .sum();
    report.note(format!(
        "Channel concentration: {:.1}% of the pipeline's transmissions land on the \
         primary channel (the rest spread over the other {} channels during the \
         multi-channel knock-out steps).",
        100.0 * primary_tx as f64 / all_tx.max(1) as f64,
        c - 1
    ));
    report.note(
        "The knock-out pipeline's early steps transmit with probability 1/n̂, so the \
         average node sends well under one frame before the problem is solved; the \
         descent baseline makes every left-half node transmit every round, and the \
         expected-O(1) algorithm makes *everyone* transmit every test round — speed \
         bought with energy. This dimension is invisible in round complexity but \
         decisive for battery-powered deployments."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::trials::run_trials;

    #[test]
    fn pipeline_is_more_frugal_than_descent() {
        let (c, n, active) = (64u32, 1u64 << 12, 512usize);
        let full_tx: u64 = run_trials(8, 1, |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
            }
            exec
        })
        .iter()
        .map(|r| r.metrics.transmissions)
        .sum();
        let descent_tx: u64 = run_trials(8, 1, |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for id in sample_distinct(n, active, s) {
                exec.add_node(BinaryDescent::new(id, n));
            }
            exec
        })
        .iter()
        .map(|r| r.metrics.transmissions)
        .sum();
        assert!(
            full_tx < descent_tx,
            "pipeline should out-frugal descent: {full_tx} vs {descent_tx}"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 2);
        assert_eq!(r.sections[0].table.len(), 6);
        assert!(!r.sections[1].table.is_empty());
    }

    #[test]
    fn recorded_energy_matches_legacy_metrics() {
        // One-commit overlap while the energy experiment migrates from the
        // engine's Metrics counters to the RunRecord ones: both accountings
        // run side by side here and must agree exactly, field for field.
        let (c, n, active) = (64u32, 1u64 << 12, 256usize);
        let pairs = run_trials_recorded(6, 9, |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
            }
            exec
        });
        for (report, record) in &pairs {
            assert_eq!(record.transmissions, report.metrics.transmissions);
            assert_eq!(record.listens, report.metrics.listens);
            assert_eq!(
                record.max_node_transmissions,
                report.metrics.max_transmissions_per_node()
            );
            assert_eq!(record.rounds, report.rounds_executed);
            let phase_tx: u64 = record.phase_transmissions.iter().map(|(_, v)| v).sum();
            assert_eq!(phase_tx, report.metrics.transmissions);
            let channel_tx: u64 = record.channels.iter().map(|t| t.transmissions).sum();
            assert_eq!(channel_tx, report.metrics.transmissions);
        }
    }
}
