//! **E15** (extension) — transmission energy. Round complexity is the
//! paper's metric, but for the radio networks motivating the model, the
//! number of *transmissions* is the battery cost. This experiment measures
//! total and per-node transmissions for every algorithm at a common
//! configuration — a dimension on which the paper's knock-out design turns
//! out to be extremely frugal (most nodes only ever listen).

use contention::baselines::{BinaryDescent, CdTournament, Decay, MultiChannelNoCd};
use contention::extensions::ExpectedConstant;
use contention::{FullAlgorithm, Params};
use mac_sim::campaign::{Aggregate, SeedStream};
use mac_sim::obs::{RunRecord, RunRecorder};
use mac_sim::{CdMode, Engine, FeedbackModel, Protocol, SimConfig};
use std::collections::BTreeMap;

use super::seed_base;
use crate::{sample_distinct, ExperimentReport, RunCtx, Samples};
use mac_sim::trials::run_trials_recorded;

/// One recorded run: rounds-to-solve plus the span-model energy counters.
fn recorded_one<P: Protocol, F: FeedbackModel>(
    mut exec: Engine<P, F>,
    seed: u64,
) -> (u64, RunRecord) {
    let mut recorder = RunRecorder::new();
    let report = exec
        .run_observed(&mut recorder)
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    (
        report.rounds_to_solve().expect("solved"),
        recorder.into_record(seed),
    )
}

/// Streaming energy digest for one algorithm row, fed from the structured
/// [`RunRecord`] counters (the span-model recorder), not the legacy
/// `Metrics` fields; the `recorded_energy_matches_legacy_metrics` test
/// below pins the two accountings to each other exactly.
#[derive(Default)]
struct EnergyAgg {
    rounds: Samples,
    total_tx: Samples,
    peak_tx: Samples,
    rx: Samples,
}

impl EnergyAgg {
    fn push(&mut self, rounds: u64, record: &RunRecord) {
        self.rounds.push(rounds);
        self.total_tx.push(record.transmissions);
        self.peak_tx.push(record.max_node_transmissions);
        self.rx.push(record.listens);
    }
}

impl Aggregate for EnergyAgg {
    fn merge(&mut self, other: Self) {
        self.rounds.merge(other.rounds);
        self.total_tx.merge(other.total_tx);
        self.peak_tx.merge(other.peak_tx);
        self.rx.merge(other.rx);
    }
}

/// Runs the experiment.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report =
        ExperimentReport::new("E15", "Transmission energy: who pays for symmetry breaking");
    let (c, n, active) = (64u32, 1u64 << 14, 1024usize);
    let trials = scale.trials().min(40);

    let caption = format!("Energy at C = {c}, n = 2^14, |A| = {active} (until solve)");
    let mut sweep = ctx.sweep::<EnergyAgg>(
        &caption,
        &[
            "algorithm",
            "rounds mean",
            "total tx mean",
            "tx per active node",
            "max tx by one node",
            "total rx mean",
        ],
    );
    let energy_row =
        |sweep: &mut crate::Sweep<EnergyAgg>,
         name: &'static str,
         tag: &'static str,
         run_one: Box<dyn Fn(u64) -> (u64, RunRecord) + Send + Sync>| {
            sweep.row(
                trials,
                SeedStream::Offset(seed_base(tag, 0, 0)),
                EnergyAgg::default,
                move |seed, acc| {
                    let (rounds, record) = run_one(seed);
                    acc.push(rounds, &record);
                },
                move |acc| {
                    #[allow(clippy::cast_precision_loss)]
                    let per_node = acc.total_tx.0.finish().mean / active as f64;
                    vec![
                        name.to_string(),
                        format!("{:.1}", acc.rounds.0.finish().mean),
                        format!("{:.0}", acc.total_tx.0.finish().mean),
                        format!("{per_node:.2}"),
                        format!("{:.1}", acc.peak_tx.0.finish().mean),
                        format!("{:.0}", acc.rx.0.finish().mean),
                    ]
                },
            );
        };
    energy_row(
        &mut sweep,
        "this paper (pipeline)",
        "e15f",
        Box::new(move |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
            }
            recorded_one(exec, s)
        }),
    );
    energy_row(
        &mut sweep,
        "expected-O(1)",
        "e15x",
        Box::new(move |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for _ in 0..active {
                exec.add_node(ExpectedConstant::new(c, n));
            }
            recorded_one(exec, s)
        }),
    );
    energy_row(
        &mut sweep,
        "CD tournament",
        "e15t",
        Box::new(move |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for _ in 0..active {
                exec.add_node(CdTournament::new());
            }
            recorded_one(exec, s)
        }),
    );
    energy_row(
        &mut sweep,
        "binary descent",
        "e15d",
        Box::new(move |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for id in sample_distinct(n, active, s ^ 0x15) {
                exec.add_node(BinaryDescent::new(id, n));
            }
            recorded_one(exec, s)
        }),
    );
    energy_row(
        &mut sweep,
        "decay (no CD)",
        "e15y",
        Box::new(move |s| {
            let cfg = SimConfig::new(c)
                .seed(s)
                .cd_mode(CdMode::None)
                .max_rounds(1_000_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..active {
                exec.add_node(Decay::new(n));
            }
            recorded_one(exec, s)
        }),
    );
    energy_row(
        &mut sweep,
        "multi no-CD",
        "e15m",
        Box::new(move |s| {
            let cfg = SimConfig::new(c)
                .seed(s)
                .cd_mode(CdMode::None)
                .max_rounds(1_000_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..active {
                exec.add_node(MultiChannelNoCd::new(c, n));
            }
            recorded_one(exec, s)
        }),
    );
    report.section(caption, sweep.run());

    // Where the pipeline's energy actually goes: the recorder attributes
    // every transmission and acting round to the acting node's own phase,
    // so this breakdown stays exact even when phases overlap. This table
    // derives many rows from one record batch, so it runs on the trial
    // layer (itself a single-cell campaign) at the pipeline row's seeds —
    // deterministic on every run, including resumed ones.
    let full_pairs = run_trials_recorded(trials, seed_base("e15f", 0, 0), |s| {
        let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        exec
    });
    let mut by_phase: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (_, record) in &full_pairs {
        for (label, tx) in &record.phase_transmissions {
            by_phase.entry(label.clone()).or_insert((0, 0)).0 += tx;
        }
        for (label, rounds) in &record.phase_node_rounds {
            by_phase.entry(label.clone()).or_insert((0, 0)).1 += rounds;
        }
    }
    let mut phase_table = contention_analysis::Table::new(&[
        "phase",
        "mean tx",
        "mean node-rounds",
        "tx per node-round",
    ]);
    for (label, (tx, rounds)) in &by_phase {
        #[allow(clippy::cast_precision_loss)]
        phase_table.row_owned(vec![
            label.clone(),
            format!("{:.1}", *tx as f64 / trials as f64),
            format!("{:.1}", *rounds as f64 / trials as f64),
            format!("{:.4}", *tx as f64 / (*rounds).max(1) as f64),
        ]);
    }
    report.section(
        "Pipeline energy by phase (per-node attribution)",
        phase_table,
    );

    let primary_tx: u64 = full_pairs
        .iter()
        .flat_map(|(_, record)| record.channels.first())
        .map(|t| t.transmissions)
        .sum();
    let all_tx: u64 = full_pairs
        .iter()
        .map(|(_, record)| record.transmissions)
        .sum();
    #[allow(clippy::cast_precision_loss)]
    report.note(format!(
        "Channel concentration: {:.1}% of the pipeline's transmissions land on the \
         primary channel (the rest spread over the other {} channels during the \
         multi-channel knock-out steps).",
        100.0 * primary_tx as f64 / all_tx.max(1) as f64,
        c - 1
    ));
    report.note(
        "The knock-out pipeline's early steps transmit with probability 1/n̂, so the \
         average node sends well under one frame before the problem is solved; the \
         descent baseline makes every left-half node transmit every round, and the \
         expected-O(1) algorithm makes *everyone* transmit every test round — speed \
         bought with energy. This dimension is invisible in round complexity but \
         decisive for battery-powered deployments."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use mac_sim::trials::run_trials;

    #[test]
    fn pipeline_is_more_frugal_than_descent() {
        let (c, n, active) = (64u32, 1u64 << 12, 512usize);
        let full_tx: u64 = run_trials(8, 1, |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
            }
            exec
        })
        .iter()
        .map(|r| r.metrics.transmissions)
        .sum();
        let descent_tx: u64 = run_trials(8, 1, |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for id in sample_distinct(n, active, s) {
                exec.add_node(BinaryDescent::new(id, n));
            }
            exec
        })
        .iter()
        .map(|r| r.metrics.transmissions)
        .sum();
        assert!(
            full_tx < descent_tx,
            "pipeline should out-frugal descent: {full_tx} vs {descent_tx}"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 2);
        assert_eq!(r.sections[0].table.len(), 6);
        assert!(!r.sections[1].table.is_empty());
    }

    #[test]
    fn recorded_energy_matches_legacy_metrics() {
        // One-commit overlap while the energy experiment migrates from the
        // engine's Metrics counters to the RunRecord ones: both accountings
        // run side by side here and must agree exactly, field for field.
        let (c, n, active) = (64u32, 1u64 << 12, 256usize);
        let pairs = run_trials_recorded(6, 9, |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
            }
            exec
        });
        for (report, record) in &pairs {
            assert_eq!(record.transmissions, report.metrics.transmissions);
            assert_eq!(record.listens, report.metrics.listens);
            assert_eq!(
                record.max_node_transmissions,
                report.metrics.max_transmissions_per_node()
            );
            assert_eq!(record.rounds, report.rounds_executed);
            let phase_tx: u64 = record.phase_transmissions.iter().map(|(_, v)| v).sum();
            assert_eq!(phase_tx, report.metrics.transmissions);
            let channel_tx: u64 = record.channels.iter().map(|t| t.transmissions).sum();
            assert_eq!(channel_tx, report.metrics.transmissions);
        }
    }
}
