//! **E9** — the headline landscape (Theorem 4 + the related-work table of
//! §2): the full algorithm against the three prior-art baselines across the
//! `(n, C)` grid. The paper predicts:
//!
//! * at `C = 1`, collision detection gives `Θ(log n)` (descent/tournament)
//!   and no-CD costs `Θ(log² n)`;
//! * growing `C` lets no-CD improve as `log² n / C` until its `log n` floor;
//! * the new algorithm beats them all once `C` is large, flattening at the
//!   `(log log n)(log log log n)` floor that no other combination reaches.

use contention::baselines::{BinaryDescent, CdTournament, Decay, MultiChannelNoCd};
use contention::phase::{PhaseStats, PhaseTelemetry};
use contention::{FullAlgorithm, Params};
use mac_sim::campaign::{Aggregate, SeedStream};
use mac_sim::{CdMode, Engine, SimConfig};

use super::seed_base;
use crate::{cell_u64, sample_distinct, ExperimentReport, RunCtx, Samples};
#[cfg(test)]
use mac_sim::trials::{run_trials, run_trials_with};

/// Rounds-to-solve for one full-algorithm run.
fn full_one(c: u32, n: u64, active: usize, seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(10_000_000));
    for _ in 0..active {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

#[cfg(test)]
pub(crate) fn full_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    run_trials(trials, seed, |s| {
        let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(10_000_000));
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_to_solve().expect("solved"))
    .collect()
}

/// The solver's telemetry spine for one full-algorithm run (same engine as
/// [`full_one`] at the same seed).
fn full_spine_one(c: u32, n: u64, active: usize, seed: u64) -> Vec<PhaseStats> {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(10_000_000));
    for _ in 0..active {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    let report = exec
        .run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    report
        .solver
        .map(|id| exec.node(id).phase_stats())
        .unwrap_or_default()
}

/// One full-algorithm run's rounds-to-solve plus its solver spine, off a
/// single execution (E10 reads both per trial).
pub(crate) fn full_one_with_spine(
    c: u32,
    n: u64,
    active: usize,
    seed: u64,
) -> (u64, Vec<PhaseStats>) {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(10_000_000));
    for _ in 0..active {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    let report = exec
        .run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    let spine = report
        .solver
        .map(|id| exec.node(id).phase_stats())
        .unwrap_or_default();
    (report.rounds_to_solve().expect("solved"), spine)
}

/// The solver's per-phase telemetry spine for each trial of the full
/// algorithm (same engines as [`full_rounds`] at the same seed).
#[cfg(test)]
pub(crate) fn full_solver_spines(
    c: u32,
    n: u64,
    active: usize,
    trials: usize,
    seed: u64,
) -> Vec<Vec<PhaseStats>> {
    run_trials_with(
        trials,
        seed,
        |s| {
            let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(10_000_000));
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
            }
            exec
        },
        |exec, report| {
            report
                .solver
                .map(|id| exec.node(id).phase_stats())
                .unwrap_or_default()
        },
    )
}

/// Mean rounds the solver spent in `name` across `spines`.
pub(crate) fn mean_phase_rounds(spines: &[Vec<PhaseStats>], name: &str) -> f64 {
    let total: u64 = spines
        .iter()
        .flat_map(|spine| spine.iter())
        .filter(|r| r.name == name)
        .map(|r| r.rounds)
        .sum();
    #[allow(clippy::cast_precision_loss)]
    let mean = total as f64 / spines.len().max(1) as f64;
    mean
}

/// Rounds-to-solve for one binary-descent run.
fn descent_one(c: u32, n: u64, active: usize, seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(10_000_000));
    for id in sample_distinct(n, active, seed ^ 0x9D) {
        exec.add_node(BinaryDescent::new(id, n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

#[cfg(test)]
pub(crate) fn descent_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| descent_one(c, n, active, seed.wrapping_add(i)))
        .collect()
}

/// Rounds-to-solve for one decay (no CD) run.
fn decay_one(c: u32, n: u64, active: usize, seed: u64) -> u64 {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .cd_mode(CdMode::None)
        .max_rounds(10_000_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..active {
        exec.add_node(Decay::new(n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

#[cfg(test)]
pub(crate) fn decay_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| decay_one(c, n, active, seed.wrapping_add(i)))
        .collect()
}

/// Rounds-to-solve for one multi-channel no-CD run.
fn nocd_one(c: u32, n: u64, active: usize, seed: u64) -> u64 {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .cd_mode(CdMode::None)
        .max_rounds(10_000_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..active {
        exec.add_node(MultiChannelNoCd::new(c, n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

#[cfg(test)]
pub(crate) fn nocd_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| nocd_one(c, n, active, seed.wrapping_add(i)))
        .collect()
}

/// Rounds-to-solve for one adaptive CD-tournament run.
fn tournament_one(c: u32, active: usize, seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(10_000_000));
    for _ in 0..active {
        exec.add_node(CdTournament::new());
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

/// Streaming per-row state for the solver phase-breakdown table.
#[derive(Default)]
struct PhaseMix {
    reduce: u64,
    id_reduction: u64,
    leaf_election: u64,
    fallback: u64,
    total: u64,
    trials: u64,
}

impl PhaseMix {
    fn add_spine(&mut self, spine: &[PhaseStats]) {
        for p in spine {
            match p.name {
                "reduce" => self.reduce += p.rounds,
                "id-reduction" => self.id_reduction += p.rounds,
                "leaf-election" => self.leaf_election += p.rounds,
                "cd-tournament" => self.fallback += p.rounds,
                _ => {}
            }
            self.total += p.rounds;
        }
        self.trials += 1;
    }

    #[allow(clippy::cast_precision_loss)]
    fn mean(&self, phase_total: u64) -> f64 {
        phase_total as f64 / self.trials.max(1) as f64
    }
}

impl Aggregate for PhaseMix {
    fn merge(&mut self, other: Self) {
        self.reduce += other.reduce;
        self.id_reduction += other.id_reduction;
        self.leaf_election += other.leaf_election;
        self.fallback += other.fallback;
        self.total += other.total;
        self.trials += other.trials;
    }
}

/// Runs the experiment.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E9",
        "Full algorithm vs baselines across (n, C) — who wins where",
    );
    let ns: Vec<u64> = scale.thin(&[1u64 << 10, 1 << 14, 1 << 18]);
    let cs: Vec<u32> = scale.thin(&[1, 4, 32, 256, 2048]);
    let trials = scale.trials().min(40);

    let caption = "Mean rounds to solve, |A| = min(n, 4096)";
    let mut sweep = ctx.sweep::<(Samples, Samples, Samples, Samples)>(
        caption,
        &[
            "n",
            "C",
            "this paper (CD, multi)",
            "binary descent (CD, 1ch)",
            "decay (no CD, 1ch)",
            "multi no-CD",
            "winner",
        ],
    );
    for &n in &ns {
        // Dense-ish activation: the adversarial case the worst-case bounds
        // target (capped so the biggest grid point stays laptop-scale).
        let active = usize::try_from(n).unwrap_or(usize::MAX).min(4096);
        for &c in &cs {
            let sb = |tag: &str| seed_base(tag, u64::from(c), n);
            let (fb, db, yb, mb) = (sb("e9f"), sb("e9d"), sb("e9y"), sb("e9m"));
            sweep.row(
                trials,
                SeedStream::Offset(0),
                <(Samples, Samples, Samples, Samples)>::default,
                move |i, acc| {
                    acc.0.push(full_one(c, n, active, fb.wrapping_add(i)));
                    acc.1.push(descent_one(c, n, active, db.wrapping_add(i)));
                    acc.2.push(decay_one(c, n, active, yb.wrapping_add(i)));
                    acc.3.push(nocd_one(c, n, active, mb.wrapping_add(i)));
                },
                move |(full, descent, decay, nocd)| {
                    let entries = [
                        ("this paper", full.0.finish().mean),
                        ("descent", descent.0.finish().mean),
                        ("decay", decay.0.finish().mean),
                        ("multi-nocd", nocd.0.finish().mean),
                    ];
                    let winner = entries
                        .iter()
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
                        .expect("nonempty")
                        .0;
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let ne = (n as f64).log2() as u32;
                    vec![
                        format!("2^{ne}"),
                        c.to_string(),
                        format!("{:.1}", entries[0].1),
                        format!("{:.1}", entries[1].1),
                        format!("{:.1}", entries[2].1),
                        format!("{:.1}", entries[3].1),
                        winner.to_string(),
                    ]
                },
            );
        }
    }
    let grid = sweep.run();
    // Reconstruct the per-n win lists from the rendered grid (works the
    // same on a resumed run, where rows come from the checkpoint).
    let mut crossovers: Vec<(u64, Vec<u32>)> = ns.iter().map(|&n| (n, Vec::new())).collect();
    for (i, row) in grid.rows().iter().enumerate() {
        if row.last().is_some_and(|w| w == "this paper") {
            #[allow(clippy::cast_possible_truncation)]
            let c = cell_u64(&row[1]) as u32;
            crossovers[i / cs.len()].1.push(c);
        }
    }
    report.section(caption, grid);

    // |A|-sensitivity: the pipeline's cost is indexed by n, the adaptive
    // tournament's by |A| — so the pipeline is nearly flat across four
    // decades of activation density while the tournament scales as lg |A|.
    let (n, c) = (1u64 << 14, 256u32);
    let caption_density = format!("Density sensitivity at n = 2^14, C = {c}");
    let mut density = ctx.sweep::<(Samples, Samples)>(
        &caption_density,
        &["|A|", "this paper", "CD tournament (lg |A|-adaptive)"],
    );
    for &a in &[2usize, 16, 128, 1024, 8192] {
        let fb = seed_base("e9da", a as u64, n);
        let tb = seed_base("e9dt", a as u64, n);
        density.row(
            trials,
            SeedStream::Offset(0),
            <(Samples, Samples)>::default,
            move |i, acc| {
                acc.0.push(full_one(c, n, a, fb.wrapping_add(i)));
                acc.1.push(tournament_one(c, a, tb.wrapping_add(i)));
            },
            move |(full, tour)| {
                vec![
                    a.to_string(),
                    format!("{:.1}", full.0.finish().mean),
                    format!("{:.1}", tour.0.finish().mean),
                ]
            },
        );
    }
    report.section(caption_density, density.run());

    // Where the winner's rounds actually go: the solver's per-phase
    // telemetry spine, averaged over trials. Below the fallback threshold
    // the whole run sits in the single-channel tournament; above it the
    // pipeline's phases split the budget.
    let n = 1u64 << 14;
    let caption_mix = format!("Solver phase breakdown at n = 2^{}", {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let ne = (n as f64).log2() as u32;
        ne
    });
    let mut mix = ctx.sweep::<PhaseMix>(
        &caption_mix,
        &[
            "C",
            "reduce",
            "id-reduction",
            "leaf-election",
            "fallback (cd-tournament)",
            "mean total",
        ],
    );
    for &c in &cs {
        let active = usize::try_from(n).unwrap_or(usize::MAX).min(4096);
        mix.row(
            trials,
            SeedStream::Offset(seed_base("e9p", u64::from(c), n)),
            PhaseMix::default,
            move |seed, acc| {
                acc.add_spine(&full_spine_one(c, n, active, seed));
            },
            move |acc| {
                vec![
                    c.to_string(),
                    format!("{:.1}", acc.mean(acc.reduce)),
                    format!("{:.1}", acc.mean(acc.id_reduction)),
                    format!("{:.1}", acc.mean(acc.leaf_election)),
                    format!("{:.1}", acc.mean(acc.fallback)),
                    format!("{:.1}", acc.mean(acc.total)),
                ]
            },
        );
    }
    report.section(caption_mix, mix.run());
    report.note(
        "Density sensitivity: the tournament's mean grows as lg |A| (it adapts to \
         the actual contenders) while the pipeline is governed by n — flat-ish in \
         |A| and ahead once |A| is within a few powers of two of n. For very sparse \
         activations the adaptive baseline is the better engineering choice, a \
         trade-off outside the paper's worst-case lens."
            .to_string(),
    );
    for (n, wins) in crossovers {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let ne = (n as f64).log2() as u32;
        if wins.is_empty() {
            report.note(format!(
                "n = 2^{ne}: the CD baselines win at every tested C (expected only for tiny \
                 n, where lg n is already as small as the paper's lglg-term constants)."
            ));
        } else {
            report.note(format!(
                "n = 2^{ne}: this paper's algorithm wins at C ∈ {wins:?}. The margin over \
                 the O(log n) descent widens with n (lg lg n·lg lg lg n vs lg n), while at \
                 small n the two are within each other's noise."
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn mean(v: &[u64]) -> f64 {
        v.iter().sum::<u64>() as f64 / v.len() as f64
    }

    #[test]
    fn cd_beats_no_cd_on_one_channel() {
        let (n, a) = (1u64 << 14, 128usize);
        let cd = mean(&descent_rounds(1, n, a, 8, 1));
        let no_cd = mean(&decay_rounds(1, n, a, 8, 1));
        assert!(
            cd < no_cd,
            "collision detection must win on one channel: {cd} vs {no_cd}"
        );
    }

    #[test]
    fn full_beats_descent_with_many_channels() {
        // The paper's point: with C large, log n/log C + lglg·lglglg beats log n.
        let (n, a) = (1u64 << 18, 256usize);
        let full = mean(&full_rounds(2048, n, a, 10, 2));
        let descent = mean(&descent_rounds(2048, n, a, 10, 2));
        assert!(
            full < descent,
            "at C=2048, n=2^18 the paper's algorithm must win: {full} vs {descent}"
        );
    }

    #[test]
    fn nocd_baselines_sit_in_the_same_envelope() {
        // Typical (mean) solve times for the no-CD algorithms are governed
        // by the decay-sweep latency Θ(lg n) at any C — the log²n/C term is
        // a confidence-tail effect (see DESIGN.md §4). Sanity: the
        // multi-channel variant stays within a small factor of plain decay.
        let (n, a) = (1u64 << 14, 512usize);
        let decay = mean(&decay_rounds(1, n, a, 8, 3));
        for c in [1u32, 16, 64] {
            let nocd = mean(&nocd_rounds(c, n, a, 8, 3));
            assert!(
                nocd <= 4.0 * decay + 20.0,
                "C={c}: no-CD multi ({nocd}) far outside decay envelope ({decay})"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 3);
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn spines_account_for_the_full_runs() {
        // Same seed → same trials: each solver spine must sum to exactly
        // that trial's rounds-to-solve (the solver acts in every round).
        let (c, n, a) = (64u32, 1u64 << 12, 256usize);
        let rounds = full_rounds(c, n, a, 6, 11);
        let spines = full_solver_spines(c, n, a, 6, 11);
        assert_eq!(rounds.len(), spines.len());
        for (r, spine) in rounds.iter().zip(&spines) {
            let total: u64 = spine.iter().map(|p| p.rounds).sum();
            assert_eq!(total, *r);
        }
        // C = 64 is above the fallback threshold: the spine is pipeline-shaped.
        assert!(spines
            .iter()
            .all(|s| s.first().map(|p| p.name) == Some("reduce")));
    }

    #[test]
    fn fallback_spines_are_tournament_shaped() {
        let spines = full_solver_spines(4, 1 << 10, 128, 4, 21);
        for spine in &spines {
            assert_eq!(spine.len(), 1);
            assert_eq!(spine[0].name, "cd-tournament");
        }
    }
}
