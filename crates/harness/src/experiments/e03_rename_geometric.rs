//! **E3** — Lemma 2: step 1 of `TwoActive` (random channel renaming) is a
//! geometric race with per-round success probability `1 − 1/C`, so the
//! probability both nodes still collide after `t` rounds is `C^{-t}` —
//! giving the `O(log n / log C)` w.h.p. bound.
//!
//! Measured two ways: the full protocol's `rename_rounds` statistic, and a
//! direct Monte-Carlo of the channel-picking race (more trials, cleaner
//! tails).

use contention::TwoActive;
use contention_analysis::stats::ks_distance;
use contention_analysis::{exceed_fraction, Table};
use mac_sim::{Engine, SimConfig, StopWhen};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::seed_base;
use crate::{ExperimentReport, Scale};
use mac_sim::trials::run_trials_with;

/// Direct Monte-Carlo of the renaming race: rounds until two uniform picks
/// from `[c]` differ.
pub(crate) fn race_rounds(c: u32, rng: &mut SmallRng) -> u32 {
    let mut rounds = 1;
    while rng.gen_range(1..=c) == rng.gen_range(1..=c) {
        rounds += 1;
    }
    rounds
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E3",
        "Renaming race tail (Lemma 2: P[still colliding after t rounds] = C^-t)",
    );
    let cs = [4u32, 16, 64];
    let n = 1u64 << 16;

    // Monte-Carlo tail table, plus a whole-distribution KS check per C.
    let mut table = Table::new(&["C", "t", "measured P[rounds > t]", "theory C^-t"]);
    let mut ks_table = Table::new(&["C", "KS distance to Geometric(1 - 1/C)", "sample size"]);
    for &c in &cs {
        let mut rng = SmallRng::seed_from_u64(seed_base("e3mc", u64::from(c), 0));
        let samples: Vec<f64> = (0..scale.mc_trials())
            .map(|_| f64::from(race_rounds(c, &mut rng)))
            .collect();
        for t in 1..=3u32 {
            let measured = exceed_fraction(&samples, f64::from(t));
            let theory = f64::from(c).powi(-(t as i32));
            table.row_owned(vec![
                c.to_string(),
                t.to_string(),
                format!("{measured:.5}"),
                format!("{theory:.5}"),
            ]);
        }
        // Exact discrete KS against the predicted law.
        let ints: Vec<u64> = samples.iter().map(|&x| x as u64).collect();
        let q = 1.0 / f64::from(c); // per-round collision probability
        let d = ks_distance(&ints, |k| 1.0 - q.powi(k as i32));
        ks_table.row_owned(vec![
            c.to_string(),
            format!("{d:.5}"),
            ints.len().to_string(),
        ]);
    }
    report.section("Monte-Carlo of the channel-picking race", table);
    report.section("Whole-distribution fit (Kolmogorov–Smirnov)", ks_table);

    // Protocol cross-check: rename_rounds measured in real executions.
    let mut proto = Table::new(&["C", "protocol mean rename rounds", "theory C/(C-1)"]);
    for &c in &cs {
        let rename: Vec<u64> = run_trials_with(
            scale.trials(),
            seed_base("e3p", u64::from(c), 1),
            |s| {
                let cfg = SimConfig::new(c)
                    .seed(s)
                    .stop_when(StopWhen::AllTerminated)
                    .max_rounds(100_000);
                let mut exec = Engine::new(cfg);
                exec.add_node(TwoActive::new(c, n));
                exec.add_node(TwoActive::new(c, n));
                exec
            },
            |exec, _| {
                exec.iter_nodes()
                    .next()
                    .expect("has nodes")
                    .stats()
                    .rename_rounds
            },
        );
        let mean = rename.iter().sum::<u64>() as f64 / rename.len() as f64;
        let theory = f64::from(c) / f64::from(c - 1);
        proto.row_owned(vec![
            c.to_string(),
            format!("{mean:.3}"),
            format!("{theory:.3}"),
        ]);
    }
    report.section("Protocol cross-check (geometric mean 1/(1-1/C))", proto);
    report.note(
        "Measured tails match C^-t to Monte-Carlo precision; the protocol's \
         rename step is exactly the analyzed geometric race."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn race_tail_matches_theory() {
        let mut rng = SmallRng::seed_from_u64(1);
        let c = 8u32;
        let samples: Vec<f64> = (0..40_000)
            .map(|_| f64::from(race_rounds(c, &mut rng)))
            .collect();
        for t in 1..=2u32 {
            let measured = exceed_fraction(&samples, f64::from(t));
            let theory = f64::from(c).powi(-(t as i32));
            assert!(
                (measured - theory).abs() < 0.01,
                "t={t}: {measured} vs {theory}"
            );
        }
    }

    #[test]
    fn race_rounds_is_at_least_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(race_rounds(2, &mut rng) >= 1);
        }
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 3);
    }

    #[test]
    fn whole_distribution_is_geometric() {
        let mut rng = SmallRng::seed_from_u64(9);
        let c = 16u32;
        let samples: Vec<u64> = (0..30_000)
            .map(|_| u64::from(race_rounds(c, &mut rng)))
            .collect();
        let q = 1.0 / f64::from(c);
        let d = contention_analysis::stats::ks_distance(&samples, |k| 1.0 - q.powi(k as i32));
        assert!(d < 0.01, "KS distance {d} too large for the predicted law");
    }
}
