//! **E3** — Lemma 2: step 1 of `TwoActive` (random channel renaming) is a
//! geometric race with per-round success probability `1 − 1/C`, so the
//! probability both nodes still collide after `t` rounds is `C^{-t}` —
//! giving the `O(log n / log C)` w.h.p. bound.
//!
//! Measured two ways: the full protocol's `rename_rounds` statistic, and a
//! direct Monte-Carlo of the channel-picking race (more trials, cleaner
//! tails).

use contention::TwoActive;
use contention_analysis::exceed_fraction;
use contention_analysis::stats::ks_distance;
use mac_sim::campaign::{Collect, SeedStream};
use mac_sim::{Engine, SimConfig, StopWhen};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};

/// Direct Monte-Carlo of the renaming race: rounds until two uniform picks
/// from `[c]` differ.
pub(crate) fn race_rounds(c: u32, rng: &mut SmallRng) -> u32 {
    let mut rounds = 1;
    while rng.gen_range(1..=c) == rng.gen_range(1..=c) {
        rounds += 1;
    }
    rounds
}

/// The race-round sample vector for one `(C, seed)`: each row that needs
/// the distribution regenerates it from the same seed, which is cheap and
/// keeps every row an independent, resumable campaign cell.
fn race_samples(c: u32, seed: u64, count: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| f64::from(race_rounds(c, &mut rng)))
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E3",
        "Renaming race tail (Lemma 2: P[still colliding after t rounds] = C^-t)",
    );
    let cs = [4u32, 16, 64];
    let n = 1u64 << 16;
    let mc_trials = scale.mc_trials();

    // Monte-Carlo tail table: one cell per (C, t) row.
    let caption_mc = "Monte-Carlo of the channel-picking race";
    let mut mc_sweep = ctx.sweep::<Collect<f64>>(
        caption_mc,
        &["C", "t", "measured P[rounds > t]", "theory C^-t"],
    );
    for &c in &cs {
        for t in 1..=3u32 {
            mc_sweep.row(
                1,
                SeedStream::Offset(seed_base("e3mc", u64::from(c), 0)),
                Collect::default,
                move |seed, acc| {
                    let samples = race_samples(c, seed, mc_trials);
                    acc.0.push(exceed_fraction(&samples, f64::from(t)));
                },
                move |acc| {
                    #[allow(clippy::cast_possible_wrap)]
                    let theory = f64::from(c).powi(-(t as i32));
                    vec![
                        c.to_string(),
                        t.to_string(),
                        format!("{:.5}", acc.0[0]),
                        format!("{theory:.5}"),
                    ]
                },
            );
        }
    }
    report.section(caption_mc, mc_sweep.run());

    // Exact discrete KS against the predicted law, per C.
    let caption_ks = "Whole-distribution fit (Kolmogorov–Smirnov)";
    let mut ks_sweep = ctx.sweep::<Collect<f64>>(
        caption_ks,
        &["C", "KS distance to Geometric(1 - 1/C)", "sample size"],
    );
    for &c in &cs {
        ks_sweep.row(
            1,
            SeedStream::Offset(seed_base("e3mc", u64::from(c), 0)),
            Collect::default,
            move |seed, acc| {
                let ints: Vec<u64> = race_samples(c, seed, mc_trials)
                    .iter()
                    .map(|&x| {
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let i = x as u64;
                        i
                    })
                    .collect();
                let q = 1.0 / f64::from(c); // per-round collision probability
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                acc.0.push(ks_distance(&ints, |k| 1.0 - q.powi(k as i32)));
            },
            move |acc| {
                vec![
                    c.to_string(),
                    format!("{:.5}", acc.0[0]),
                    mc_trials.to_string(),
                ]
            },
        );
    }
    report.section(caption_ks, ks_sweep.run());

    // Protocol cross-check: rename_rounds measured in real executions.
    let caption_proto = "Protocol cross-check (geometric mean 1/(1-1/C))";
    let mut proto_sweep = ctx.sweep::<Samples>(
        caption_proto,
        &["C", "protocol mean rename rounds", "theory C/(C-1)"],
    );
    for &c in &cs {
        proto_sweep.row(
            scale.trials(),
            SeedStream::Offset(seed_base("e3p", u64::from(c), 1)),
            Samples::default,
            move |seed, acc| {
                let cfg = SimConfig::new(c)
                    .seed(seed)
                    .stop_when(StopWhen::AllTerminated)
                    .max_rounds(100_000);
                let mut exec = Engine::new(cfg);
                exec.add_node(TwoActive::new(c, n));
                exec.add_node(TwoActive::new(c, n));
                exec.run()
                    .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
                acc.push(
                    exec.iter_nodes()
                        .next()
                        .expect("has nodes")
                        .stats()
                        .rename_rounds,
                );
            },
            move |acc| {
                let theory = f64::from(c) / f64::from(c - 1);
                vec![
                    c.to_string(),
                    format!("{:.3}", acc.0.finish().mean),
                    format!("{theory:.3}"),
                ]
            },
        );
    }
    report.section(caption_proto, proto_sweep.run());
    report.note(
        "Measured tails match C^-t to Monte-Carlo precision; the protocol's \
         rename step is exactly the analyzed geometric race."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn race_tail_matches_theory() {
        let mut rng = SmallRng::seed_from_u64(1);
        let c = 8u32;
        let samples: Vec<f64> = (0..40_000)
            .map(|_| f64::from(race_rounds(c, &mut rng)))
            .collect();
        for t in 1..=2u32 {
            let measured = exceed_fraction(&samples, f64::from(t));
            let theory = f64::from(c).powi(-(t as i32));
            assert!(
                (measured - theory).abs() < 0.01,
                "t={t}: {measured} vs {theory}"
            );
        }
    }

    #[test]
    fn race_rounds_is_at_least_one() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(race_rounds(2, &mut rng) >= 1);
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 3);
    }

    #[test]
    fn whole_distribution_is_geometric() {
        let mut rng = SmallRng::seed_from_u64(9);
        let c = 16u32;
        let samples: Vec<u64> = (0..30_000)
            .map(|_| u64::from(race_rounds(c, &mut rng)))
            .collect();
        let q = 1.0 / f64::from(c);
        let d = contention_analysis::stats::ks_distance(&samples, |k| 1.0 - q.powi(k as i32));
        assert!(d < 0.01, "KS distance {d} too large for the predicted law");
    }
}
