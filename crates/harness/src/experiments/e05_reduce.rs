//! **E5** — Theorem 5: after `Reduce`'s `2⌈lg lg n⌉` rounds, between 1 and
//! `O(log n)` nodes survive, w.h.p., from *any* starting activation size.

use contention::{Params, Reduce, ReduceOutcome};
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig, StopWhen};

use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};

/// One trial's survivor count plus a leader flag for `(n, active)`.
pub(crate) fn survivors_one(n: u64, active: usize, seed: u64) -> (usize, bool) {
    let cfg = SimConfig::new(1)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(100_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..active {
        exec.add_node(Reduce::new(n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    let mut survived = 0usize;
    let mut leader = false;
    for node in exec.iter_nodes() {
        match node.outcome().expect("terminated") {
            ReduceOutcome::Survived => survived += 1,
            ReduceOutcome::Leader => leader = true,
            ReduceOutcome::Knocked => {}
        }
    }
    (survived, leader)
}

/// Survivor counts (plus a leader flag) across consecutive seeds. Test
/// helper; the report path streams.
#[cfg(test)]
pub(crate) fn survivors(n: u64, active: usize, trials: usize, seed: u64) -> Vec<(usize, bool)> {
    (0..trials as u64)
        .map(|i| survivors_one(n, active, seed.wrapping_add(i)))
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E5",
        "Reduce survivor counts (Theorem 5: 1..O(log n) survivors in 2⌈lg lg n⌉ rounds)",
    );
    let n_exps: Vec<u32> = scale.thin(&[8, 12, 16, 20]);

    let caption = "Surviving actives after Reduce";
    let mut sweep = ctx.sweep::<(Samples, u64, u64)>(
        caption,
        &[
            "n",
            "|A|",
            "rounds",
            "survivors mean",
            "survivors p95",
            "survivors max",
            "bound 12·lg n",
            "leader runs",
            "wiped runs",
        ],
    );
    let trials = scale.trials();
    for &ne in &n_exps {
        let n = 1u64 << ne;
        let lg_n = f64::from(ne);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let activations: Vec<(String, usize)> = vec![
            ("n".into(), (n as usize).min(1 << 14)),
            ("√n".into(), (n as f64).sqrt() as usize),
            ("lg n".into(), ne as usize),
        ];
        for (label, active) in activations {
            let active = active.max(1);
            sweep.row(
                trials,
                SeedStream::Offset(seed_base("e5", n, active as u64)),
                <(Samples, u64, u64)>::default,
                move |seed, acc| {
                    let (survived, leader) = survivors_one(n, active, seed);
                    acc.0.push(survived as u64);
                    if leader {
                        acc.1 += 1;
                    }
                    if survived == 0 && !leader {
                        acc.2 += 1;
                    }
                },
                move |(counts, leaders, wiped)| {
                    let s = counts.0.finish();
                    let rounds = Reduce::total_rounds(Params::practical(), n);
                    vec![
                        format!("2^{ne}"),
                        format!("{label} = {active}"),
                        rounds.to_string(),
                        format!("{:.1}", s.mean),
                        format!("{:.0}", s.p95),
                        format!("{:.0}", s.max),
                        format!("{:.0}", 12.0 * lg_n),
                        format!("{leaders}/{trials}"),
                        wiped.to_string(),
                    ]
                },
            );
        }
    }
    report.section(caption, sweep.run());
    report.note(
        "Paper: survivors ∈ [1, αβ·lg n] w.h.p. Measured: the max survivor count \
         stays below 12·lg n at every activation density, and the wiped-runs column \
         is zero — a run ends with no survivors only when a lone broadcast already \
         made some node leader (the `leader runs` column), which by itself solves \
         the problem. Leaders are common at |A| ≈ n because the very first \
         iteration transmits with probability 1/n, putting the expected \
         transmitter count at exactly 1."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn survivors_bounded_and_nonzero() {
        let n = 1u64 << 12;
        for (active, seed) in [(4096usize, 1u64), (64, 2), (12, 3)] {
            let data = survivors(n, active, 10, seed);
            for (i, &(s, leader)) in data.iter().enumerate() {
                assert!(
                    s >= 1 || leader,
                    "trial {i} (active={active}): no survivor and no leader"
                );
                assert!(
                    (s as f64) <= 12.0 * 12.0,
                    "trial {i} (active={active}): {s} survivors"
                );
            }
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
        assert!(!r.sections[0].table.is_empty());
    }
}
