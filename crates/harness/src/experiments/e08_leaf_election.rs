//! **E8** — Theorem 17 / Lemma 16: `LeafElection` elects a leader in
//! `O(log h · log log x)` rounds (`h = lg C`, `x` starting actives), and the
//! per-phase `SplitSearch` cost shrinks like `(1/i)·log h` as cohorts grow.

use contention::LeafElection;
use contention_analysis::Table;
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig, StopWhen};

use super::{lg, seed_base};
use crate::{sample_distinct, ExperimentReport, RunCtx, Samples};
use mac_sim::trials::run_trials_with;

/// One trial's digest: (rounds to solve, per-phase search rounds of the winner).
type Digest = (u64, Vec<u64>);

/// How the `x` active nodes are placed on the tree's leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Occupancy {
    /// `x` uniformly random distinct leaves: the typical case, where most
    /// cohorts fail to find a partner and retire early (few phases).
    Random,
    /// Leaves `1..=x`, densely packing subtrees: the adversarial case the
    /// theorem's `O(log x)`-phase bound is about — every phase pairs every
    /// cohort and sizes double all the way to `x`.
    Dense,
}

/// Builds the `LeafElection` engine for one `(c, x, seed)` configuration.
fn build_engine(
    c: u32,
    x: u32,
    seed: u64,
    binary: bool,
    occupancy: Occupancy,
) -> Engine<LeafElection> {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    let leaves = u64::from(prev_pow2(c) / 2);
    let ids: Vec<u32> = match occupancy {
        Occupancy::Random => sample_distinct(leaves, x as usize, seed ^ 0xE8)
            .into_iter()
            .map(|id| id as u32 + 1)
            .collect(),
        Occupancy::Dense => (1..=x).collect(),
    };
    for id in ids {
        exec.add_node(if binary {
            LeafElection::with_binary_search(c, id)
        } else {
            LeafElection::new(c, id)
        });
    }
    exec
}

/// Reads the digest off a finished execution.
fn digest(exec: &Engine<LeafElection>, report: &mac_sim::RunReport) -> Digest {
    let winner = report.leaders.first().expect("leader elected");
    let stats = exec.node(*winner).stats();
    (
        report.rounds_to_solve().expect("solved"),
        stats.search_rounds_by_phase.clone(),
    )
}

/// One `LeafElection` execution at one seed.
pub(crate) fn measure_one(c: u32, x: u32, seed: u64, binary: bool, occupancy: Occupancy) -> Digest {
    let mut exec = build_engine(c, x, seed, binary, occupancy);
    let report = exec
        .run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    digest(&exec, &report)
}

pub(crate) fn measure(
    c: u32,
    x: u32,
    trials: usize,
    seed: u64,
    binary: bool,
    occupancy: Occupancy,
) -> Vec<Digest> {
    run_trials_with(
        trials,
        seed,
        move |s| build_engine(c, x, s, binary, occupancy),
        digest,
    )
}

fn prev_pow2(x: u32) -> u32 {
    1 << (31 - x.leading_zeros())
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E8",
        "LeafElection (Theorem 17: O(log h · log log x) rounds)",
    );
    let cs = [64u32, 1024, 1 << 14];
    let xs: Vec<u32> = scale.thin(&[2, 8, 32, 128, 512]);

    let caption = "Rounds to elect a leader";
    let mut sweep = ctx.sweep::<Samples>(
        caption,
        &[
            "C",
            "h",
            "x",
            "rounds mean",
            "rounds max",
            "theory lg h·lglg x",
            "mean/theory",
        ],
    );
    for &c in &cs {
        let h = (prev_pow2(c) / 2).trailing_zeros();
        for &x in &xs {
            if x > prev_pow2(c) / 2 {
                continue;
            }
            sweep.row(
                scale.trials(),
                SeedStream::Offset(seed_base("e8", u64::from(c), u64::from(x))),
                Samples::default,
                move |seed, acc| {
                    acc.push(measure_one(c, x, seed, false, Occupancy::Random).0);
                },
                move |acc| {
                    let rounds = acc.0.finish();
                    let theory =
                        (lg(f64::from(h)).max(1.0)) * lg(lg(f64::from(x.max(2))).max(2.0)).max(1.0);
                    vec![
                        c.to_string(),
                        h.to_string(),
                        x.to_string(),
                        format!("{:.1}", rounds.mean),
                        format!("{:.0}", rounds.max),
                        format!("{theory:.1}"),
                        format!("{:.1}", rounds.mean / theory),
                    ]
                },
            );
        }
    }
    report.section(caption, sweep.run());

    // Per-phase search cost at one configuration (Lemma 16's 1/i shape).
    // Dense occupancy so that every phase pairs every cohort: the regime the
    // per-phase bound describes (random-sparse runs end in 2-4 phases
    // because unpaired cohorts retire — see the note below). Several rows
    // derive from one bounded trace batch, so this section stays on the
    // trial layer (itself a single-cell campaign).
    let (c, x) = (1u32 << 14, 512u32);
    let data = measure(
        c,
        x,
        scale.trials().min(30),
        seed_base("e8p", u64::from(c), u64::from(x)),
        false,
        Occupancy::Dense,
    );
    let max_phases = data.iter().map(|d| d.1.len()).max().unwrap_or(0);
    let mut phase_table = Table::new(&[
        "phase i",
        "cohort size p",
        "search rounds mean",
        "Lemma 16: 5·⌈log_(p+1) h⌉",
    ]);
    let h = (prev_pow2(c) / 2).trailing_zeros();
    for i in 0..max_phases {
        let vals: Vec<u64> = data.iter().filter_map(|d| d.1.get(i).copied()).collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
        let p = 1u64 << i;
        #[allow(clippy::cast_precision_loss)]
        let lemma = 5.0 * (f64::from(h).ln() / ((p + 1) as f64).ln()).ceil().max(1.0);
        phase_table.row_owned(vec![
            (i + 1).to_string(),
            p.to_string(),
            format!("{mean:.1}"),
            format!("{lemma:.0}"),
        ]);
    }
    report.section(
        "Per-phase SplitSearch cost at C=2^14, x=512, dense occupancy (winner's cohort)",
        phase_table,
    );
    report.note(
        "Per-phase search rounds decay as cohorts double — the coalescing-cohorts \
         acceleration of Lemma 16 — and totals track lg h · lg lg x."
            .to_string(),
    );
    report.note(
        "Occupancy matters: with sparse random leaves most cohorts find no partner \
         at the divergence level and retire (Fig. 3's pairing rule), so typical runs \
         finish in 2–4 phases and small cohorts. The O(log x)-phase, fully-coalescing \
         regime the theorem bounds is realized by dense occupancy, used above."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn rounds_fit_theorem_17() {
        for (c, x) in [(64u32, 16u32), (1024, 64)] {
            let data = measure(c, x, 8, 3, false, Occupancy::Random);
            let h = f64::from((prev_pow2(c) / 2).trailing_zeros());
            // Concrete budget: per-phase 5*ceil(log_{p+1} h) + 2, summed.
            let mut budget = 2.0;
            for i in 0..=(f64::from(x).log2().ceil() as u32) {
                let p = f64::from(1u32 << i);
                budget += 5.0 * (h.ln() / (p + 1.0).ln()).ceil().max(1.0) + 2.0;
            }
            for (rounds, _) in &data {
                assert!(
                    (*rounds as f64) <= budget,
                    "C={c} x={x}: {rounds} > {budget}"
                );
            }
        }
    }

    #[test]
    fn per_phase_cost_shrinks() {
        let data = measure(1 << 12, 128, 6, 1, false, Occupancy::Dense);
        for (_, phases) in &data {
            if phases.len() >= 3 {
                assert!(
                    phases.last().unwrap() <= &phases[0],
                    "phase costs should shrink: {phases:?}"
                );
            }
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 2);
    }
}
