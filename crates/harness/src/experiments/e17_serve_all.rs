//! **E17** (extension) — serving *all* contenders, the original
//! conflict-resolution problem (ALOHA onward; the paper's refs \[9, 13\]).
//! Three strategies drain the same burst:
//!
//! * `SerializeAll` around the paper's pipeline — every delivery inherits
//!   the multi-channel speed-up;
//! * `SerializeAll` around the single-channel tournament — the adaptive
//!   `O(log k)`-per-epoch generic alternative;
//! * the deterministic Capetanakis `TreeSplit` — the classic
//!   `O(k + k·log(n/k))` benchmark.
//!
//! The interesting read-out is rounds **per packet** as a function of
//! burst density `k/n`.

use contention::baselines::{CdTournament, TreeSplit};
use contention::serialize::SerializeAll;
use contention::{FullAlgorithm, Params};
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig, StopWhen};

use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};

/// One pipeline-serializer drain of a `k`-packet burst.
fn pipeline_drain_one(c: u32, n: u64, k: usize, seed: u64) -> u64 {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000_000);
    let mut exec = Engine::new(cfg);
    for payload in 0..k as u32 {
        let factory = move || FullAlgorithm::new(Params::practical(), c, n);
        exec.add_node(SerializeAll::new(factory, payload));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_executed
}

#[cfg(test)]
fn pipeline_drain(c: u32, n: u64, k: usize, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| pipeline_drain_one(c, n, k, seed.wrapping_add(i)))
        .collect()
}

/// One tournament-serializer drain.
fn tournament_drain_one(k: usize, seed: u64) -> u64 {
    let cfg = SimConfig::new(1)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000_000);
    let mut exec = Engine::new(cfg);
    for payload in 0..k as u32 {
        exec.add_node(SerializeAll::new(CdTournament::new, payload));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_executed
}

#[cfg(test)]
fn tournament_drain(k: usize, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| tournament_drain_one(k, seed.wrapping_add(i)))
        .collect()
}

/// One deterministic tree-split drain. Random id placement: evenly spaced
/// ids would be the DFS's best case (every singleton subtree resolves in
/// one probe); random placement is the fair workload for the
/// O(k·log(n/k)) claim.
fn tree_split_drain_one(n: u64, k: usize, seed: u64) -> u64 {
    let cfg = SimConfig::new(1)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(10_000_000);
    let mut exec = Engine::new(cfg);
    for id in crate::sample_distinct(n, k, seed ^ 0x17) {
        exec.add_node(TreeSplit::new(id, n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_executed
}

#[cfg(test)]
fn tree_split_drain(n: u64, k: usize, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| tree_split_drain_one(n, k, seed.wrapping_add(i)))
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E17",
        "Serving all contenders: per-packet cost of three strategies",
    );
    let n = 1u64 << 12;
    let c = 64u32;
    let trials = scale.trials().min(15);

    let caption = format!("Rounds per packet, n = 2^12, C = {c} (pipeline only)");
    let mut sweep = ctx.sweep::<(Samples, Samples, Samples)>(
        &caption,
        &[
            "k (packets)",
            "k/n",
            "pipeline serializer (r/pkt)",
            "tournament serializer (r/pkt)",
            "tree split (r/pkt)",
        ],
    );
    for &k in &scale.thin(&[16usize, 64, 256, 1024]) {
        // Big bursts cost O(k) epochs each; scale trials down so every grid
        // point costs roughly the same wall time.
        let kt = trials.max(3) * 64 / k.max(64);
        let kt = kt.clamp(3, trials);
        let pb = seed_base("e17p", k as u64, n);
        let tb = seed_base("e17t", k as u64, n);
        let sb = seed_base("e17s", k as u64, n);
        sweep.row(
            kt,
            SeedStream::Offset(0),
            <(Samples, Samples, Samples)>::default,
            move |i, acc| {
                acc.0.push(pipeline_drain_one(c, n, k, pb.wrapping_add(i)));
                acc.1.push(tournament_drain_one(k, tb.wrapping_add(i)));
                acc.2.push(tree_split_drain_one(n, k, sb.wrapping_add(i)));
            },
            move |(pipeline, tournament, tree)| {
                #[allow(clippy::cast_precision_loss)]
                let per = |s: &Samples| s.0.finish().mean / k as f64;
                #[allow(clippy::cast_precision_loss)]
                let density = k as f64 / n as f64;
                vec![
                    k.to_string(),
                    format!("{density:.3}"),
                    format!("{:.1}", per(&pipeline)),
                    format!("{:.1}", per(&tournament)),
                    format!("{:.1}", per(&tree)),
                ]
            },
        );
    }
    report.section(caption, sweep.run());
    report.note(
        "Tree splitting — the one strategy here that consumes unique ids — is the \
         efficiency reference at every density (O(k + k·log(n/k)) total). Among the \
         id-free strategies, the tournament serializer pays ~2·lg k per packet while \
         the pipeline serializer is governed by n, flat in k: the two cross near \
         k ≈ 2^8, the same density story as E9 but for full service."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn all_three_strategies_drain() {
        let n = 1u64 << 10;
        let k = 32usize;
        assert!(!pipeline_drain(16, n, k, 2, 1).is_empty());
        assert!(!tournament_drain(k, 2, 1).is_empty());
        assert!(!tree_split_drain(n, k, 2, 1).is_empty());
    }

    #[test]
    fn tree_split_flat_per_packet_when_dense() {
        let n = 1u64 << 10;
        let dense = tree_split_drain(n, 1024, 1, 0)[0] as f64 / 1024.0;
        assert!(
            dense <= 3.0,
            "dense tree split should be ~2 rounds/packet: {dense}"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
