//! **E21** — dynamic-arrivals traffic: delivered throughput and packet
//! latency vs offered load, across algorithms, collision-detection modes,
//! and fault stacks.
//!
//! Every other experiment measures the paper's *one-shot* problem: a
//! fixed active set contends until the first lone transmission. This one
//! measures the *queueing* regime the dynamic-arrivals literature studies:
//! packets arrive continuously from a seeded [`ArrivalProcess`], each
//! delivered packet retires its sender, and the interesting outputs are
//! delivered throughput, latency percentiles, and backlog — not a solve
//! round. Four sections:
//!
//! * **load curve** — throughput and p50/p99 latency vs Poisson offered
//!   load λ for the CD-aware backoff MAC and the p-persistent ALOHA
//!   control, under strong CD;
//! * **arrival × CD matrix** — the same mean load shaped four ways
//!   (Poisson, bursty on/off, fixed-rate, periodic adversarial batch)
//!   under each CD mode: weaker feedback degrades the backoff MAC toward
//!   (and past) the CD-oblivious control;
//! * **fault stacks** — horizonless drain runs under noise, loss,
//!   jamming, crashes, and the stacked adversary, with dropped-packet and
//!   budget-trip accounting ([`mac_sim::StopCause::BudgetExhausted`] is a
//!   clean, counted outcome, never a wedge);
//! * **full-scale only** — a fine sweep near the saturation knee.
//!
//! Every cell is a pure function of the seed (latency histograms merge
//! exactly; backlog peaks max-merge), so reports are bit-identical for
//! any `--workers` count — pinned by the in-file invariance test.

use mac_sim::campaign::{Aggregate, SeedStream};
use mac_sim::fault::{CrashStop, JamBudget, Layered, LossyChannel, NoisyCd};
use mac_sim::{
    run_traffic, ArrivalProcess, BackoffMac, CdMode, FeedbackModel, PowHistogram, SimConfig,
    SlottedAloha, StopCause, TrafficReport, TrafficSpec,
};

use super::seed_base;
use crate::{cell_f64, ExperimentReport, RunCtx, Scale};

const C: u32 = 2;

/// Per-cell aggregate: exact counters, a max-merged backlog peak, and the
/// exactly-mergeable latency histogram — everything downstream columns
/// need, nothing that depends on shard decomposition.
#[derive(Debug, Clone, Default)]
struct TrafficAgg {
    offered: u64,
    delivered: u64,
    dropped: u64,
    rounds: u64,
    trials: u64,
    budget_trips: u64,
    backlog_peak: u64,
    latency: PowHistogram,
}

impl TrafficAgg {
    fn absorb(&mut self, report: &TrafficReport) {
        self.offered += report.offered;
        self.delivered += report.delivered;
        self.dropped += report.dropped;
        self.rounds += report.rounds;
        self.trials += 1;
        self.budget_trips += u64::from(report.stop == StopCause::BudgetExhausted);
        self.backlog_peak = self.backlog_peak.max(report.backlog_peak);
        self.latency.merge(&report.latency);
    }

    #[allow(clippy::cast_precision_loss)]
    fn throughput(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.delivered as f64 / self.rounds as f64
        }
    }

    #[allow(clippy::cast_precision_loss)]
    fn delivered_pct(&self) -> f64 {
        if self.offered == 0 {
            100.0
        } else {
            100.0 * self.delivered as f64 / self.offered as f64
        }
    }
}

impl Aggregate for TrafficAgg {
    fn merge(&mut self, other: Self) {
        self.offered += other.offered;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.rounds += other.rounds;
        self.trials += other.trials;
        self.budget_trips += other.budget_trips;
        self.backlog_peak = self.backlog_peak.max(other.backlog_peak);
        self.latency.merge(&other.latency);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Algo {
    Backoff,
    Aloha,
}

impl Algo {
    fn label(self) -> &'static str {
        match self {
            Algo::Backoff => "backoff-cd",
            Algo::Aloha => "aloha-0.2",
        }
    }
}

/// One seeded traffic run; the master seed drives the arrival stream and
/// every per-packet RNG, so this is a pure function of its arguments.
fn one_run<F: FeedbackModel>(
    algo: Algo,
    spec: &TrafficSpec,
    feedback: F,
    budget: Option<u64>,
    seed: u64,
) -> TrafficReport {
    let mut config = SimConfig::new(C).seed(seed).max_rounds(1_000_000);
    if let Some(budget) = budget {
        config = config.round_budget(budget);
    }
    let out = match algo {
        Algo::Backoff => run_traffic(config, feedback, spec, |pkt| BackoffMac::new(2, 256, pkt)),
        Algo::Aloha => run_traffic(config, feedback, spec, |pkt| SlottedAloha::new(0.2, pkt)),
    };
    out.unwrap_or_else(|e| panic!("traffic trial with seed {seed} failed: {e}"))
}

fn load_row_cells(lambda_pct: u64, algo: Algo, acc: &TrafficAgg) -> Vec<String> {
    vec![
        algo.label().to_string(),
        format!("{:.2}", lambda_pct as f64 / 100.0),
        acc.offered.to_string(),
        acc.delivered.to_string(),
        format!("{:.3}", acc.throughput()),
        acc.latency.quantile(0.5).to_string(),
        acc.latency.quantile(0.99).to_string(),
        acc.backlog_peak.to_string(),
    ]
}

/// Runs the experiment.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E21",
        "Dynamic-arrivals traffic: throughput and latency vs offered load",
    );
    let trials = scale.trials().min(40);
    let horizon = match scale {
        Scale::Quick => 500,
        Scale::Full => 1_500,
    };

    // --- Section 1: load curve ------------------------------------------
    let caption = format!(
        "Delivered throughput and latency vs Poisson offered load \
         (strong CD, C = {C}, horizon {horizon} rounds)"
    );
    let headers = [
        "algo",
        "λ",
        "offered",
        "delivered",
        "thpt",
        "p50 lat",
        "p99 lat",
        "peak backlog",
    ];
    let mut sweep = ctx.sweep::<TrafficAgg>(caption.clone(), &headers);
    let lambdas = scale.thin(&[10u64, 30, 50, 70, 90]);
    for &algo in &[Algo::Backoff, Algo::Aloha] {
        for &lambda_pct in &lambdas {
            let spec = TrafficSpec::new(
                ArrivalProcess::Poisson {
                    rate: lambda_pct as f64 / 100.0,
                },
                horizon,
            )
            .horizon(horizon);
            sweep.row(
                trials,
                SeedStream::Offset(seed_base("e21-load", lambda_pct, algo as u64)),
                TrafficAgg::default,
                move |seed, acc| acc.absorb(&one_run(algo, &spec, CdMode::Strong, None, seed)),
                move |acc| load_row_cells(lambda_pct, algo, &acc),
            );
        }
    }
    let table = sweep.run();
    let rows: Vec<_> = table.rows().to_vec();
    report.section(caption, table);
    // Saturation note from rendered cells only (resume bit-identity): the
    // backoff MAC's throughput at the highest load vs the control's.
    let half = rows.len() / 2;
    if let (Some(backoff_last), Some(aloha_last)) = (rows.get(half - 1), rows.last()) {
        report.note(format!(
            "At the highest offered load the CD-aware backoff MAC sustains \
             {:.3} packets/round against the ALOHA control's {:.3}: collision \
             feedback lets the window adapt to the backlog instead of \
             thrashing at a fixed persistence.",
            cell_f64(&backoff_last[4]),
            cell_f64(&aloha_last[4]),
        ));
    }

    // --- Section 2: arrival processes × CD modes ------------------------
    // Every process offers the same mean load (0.4 packets/round) with a
    // different shape; every CD mode weakens what the backoff MAC hears.
    let processes: &[(&str, ArrivalProcess)] = &[
        ("poisson", ArrivalProcess::Poisson { rate: 0.4 }),
        (
            "bursty",
            ArrivalProcess::Bursty {
                burst_rate: 1.2,
                on_to_off: 0.2,
                off_to_on: 0.1,
            },
        ),
        (
            "fixed-rate",
            ArrivalProcess::FixedRate {
                period: 5,
                batch: 2,
            },
        ),
        (
            "adv-batch",
            ArrivalProcess::Batch {
                at: 0,
                size: 60,
                period: Some(150),
            },
        ),
    ];
    let cd_modes: &[(&str, CdMode)] = &[
        ("strong", CdMode::Strong),
        ("rx-only", CdMode::ReceiverOnly),
        ("none", CdMode::None),
    ];
    let process_grid = scale.thin(&[0usize, 1, 2, 3]);
    let caption2 = format!(
        "Arrival shape × collision-detection mode (backoff-cd, mean load 0.4, \
         horizon {horizon} rounds)"
    );
    let mut sweep2 = ctx.sweep::<TrafficAgg>(
        caption2.clone(),
        &[
            "process",
            "cd",
            "delivered %",
            "thpt",
            "p99 lat",
            "peak backlog",
        ],
    );
    for &pi in &process_grid {
        let (pname, process) = processes[pi];
        for (ci, &(cdname, cd)) in cd_modes.iter().enumerate() {
            let spec = TrafficSpec::new(process, horizon).horizon(horizon);
            sweep2.row(
                trials,
                SeedStream::Offset(seed_base("e21-matrix", pi as u64, ci as u64)),
                TrafficAgg::default,
                move |seed, acc| acc.absorb(&one_run(Algo::Backoff, &spec, cd, None, seed)),
                move |acc| {
                    vec![
                        pname.to_string(),
                        cdname.to_string(),
                        format!("{:.1}", acc.delivered_pct()),
                        format!("{:.3}", acc.throughput()),
                        acc.latency.quantile(0.99).to_string(),
                        acc.backlog_peak.to_string(),
                    ]
                },
            );
        }
    }
    let table2 = sweep2.run();
    let rows2: Vec<_> = table2.rows().to_vec();
    report.section(caption2, table2);
    if rows2.len() >= cd_modes.len() {
        let strong = cell_f64(&rows2[0][2]);
        let none = cell_f64(&rows2[cd_modes.len() - 1][2]);
        report.note(format!(
            "Removing collision detection costs the backoff MAC delivery \
             ({strong:.1}% → {none:.1}% of offered packets on Poisson arrivals): \
             without CD, congested listeners hear collisions as silence and \
             shrink their windows exactly when they should grow them."
        ));
    }

    // --- Section 3: fault stacks on horizonless drain runs --------------
    // Arrival window closes, then the run must drain — or trip the round
    // budget cleanly. Crashed packets count as dropped, never as a wedge.
    let window = 400u64;
    let budget = 8_000u64;
    let caption3 = format!(
        "Fault stacks on horizonless drain runs (backoff-cd, Poisson 0.4, \
         arrival window {window}, round budget {budget})"
    );
    let mut sweep3 = ctx.sweep::<TrafficAgg>(
        caption3.clone(),
        &[
            "faults",
            "offered",
            "delivered",
            "dropped",
            "budget trips",
            "p99 lat",
            "mean rounds",
        ],
    );
    let drain_spec = TrafficSpec::new(ArrivalProcess::Poisson { rate: 0.4 }, window);
    let stacks: &[&str] = &["clean", "noisy", "lossy", "jam", "crash", "stacked"];
    for (si, &stack) in stacks.iter().enumerate() {
        sweep3.row(
            trials,
            SeedStream::Offset(seed_base("e21-faults", si as u64, 0)),
            TrafficAgg::default,
            move |seed, acc| {
                let report = match stack {
                    "clean" => one_run(
                        Algo::Backoff,
                        &drain_spec,
                        CdMode::Strong,
                        Some(budget),
                        seed,
                    ),
                    "noisy" => one_run(
                        Algo::Backoff,
                        &drain_spec,
                        Layered::new(NoisyCd::symmetric(0.05), CdMode::Strong),
                        Some(budget),
                        seed,
                    ),
                    "lossy" => one_run(
                        Algo::Backoff,
                        &drain_spec,
                        Layered::new(LossyChannel::new(0.1), CdMode::Strong),
                        Some(budget),
                        seed,
                    ),
                    "jam" => one_run(
                        Algo::Backoff,
                        &drain_spec,
                        JamBudget::new(CdMode::Strong, 25),
                        Some(budget),
                        seed,
                    ),
                    "crash" => one_run(
                        Algo::Backoff,
                        &drain_spec,
                        Layered::new(CrashStop::random(16, 64, window), CdMode::Strong),
                        Some(budget),
                        seed,
                    ),
                    "stacked" => one_run(
                        Algo::Backoff,
                        &drain_spec,
                        Layered::new(
                            NoisyCd::symmetric(0.05),
                            Layered::new(
                                LossyChannel::new(0.05),
                                Layered::new(
                                    CrashStop::random(8, 64, window),
                                    JamBudget::new(CdMode::Strong, 10),
                                ),
                            ),
                        ),
                        Some(budget),
                        seed,
                    ),
                    other => unreachable!("unknown fault stack {other}"),
                };
                acc.absorb(&report);
            },
            move |acc| {
                #[allow(clippy::cast_precision_loss)]
                let mean_rounds = acc.rounds as f64 / acc.trials.max(1) as f64;
                vec![
                    stack.to_string(),
                    acc.offered.to_string(),
                    acc.delivered.to_string(),
                    acc.dropped.to_string(),
                    acc.budget_trips.to_string(),
                    acc.latency.quantile(0.99).to_string(),
                    format!("{mean_rounds:.0}"),
                ]
            },
        );
    }
    let table3 = sweep3.run();
    let rows3: Vec<_> = table3.rows().to_vec();
    report.section(caption3, table3);
    if let Some(crash_row) = rows3.iter().find(|r| r[0] == "crash") {
        report.note(format!(
            "Under the crash adversary every lost packet is accounted \
             ({} dropped of {} offered across all trials) and the drain still \
             completes: crashed slots never block the drained-backlog stop, \
             and any run the faults starve past the budget exits as a counted \
             budget trip — exit paths, not wedges.",
            &crash_row[3], &crash_row[1],
        ));
    }

    // --- Section 4 (full scale only): the saturation knee ---------------
    if scale == Scale::Full {
        let caption4 = format!(
            "Saturation knee: fine Poisson load sweep (backoff-cd, strong CD, \
             horizon {horizon} rounds)"
        );
        let mut sweep4 = ctx.sweep::<TrafficAgg>(
            caption4.clone(),
            &[
                "λ",
                "thpt",
                "delivered %",
                "p50 lat",
                "p99 lat",
                "peak backlog",
            ],
        );
        for &lambda_pct in &[60u64, 70, 80, 85, 90, 95] {
            let spec = TrafficSpec::new(
                ArrivalProcess::Poisson {
                    rate: lambda_pct as f64 / 100.0,
                },
                horizon,
            )
            .horizon(horizon);
            sweep4.row(
                trials,
                SeedStream::Offset(seed_base("e21-knee", lambda_pct, 0)),
                TrafficAgg::default,
                move |seed, acc| {
                    acc.absorb(&one_run(Algo::Backoff, &spec, CdMode::Strong, None, seed));
                },
                move |acc| {
                    vec![
                        format!("{:.2}", lambda_pct as f64 / 100.0),
                        format!("{:.3}", acc.throughput()),
                        format!("{:.1}", acc.delivered_pct()),
                        acc.latency.quantile(0.5).to_string(),
                        acc.latency.quantile(0.99).to_string(),
                        acc.backlog_peak.to_string(),
                    ]
                },
            );
        }
        report.section(caption4, sweep4.run());
        report.note(
            "Past the knee the queue is unstable: peak backlog tracks the \
             horizon, and delivered throughput *falls* as load rises — classic \
             congestion collapse, since every contention window now starts \
             inside a standing crowd of backlogged transmitters."
                .to_string(),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cell_u64, RunCtx, Scale};

    #[test]
    fn throughput_increases_with_load_until_saturation() {
        let r = run(&RunCtx::new(Scale::Quick));
        let rows = r.sections[0].table.rows().to_vec();
        assert!(rows.len() >= 6, "two algos × thinned λ grid");
        // Within the backoff block, throughput at the lowest λ is below
        // throughput at the highest λ (more offered, more delivered).
        let half = rows.len() / 2;
        let lo = cell_f64(&rows[0][4]);
        let hi = cell_f64(&rows[half - 1][4]);
        assert!(lo < hi, "throughput did not grow with load: {lo} vs {hi}");
        for row in &rows {
            let thpt = cell_f64(&row[4]);
            assert!(thpt <= 1.0, "one primary channel delivers ≤ 1/round");
            assert!(cell_u64(&row[5]) <= cell_u64(&row[6]), "p50 ≤ p99");
        }
    }

    #[test]
    fn cd_matrix_shows_strong_cd_delivering_no_less_than_none() {
        let r = run(&RunCtx::new(Scale::Quick));
        let rows = r.sections[1].table.rows().to_vec();
        // Rows come in blocks of three CD modes per process.
        for block in rows.chunks(3) {
            if block.len() < 3 {
                continue;
            }
            let strong = cell_f64(&block[0][2]);
            let none = cell_f64(&block[2][2]);
            assert!(
                strong >= none - 1.0,
                "strong CD delivered materially less than no CD: {strong} vs {none}"
            );
        }
    }

    #[test]
    fn fault_section_accounts_every_packet() {
        let r = run(&RunCtx::new(Scale::Quick));
        let rows = r.sections[2].table.rows().to_vec();
        assert_eq!(rows.len(), 6, "all six fault stacks present");
        let clean = &rows[0];
        assert_eq!(cell_u64(&clean[3]), 0, "clean runs drop nothing");
        assert_eq!(cell_u64(&clean[4]), 0, "clean runs never trip the budget");
        let crash = rows.iter().find(|r| r[0] == "crash").expect("crash row");
        assert!(cell_u64(&crash[3]) > 0, "crash stack must drop packets");
    }

    #[test]
    fn quick_report_is_bit_identical_across_worker_counts() {
        let base = run(&RunCtx::new(Scale::Quick).workers(1));
        for workers in [2, 3, 8] {
            let other = run(&RunCtx::new(Scale::Quick).workers(workers));
            assert_eq!(
                base.sections.len(),
                other.sections.len(),
                "{workers} workers changed the section count"
            );
            for (a, b) in base.sections.iter().zip(&other.sections) {
                assert_eq!(
                    a.table.rows(),
                    b.table.rows(),
                    "{workers} workers diverged from 1 worker"
                );
            }
            assert_eq!(base.notes, other.notes, "{workers} workers changed notes");
        }
    }
}
