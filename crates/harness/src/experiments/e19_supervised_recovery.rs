//! **E19** (robustness extension) — supervised recovery: graceful
//! degradation beyond E18's breakdown thresholds.
//!
//! E18 located the fault levels at which the paper's pipeline drops below
//! 50% success when each run gets one shot at the whole round budget. This
//! experiment gives the *same* pipeline, under the *same* total engine
//! budget, a supervisor ([`contention::Supervised`]): the budget is split
//! into slices, and a node whose attempt exhausts its slice without an
//! outcome is restarted from clean state on a fresh derived RNG stream.
//!
//! The headline is a contrast between the two fault kinds that wedge the
//! pipeline. A reactive jammer holds a *finite* veto budget, so every
//! attempt it kills drains it: a sacrificed slice is not wasted, it buys
//! the next restart a cleaner channel, and the supervised 50% breakdown
//! moves from E18's ~7 vetoes out past 16. Symmetric CD noise is
//! *memoryless*: a restarted attempt faces exactly the flip probability it
//! just wedged under, per-attempt success does not improve across
//! attempts, and the supervised column tracks the unsupervised one to
//! within sampling error. Restart-with-backoff is transient-fault
//! machinery — the tables measure both the rescue and its limit, and the
//! anatomy table prices recovery in rounds and restarts.

use contention::phase::PhaseTelemetry;
use contention::supervise::RESTART_MARKER;
use contention::{supervised_paper_node, FullAlgorithm, Params, RestartPolicy};
use contention_analysis::threshold_crossing;
use mac_sim::campaign::{Aggregate, SeedStream};
use mac_sim::fault::{Layered, NoisyCd};
use mac_sim::{guarded_verdict, CdMode, Engine, FeedbackModel, SimConfig, TrialVerdict};

use super::seed_base;
use crate::{ExperimentReport, RunCtx};

/// Channels, contender universe, and active-set size: identical to E18 so
/// the unsupervised column reproduces its regime.
const C: u32 = 64;
const N: u64 = 1 << 12;
const ACTIVE: usize = 96;
/// The total engine round budget — the same for both algorithms, so the
/// supervisor gets no extra rounds, only a different spending schedule.
const BUDGET: u64 = 1_000;
/// Supervision slices: `ATTEMPTS` equal slices of `SLICE` rounds exactly
/// tile `BUDGET`. Constant slices (backoff 1) keep the budgets identical;
/// exponential backoff is available via [`RestartPolicy::backoff`] and is
/// exercised by the core unit tests.
const SLICE: u64 = 250;
const ATTEMPTS: u32 = 4;

fn policy() -> RestartPolicy {
    RestartPolicy::new(SLICE, ATTEMPTS).backoff(1)
}

/// Outcome of one supervised trial: rounds to solve (restart overhead
/// included — the clock never resets) and the solver's restart count.
struct SolvedTrial {
    rounds: u64,
    restarts: u64,
}

/// One unsupervised pipeline run: `Some(rounds)` on a solve.
fn unsupervised_one<FM: FeedbackModel>(seed: u64, feedback: FM) -> Option<u64> {
    let cfg = SimConfig::new(C).seed(seed).round_budget(BUDGET);
    let verdict = guarded_verdict(|| {
        let mut engine = Engine::with_feedback(cfg, feedback);
        for _ in 0..ACTIVE {
            engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
        }
        engine.run_summary().map(|s| s.rounds_to_solve())
    });
    match verdict {
        TrialVerdict::Solved(rounds) => Some(rounds),
        TrialVerdict::Wedged(_) => None,
        TrialVerdict::Failed(e) => panic!("unexpected simulation error: {e}"),
    }
}

/// One supervised pipeline run, reading the solver's restart count off its
/// telemetry spine (each restart archives a [`RESTART_MARKER`] record).
fn supervised_one<FM: FeedbackModel>(seed: u64, feedback: FM) -> Option<SolvedTrial> {
    let cfg = SimConfig::new(C).seed(seed).round_budget(BUDGET);
    let verdict = guarded_verdict(|| {
        let mut engine = Engine::with_feedback(cfg, feedback);
        for _ in 0..ACTIVE {
            engine.add_node(supervised_paper_node(Params::practical(), C, N, policy()));
        }
        engine.run().map(|report| {
            report.solver.and_then(|id| {
                let restarts = engine
                    .node(id)
                    .phase_stats()
                    .iter()
                    .filter(|s| s.name == RESTART_MARKER)
                    .count() as u64;
                report
                    .solved_round
                    .map(|rounds| SolvedTrial { rounds, restarts })
            })
        })
    });
    match verdict {
        TrialVerdict::Solved(trial) => Some(trial),
        TrialVerdict::Wedged(_) => None,
        TrialVerdict::Failed(e) => panic!("unexpected simulation error: {e}"),
    }
}

/// The noise grid: E18's points plus extra density around its unsupervised
/// 50% breakdown (~0.625 at full scale) and beyond.
fn noise_grid(scale: crate::Scale) -> Vec<f64> {
    scale.thin(&[0.0, 0.25, 0.5, 0.6, 0.7, 0.75, 0.85])
}

/// The jam grid: dense where the supervised cliff lives. E18 put the
/// unsupervised 50% breakdown at ~7 vetoes (dead by 16); supervision moves
/// it past 16, with its own cliff near 24 where the jammer outlasts all
/// `ATTEMPTS` restarts.
fn jam_grid(scale: crate::Scale) -> Vec<u64> {
    scale.thin(&[0, 4, 8, 12, 16, 20, 24, 32])
}

fn trials_for(scale: crate::Scale) -> usize {
    match scale {
        crate::Scale::Quick => 8,
        crate::Scale::Full => 40,
    }
}

/// Per-row aggregate of the threshold tables: solved rounds per fault
/// level; shards merge by element-wise concatenation in seed order.
struct LevelCells {
    rounds: Vec<Vec<u64>>,
}

impl Aggregate for LevelCells {
    fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.rounds.iter_mut().zip(other.rounds) {
            mine.extend(theirs);
        }
    }
}

/// Per-level aggregate of the anatomy table.
#[derive(Default)]
struct Anatomy {
    rounds: Vec<u64>,
    restarts: Vec<u64>,
}

impl Aggregate for Anatomy {
    fn merge(&mut self, other: Self) {
        self.rounds.extend(other.rounds);
        self.restarts.extend(other.restarts);
    }
}

fn render_level(trials: usize, rounds: &[u64]) -> (f64, String) {
    #[allow(clippy::cast_precision_loss)]
    let success = rounds.len() as f64 / trials as f64;
    let rendered = if rounds.is_empty() {
        "dead".to_string()
    } else {
        let mut sorted = rounds.to_vec();
        sorted.sort_unstable();
        format!("{:.0}% ({}r)", 100.0 * success, sorted[sorted.len() / 2])
    };
    (success, rendered)
}

fn threshold_cell(levels: &[f64], success: &[f64]) -> String {
    match threshold_crossing(levels, success, 0.5) {
        Some(x) => format!("~{x:.3}"),
        None if success.first().copied().unwrap_or(0.0) < 0.5 => "below at 0".to_string(),
        None => "none in range".to_string(),
    }
}

/// Streams one algorithm's row of a threshold table: trial `i` of level
/// `j` runs at `seed_base(tag, kind, j) + i`. Both rows of a table use the
/// same `tag`/`kind`, so the supervised and unsupervised runs at one
/// `(level, trial)` face the same seeded fault pattern.
#[allow(clippy::too_many_arguments)]
fn threshold_row<FM>(
    sweep: &mut crate::Sweep<LevelCells>,
    name: &'static str,
    tag: &'static str,
    kind: u64,
    trials: usize,
    levels: &[f64],
    feedback: impl Fn(usize) -> FM + Send + Sync + 'static,
    supervised: bool,
) where
    FM: FeedbackModel + 'static,
{
    let n_levels = levels.len();
    let levels = levels.to_vec();
    sweep.row(
        trials,
        SeedStream::Offset(0),
        move || LevelCells {
            rounds: vec![Vec::new(); n_levels],
        },
        move |i, acc| {
            for (j, cell) in acc.rounds.iter_mut().enumerate() {
                let seed = seed_base(tag, kind, j as u64).wrapping_add(i);
                let solved = if supervised {
                    supervised_one(seed, feedback(j)).map(|t| t.rounds)
                } else {
                    unsupervised_one(seed, feedback(j))
                };
                if let Some(r) = solved {
                    cell.push(r);
                }
            }
        },
        move |acc| {
            let mut row = vec![name.to_string()];
            let mut success = Vec::with_capacity(acc.rounds.len());
            for rounds in &acc.rounds {
                let (s, rendered) = render_level(trials, rounds);
                success.push(s);
                row.push(rendered);
            }
            row.push(threshold_cell(&levels, &success));
            row
        },
    );
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E19",
        "Supervised recovery: restart-with-backoff pushes the breakdown thresholds out",
    );
    let trials = trials_for(ctx.scale);
    let noise_ps = noise_grid(ctx.scale);

    let caption_noise = format!(
        "CD noise, one {BUDGET}-round budget either way: unsupervised runs it in one attempt, \
         supervised splits it into {ATTEMPTS} clean-restart slices of {SLICE} rounds \
         (C = {C}, |A| = {ACTIVE}, {trials} trials)"
    );
    let mut headers: Vec<String> = vec!["algorithm".into()];
    headers.extend(noise_ps.iter().map(|p| format!("p = {p}")));
    headers.push("50% breakdown".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut sweep = ctx.sweep::<LevelCells>(&caption_noise, &header_refs);
    let ps = noise_ps.clone();
    threshold_row(
        &mut sweep,
        "pipeline (unsupervised)",
        "e19noise",
        1,
        trials,
        &noise_ps,
        move |j| Layered::new(NoisyCd::symmetric(ps[j]), CdMode::Strong),
        false,
    );
    let ps = noise_ps.clone();
    threshold_row(
        &mut sweep,
        "pipeline (supervised)",
        "e19noise",
        1,
        trials,
        &noise_ps,
        move |j| Layered::new(NoisyCd::symmetric(ps[j]), CdMode::Strong),
        true,
    );
    report.section(caption_noise, sweep.run());

    let jam_budgets = jam_grid(ctx.scale);
    #[allow(clippy::cast_precision_loss)]
    let jam_levels: Vec<f64> = jam_budgets.iter().map(|&b| b as f64).collect();
    let caption_jam = "Reactive jamming, same budget split: the jammer vetoes the first B \
                       would-be-solving rounds. Each attempt it kills drains its budget, so \
                       a restart faces a cleaner channel than the attempt it replaces"
        .to_string();
    let mut headers: Vec<String> = vec!["algorithm".into()];
    headers.extend(jam_budgets.iter().map(|b| format!("B = {b}")));
    headers.push("50% breakdown".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut sweep = ctx.sweep::<LevelCells>(&caption_jam, &header_refs);
    let budgets = jam_budgets.clone();
    threshold_row(
        &mut sweep,
        "pipeline (unsupervised)",
        "e19jam",
        2,
        trials,
        &jam_levels,
        move |j| mac_sim::fault::JamBudget::new(CdMode::Strong, budgets[j]),
        false,
    );
    let budgets = jam_budgets.clone();
    threshold_row(
        &mut sweep,
        "pipeline (supervised)",
        "e19jam",
        2,
        trials,
        &jam_levels,
        move |j| mac_sim::fault::JamBudget::new(CdMode::Strong, budgets[j]),
        true,
    );
    report.section(caption_jam, sweep.run());

    // What recovery costs: per jam budget, the solved supervised trials'
    // time-to-solve (restart overhead included — the clock never resets)
    // and the solver's restart count off its telemetry spine.
    let caption_anatomy = "Recovery anatomy under jamming: solved supervised trials only; \
                           rounds include restart overhead, restarts read off the solver's \
                           telemetry spine"
        .to_string();
    let mut anatomy = ctx.sweep::<Anatomy>(
        &caption_anatomy,
        &[
            "jam budget B",
            "solved",
            "median rounds",
            "mean solver restarts",
        ],
    );
    for (i, &b) in jam_budgets.iter().enumerate() {
        anatomy.row(
            trials,
            SeedStream::Offset(seed_base("e19anat", 3, i as u64)),
            Anatomy::default,
            move |seed, acc| {
                if let Some(trial) =
                    supervised_one(seed, mac_sim::fault::JamBudget::new(CdMode::Strong, b))
                {
                    acc.rounds.push(trial.rounds);
                    acc.restarts.push(trial.restarts);
                }
            },
            move |acc| {
                let (success, _) = render_level(trials, &acc.rounds);
                let median = if acc.rounds.is_empty() {
                    "-".to_string()
                } else {
                    let mut sorted = acc.rounds.clone();
                    sorted.sort_unstable();
                    format!("{}", sorted[sorted.len() / 2])
                };
                #[allow(clippy::cast_precision_loss)]
                let mean_restarts = if acc.restarts.is_empty() {
                    "-".to_string()
                } else {
                    format!(
                        "{:.2}",
                        acc.restarts.iter().sum::<u64>() as f64 / acc.restarts.len() as f64
                    )
                };
                vec![
                    format!("{b}"),
                    format!("{:.0}%", 100.0 * success),
                    median,
                    mean_restarts,
                ]
            },
        );
    }
    report.section(caption_anatomy, anatomy.run());

    report.note(format!(
        "Both rows consume the identical {BUDGET}-round engine budget; supervision only \
         changes the spending schedule ({ATTEMPTS} clean-restart slices of {SLICE} rounds). \
         Restart-with-backoff is transient-fault machinery: the jammer's veto budget is \
         finite, every attempt it kills drains it, and the restart that follows faces a \
         cleaner channel — the 50% breakdown moves from E18's ~7 vetoes out past 16. \
         A wedge is detected either by slice exhaustion or by the phase itself reporting \
         an invariant violation (feedback impossible on a clean channel), which restarts \
         the stack immediately instead of burning out the slice."
    ));
    report.note(
        "Symmetric CD noise is the control: it is memoryless, so a restarted attempt faces \
         exactly the flip probability it just wedged under and per-attempt success never \
         improves — the supervised column tracks the unsupervised one to within sampling \
         error, and solved supervised trials under noise virtually never show a restart. \
         Supervision moves thresholds only where wedging an attempt costs the adversary \
         something; past the jam budget where the jammer outlasts all attempts, retrying \
         a hopeless attempt is still hopeless and both rows go dead."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_supervised_solves_without_restarts() {
        let mut solved = 0;
        for t in 0..3u64 {
            let seed = seed_base("e19t", 0, t);
            let trial = supervised_one(seed, Layered::new(NoisyCd::symmetric(0.0), CdMode::Strong));
            if let Some(trial) = trial {
                solved += 1;
                assert_eq!(trial.restarts, 0, "fault-free run restarted");
                assert!(
                    trial.rounds <= SLICE,
                    "fault-free solve blew its first slice"
                );
            }
        }
        assert_eq!(
            solved, 3,
            "fault-free supervised pipeline must always solve"
        );
    }

    #[test]
    fn supervised_solves_whp_past_the_unsupervised_jam_threshold() {
        // B = 8 vetoes sits strictly beyond E18's unsupervised 50% jam
        // breakdown (~7, dead well before 16): single-shot runs wedge
        // essentially always, while the supervisor's sacrificial restarts
        // drain the jammer and solve w.h.p. Seeds are fixed, so this is a
        // deterministic check, not a statistical one.
        let b = 8u64;
        let trials = 12u64;
        let mut unsup = 0;
        let mut sup = 0;
        let mut restarts = 0u64;
        for t in 0..trials {
            let seed = seed_base("e19t", 1, t);
            if unsupervised_one(seed, mac_sim::fault::JamBudget::new(CdMode::Strong, b)).is_some() {
                unsup += 1;
            }
            if let Some(trial) =
                supervised_one(seed, mac_sim::fault::JamBudget::new(CdMode::Strong, b))
            {
                sup += 1;
                restarts += trial.restarts;
            }
        }
        assert!(
            unsup <= 2,
            "unsupervised runs should be past breakdown at B = {b}: {unsup} of {trials} solved"
        );
        assert!(
            sup >= 10,
            "supervision must solve w.h.p. at B = {b}: supervised {sup}, \
             unsupervised {unsup} of {trials}"
        );
        assert!(
            restarts > 0,
            "recovery at B = {b} must actually go through restarts"
        );
    }

    #[test]
    fn policy_tiles_the_budget_exactly() {
        assert_eq!(policy().total_rounds(), BUDGET);
    }

    #[test]
    fn report_renders() {
        let ctx = RunCtx::new(crate::Scale::Quick);
        let report = run(&ctx);
        assert_eq!(report.id, "E19");
        assert_eq!(report.sections.len(), 3);
        let rendered = format!("{report}");
        assert!(rendered.contains("supervised"));
    }
}
