//! **E20** — the sparse-scale curve: the regime the active-set engine
//! exists for. The namespace `n` grows from `2^12` to `2^22` while the
//! active set stays pinned at `|A| = 500` (drawn through
//! [`SparsePopulation`], so the engine only ever materializes 500 slots).
//! Two things should happen, and the two sections measure one each:
//!
//! * **rounds** grow as the paper's `O(log n / log C)` bound — `n` enters
//!   the algorithm only through its confidence target;
//! * **per-round engine work** stays flat — the active-set scheduler's
//!   cost is `O(|live|)` per round, independent of `n`, measured
//!   deterministically as protocol actions (transmissions + listens) per
//!   executed round.
//!
//! A third, full-scale-only section times the same runs with a wall
//! clock. Wall-clock numbers are machine-dependent and inherently
//! nondeterministic, so they are excluded from quick scale on purpose:
//! quick-scale reports are what CI byte-compares across independent runs
//! (resume bit-identity, chaos reference matching), and every cell they
//! contain must be a pure function of the seed. The full-scale table is
//! for `EXPERIMENTS.md`, measured once and committed as prose. The
//! dense-vs-active-set A/B at `n = 2^20` lives in
//! `bench_round_engine` (`BENCH_round_engine.json`), where a wall-clock
//! regression is actually tracked.

use std::time::Instant;

use contention::{FullAlgorithm, Params};
use contention_analysis::Table;
use mac_sim::campaign::{Aggregate, SeedStream};
use mac_sim::{SimConfig, SparsePopulation};

use super::seed_base;
use crate::{cell_f64, ExperimentReport, RunCtx, Samples, Scale};

const C: u32 = 64;
const ACTIVE: usize = 500;

/// Rounds-to-solve and total protocol actions for one seeded run over a
/// namespace of `n`: a sparse population of [`ACTIVE`] identities, each
/// running the full pipeline parameterized by `n`.
fn one_run(n: u64, seed: u64) -> (u64, u64) {
    let pop = SparsePopulation::uniform(n, ACTIVE, 1, seed);
    let mut eng = pop.engine(
        SimConfig::new(C).seed(seed).max_rounds(1_000_000),
        |_virtual_id| FullAlgorithm::new(Params::practical(), C, n),
    );
    let report = eng
        .run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    let rounds = report.rounds_to_solve().expect("solved");
    let acts = report.metrics.transmissions + report.metrics.listens;
    (rounds, acts)
}

/// Per-cell aggregate: rounds-to-solve and total actions, both streamed.
#[derive(Debug, Clone, Default)]
struct ScaleAgg {
    rounds: Samples,
    acts: Samples,
}

impl Aggregate for ScaleAgg {
    fn merge(&mut self, other: Self) {
        self.rounds.merge(other.rounds);
        self.acts.merge(other.acts);
    }
}

/// The theory denominator `lg n / lg C` for the normalization column.
fn lg_ratio(exp: u32) -> f64 {
    f64::from(exp) / f64::from(C.ilog2())
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E20",
        "Sparse-scale curve: namespace 2^12..2^22 at |A| = 500 (active-set engine)",
    );
    let grid = scale.thin(&[12u32, 14, 16, 18, 20, 22]);
    let trials = scale.trials().min(60);

    let caption = format!("Rounds and per-round engine work vs namespace (C = {C}, |A| = {ACTIVE}, simultaneous wake)");
    let mut sweep = ctx.sweep::<ScaleAgg>(
        caption.clone(),
        &[
            "n",
            "rounds mean",
            "rounds p95",
            "rounds max",
            "mean/(lg n/lg C)",
            "acts/round",
        ],
    );
    for &exp in &grid {
        let n = 1u64 << exp;
        sweep.row(
            trials,
            SeedStream::Offset(seed_base("e20", u64::from(exp), 0)),
            ScaleAgg::default,
            move |seed, acc| {
                let (rounds, acts) = one_run(n, seed);
                acc.rounds.push(rounds);
                acc.acts.push(acts);
            },
            move |acc| {
                let rounds = acc.rounds.0.finish();
                let acts = acc.acts.0.finish();
                vec![
                    format!("2^{exp}"),
                    format!("{:.1}", rounds.mean),
                    format!("{:.0}", rounds.p95),
                    format!("{:.0}", rounds.max),
                    format!("{:.2}", rounds.mean / lg_ratio(exp)),
                    format!("{:.1}", acts.mean / rounds.mean),
                ]
            },
        );
    }
    let table = sweep.run();
    let (first, last) = (table.rows().first().cloned(), table.rows().last().cloned());
    report.section(caption, table);

    // Notes derive from rendered cells only (resume bit-identity).
    if let (Some(first), Some(last)) = (first, last) {
        let growth = cell_f64(&last[1]) / cell_f64(&first[1]);
        let work_drift = cell_f64(&last[5]) / cell_f64(&first[5]);
        report.note(format!(
            "The namespace grows 1024-fold across the grid, yet rounds grow only \
             {growth:.1}× — consistent with the O(log n / log C) bound (the \
             normalized column stays in a narrow constant band) — and engine \
             work per round moves by {work_drift:.2}×, pinned near |A| = {ACTIVE} \
             actions: the active-set scheduler's per-round cost depends on who \
             is awake, never on how many identities exist."
        ));
    }

    if scale == Scale::Full {
        report.section(
            "Engine wall-clock vs namespace (active-set scheduler; measured once on one machine — excluded from quick scale so CI-compared records stay deterministic)",
            wall_clock_table(&grid),
        );
        report.note(format!(
            "Wall-clock cost per executed round stays flat (within noise) while n \
             grows 1024-fold, because the engine never materializes the {}−|A| \
             sleeping identities: per-round cost is O(|live|), and memory is \
             O(|A|). The tracked dense-vs-active-set A/B comparison at n = 2^20 \
             is `bench_round_engine` (ab/active_set vs ab/dense_reference in \
             BENCH_round_engine.json).",
            "n"
        ));
    }
    report
}

/// Sequentially timed runs (outside the worker pool, so timings are not
/// inflated by scheduling contention): mean wall time per run and per
/// executed round at each namespace size.
fn wall_clock_table(grid: &[u32]) -> Table {
    const TIMED_TRIALS: u64 = 40;
    let mut table = Table::new(&["n", "runs", "wall µs/run", "wall ns/round", "vs first row"]);
    let mut first_per_round = None;
    for &exp in grid {
        let n = 1u64 << exp;
        let base = seed_base("e20w", u64::from(exp), 0);
        let (mut total_ns, mut total_rounds) = (0u128, 0u64);
        for i in 0..TIMED_TRIALS {
            let seed = base.wrapping_add(i);
            let pop = SparsePopulation::uniform(n, ACTIVE, 1, seed);
            let mut eng = pop.engine(
                SimConfig::new(C).seed(seed).max_rounds(1_000_000),
                |_virtual_id| FullAlgorithm::new(Params::practical(), C, n),
            );
            let started = Instant::now();
            let summary = eng
                .run_summary()
                .unwrap_or_else(|e| panic!("timed trial with seed {seed} failed: {e}"));
            total_ns += started.elapsed().as_nanos();
            total_rounds += summary.rounds_executed;
        }
        #[allow(clippy::cast_precision_loss)]
        let per_run_us = total_ns as f64 / TIMED_TRIALS as f64 / 1000.0;
        #[allow(clippy::cast_precision_loss)]
        let per_round_ns = total_ns as f64 / total_rounds as f64;
        let first = *first_per_round.get_or_insert(per_round_ns);
        table.row(&[
            &format!("2^{exp}"),
            &TIMED_TRIALS.to_string(),
            &format!("{per_run_us:.1}"),
            &format!("{per_round_ns:.0}"),
            &format!("{:.2}×", per_round_ns / first),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cell_u64, RunCtx, Scale};

    #[test]
    fn rounds_grow_slowly_and_work_stays_flat() {
        let r = run(&RunCtx::new(Scale::Quick));
        let table = &r.sections[0].table;
        let rows = table.rows();
        assert!(rows.len() >= 3, "thinned grid keeps endpoints and middle");
        let first_mean = cell_f64(&rows[0][1]);
        let last_mean = cell_f64(&rows[rows.len() - 1][1]);
        // 1024× the namespace must cost far less than 1024× the rounds.
        assert!(
            last_mean < first_mean * 4.0,
            "rounds exploded with n: {first_mean} -> {last_mean}"
        );
        for row in rows {
            let acts_per_round = cell_f64(&row[5]);
            assert!(
                acts_per_round <= (ACTIVE as f64) * 1.05,
                "per-round work above the live-set ceiling: {acts_per_round}"
            );
            let _ = cell_u64(&row[3]);
        }
    }

    #[test]
    fn quick_report_has_no_wall_clock_section() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(
            r.sections.len(),
            1,
            "quick-scale records must stay deterministic; wall-clock is full-only"
        );
    }

    #[test]
    fn one_run_is_deterministic() {
        assert_eq!(one_run(1 << 16, 7), one_run(1 << 16, 7));
    }
}
