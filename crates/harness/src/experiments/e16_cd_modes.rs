//! **E16** (extension) — the model matrix: which algorithms survive which
//! collision-detection assumptions. The paper's algorithms are built on
//! *strong* CD (transmitters detect their own collisions); this experiment
//! runs every algorithm under all three feedback models and tabulates the
//! outcome, turning §2's model taxonomy into an executable table.

use contention::baselines::{CdTournament, Decay};
use contention::{FullAlgorithm, Params, TwoActive};
use mac_sim::campaign::SeedStream;
use mac_sim::{CdMode, Engine, Protocol, SimConfig, SimError};

use crate::{ExperimentReport, RunCtx};

/// Result of running one (algorithm, mode) cell across trials.
struct Cell {
    solved: usize,
    trials: usize,
    mean_rounds: Option<f64>,
}

/// One (mode, seed) execution: `Some(rounds)` when it solved, `None` on a
/// timeout (a stall, under the weaker feedback models).
fn solve_one<P, F>(mode: CdMode, seed: u64, cap: u64, build: F) -> Option<u64>
where
    P: Protocol,
    F: Fn(u64, &mut Engine<P>),
{
    let cfg = SimConfig::new(64).seed(seed).cd_mode(mode).max_rounds(cap);
    let mut exec = Engine::new(cfg);
    build(seed, &mut exec);
    match exec.run() {
        Ok(report) => report.rounds_to_solve(),
        Err(SimError::Timeout { .. }) => None,
        Err(e) => panic!("unexpected simulation error: {e}"),
    }
}

#[cfg(test)]
fn run_cell<P, F>(mode: CdMode, trials: usize, cap: u64, build: F) -> Cell
where
    P: Protocol,
    F: Fn(u64, &mut Engine<P>),
{
    let mut solved = 0usize;
    let mut total_rounds = 0u64;
    for seed in 0..trials as u64 {
        if let Some(r) = solve_one(mode, seed, cap, &build) {
            solved += 1;
            total_rounds += r;
        }
    }
    Cell {
        solved,
        trials,
        mean_rounds: (solved > 0).then(|| total_rounds as f64 / solved as f64),
    }
}

fn render(cell: &Cell) -> String {
    match cell.mean_rounds {
        Some(mean) if cell.solved == cell.trials => format!("{mean:.1} rounds"),
        Some(mean) => format!("{}/{} solved ({mean:.1}r)", cell.solved, cell.trials),
        None => "stuck".to_string(),
    }
}

/// Per-row streamed matrix: (solved count, round total) for each CD mode.
type ModeAgg = ((u64, u64), (u64, u64), (u64, u64));

const MODES: [CdMode; 3] = [CdMode::Strong, CdMode::ReceiverOnly, CdMode::None];

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E16",
        "Collision-detection model matrix: who needs what feedback",
    );
    let trials = scale.trials().min(25);
    let (n, active, cap) = (1u64 << 12, 200usize, 3_000u64);

    let caption =
        format!("Solve behavior by feedback model (C = 64, |A| = {active}, cap {cap} rounds)");
    let mut sweep = ctx.sweep::<ModeAgg>(
        &caption,
        &["algorithm", "strong CD", "receiver-only CD", "no CD"],
    );
    // One row per algorithm; trial i runs at seed i under all three modes
    // (the historical seeding: 0..trials per cell).
    sweep.row(
        trials,
        SeedStream::Offset(0),
        ModeAgg::default,
        move |seed, acc| {
            let build = |_: u64, exec: &mut Engine<FullAlgorithm>| {
                for _ in 0..active {
                    exec.add_node(FullAlgorithm::new(Params::practical(), 64, n));
                }
            };
            let slots = [&mut acc.0, &mut acc.1, &mut acc.2];
            for (mode, slot) in MODES.iter().zip(slots) {
                if let Some(r) = solve_one(*mode, seed, cap, build) {
                    slot.0 += 1;
                    slot.1 += r;
                }
            }
        },
        move |acc| render_row("this paper (pipeline)", &acc, trials),
    );
    sweep.row(
        trials,
        SeedStream::Offset(0),
        ModeAgg::default,
        move |seed, acc| {
            let build = |_: u64, exec: &mut Engine<TwoActive>| {
                exec.add_node(TwoActive::new(64, n));
                exec.add_node(TwoActive::new(64, n));
            };
            let slots = [&mut acc.0, &mut acc.1, &mut acc.2];
            for (mode, slot) in MODES.iter().zip(slots) {
                if let Some(r) = solve_one(*mode, seed, cap, build) {
                    slot.0 += 1;
                    slot.1 += r;
                }
            }
        },
        move |acc| render_row("TwoActive (|A| = 2)", &acc, trials),
    );
    sweep.row(
        trials,
        SeedStream::Offset(0),
        ModeAgg::default,
        move |seed, acc| {
            let build = |_: u64, exec: &mut Engine<CdTournament>| {
                for _ in 0..active {
                    exec.add_node(CdTournament::new());
                }
            };
            let slots = [&mut acc.0, &mut acc.1, &mut acc.2];
            for (mode, slot) in MODES.iter().zip(slots) {
                if let Some(r) = solve_one(*mode, seed, cap, build) {
                    slot.0 += 1;
                    slot.1 += r;
                }
            }
        },
        move |acc| render_row("CD tournament", &acc, trials),
    );
    // Decay — the one that genuinely needs nothing.
    sweep.row(
        trials,
        SeedStream::Offset(0),
        ModeAgg::default,
        move |seed, acc| {
            let build = |_: u64, exec: &mut Engine<Decay>| {
                for _ in 0..active {
                    exec.add_node(Decay::new(n));
                }
            };
            let slots = [&mut acc.0, &mut acc.1, &mut acc.2];
            for (mode, slot) in MODES.iter().zip(slots) {
                if let Some(r) = solve_one(*mode, seed, cap, build) {
                    slot.0 += 1;
                    slot.1 += r;
                }
            }
        },
        move |acc| render_row("decay (designed for no CD)", &acc, trials),
    );
    report.section(caption, sweep.run());
    report.note(
        "The paper's algorithms rely on transmitter-side collision detection \
         ('broadcasts without collision', Fig. 2; renaming via own-transmission \
         feedback, §4/§5.2): under receiver-only or no CD they stall — any entry \
         other than a clean round count marks runs that only 'solved' through an \
         accidental lone transmission, not through the algorithm's logic. Decay, \
         designed for no CD, is unaffected across the whole row."
            .to_string(),
    );
    report
}

/// Renders one matrix row from its streamed per-mode counters.
fn render_row(name: &str, acc: &ModeAgg, trials: usize) -> Vec<String> {
    let mut cells = vec![name.to_string()];
    for (solved, total_rounds) in [acc.0, acc.1, acc.2] {
        #[allow(clippy::cast_possible_truncation)]
        let cell = Cell {
            solved: solved as usize,
            trials,
            mean_rounds: (solved > 0).then(|| total_rounds as f64 / solved as f64),
        };
        cells.push(render(&cell));
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn strong_cd_column_always_solves() {
        let cell = run_cell(CdMode::Strong, 8, 3_000, |_, exec| {
            for _ in 0..100 {
                exec.add_node(FullAlgorithm::new(Params::practical(), 64, 1 << 12));
            }
        });
        assert_eq!(cell.solved, cell.trials);
    }

    #[test]
    fn two_active_stalls_without_transmitter_cd() {
        let cell = run_cell(CdMode::ReceiverOnly, 6, 1_000, |_, exec| {
            exec.add_node(TwoActive::new(64, 1 << 12));
            exec.add_node(TwoActive::new(64, 1 << 12));
        });
        // Renaming cannot advance; any "solve" would be a freak lone
        // transmission, which with both nodes transmitting every round on
        // 64 channels does happen — but never by clean termination. Expect
        // dramatically degraded behavior versus strong CD's ~5 rounds.
        if let Some(mean) = cell.mean_rounds {
            assert!(
                mean > 1.0,
                "receiver-only CD should not look healthy: {mean}"
            );
        }
    }

    #[test]
    fn decay_is_mode_insensitive() {
        for mode in [CdMode::Strong, CdMode::ReceiverOnly, CdMode::None] {
            let cell = run_cell(mode, 6, 100_000, |_, exec| {
                for _ in 0..100 {
                    exec.add_node(Decay::new(1 << 12));
                }
            });
            assert_eq!(cell.solved, cell.trials, "mode {mode:?}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
        assert_eq!(r.sections[0].table.len(), 4);
    }
}
