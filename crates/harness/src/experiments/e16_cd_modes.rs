//! **E16** (extension) — the model matrix: which algorithms survive which
//! collision-detection assumptions. The paper's algorithms are built on
//! *strong* CD (transmitters detect their own collisions); this experiment
//! runs every algorithm under all three feedback models and tabulates the
//! outcome, turning §2's model taxonomy into an executable table.

use contention::baselines::{CdTournament, Decay};
use contention::{FullAlgorithm, Params, TwoActive};
use contention_analysis::Table;
use mac_sim::{CdMode, Engine, Protocol, SimConfig, SimError};

use crate::{ExperimentReport, Scale};

/// Result of running one (algorithm, mode) cell across trials.
struct Cell {
    solved: usize,
    trials: usize,
    mean_rounds: Option<f64>,
}

fn run_cell<P, F>(mode: CdMode, trials: usize, cap: u64, build: F) -> Cell
where
    P: Protocol,
    F: Fn(u64, &mut Engine<P>),
{
    let mut solved = 0usize;
    let mut total_rounds = 0u64;
    for seed in 0..trials as u64 {
        let cfg = SimConfig::new(64).seed(seed).cd_mode(mode).max_rounds(cap);
        let mut exec = Engine::new(cfg);
        build(seed, &mut exec);
        match exec.run() {
            Ok(report) => {
                if let Some(r) = report.rounds_to_solve() {
                    solved += 1;
                    total_rounds += r;
                }
            }
            Err(SimError::Timeout { .. }) => {}
            Err(e) => panic!("unexpected simulation error: {e}"),
        }
    }
    Cell {
        solved,
        trials,
        mean_rounds: (solved > 0).then(|| total_rounds as f64 / solved as f64),
    }
}

fn render(cell: &Cell) -> String {
    match cell.mean_rounds {
        Some(mean) if cell.solved == cell.trials => format!("{mean:.1} rounds"),
        Some(mean) => format!("{}/{} solved ({mean:.1}r)", cell.solved, cell.trials),
        None => "stuck".to_string(),
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E16",
        "Collision-detection model matrix: who needs what feedback",
    );
    let trials = scale.trials().min(25);
    let (n, active, cap) = (1u64 << 12, 200usize, 3_000u64);
    let modes = [
        ("strong CD", CdMode::Strong),
        ("receiver-only CD", CdMode::ReceiverOnly),
        ("no CD", CdMode::None),
    ];

    let mut table = Table::new(&["algorithm", "strong CD", "receiver-only CD", "no CD"]);
    // Full pipeline.
    let mut row = vec!["this paper (pipeline)".to_string()];
    for (_, mode) in &modes {
        let cell = run_cell(*mode, trials, cap, |_, exec| {
            for _ in 0..active {
                exec.add_node(FullAlgorithm::new(Params::practical(), 64, n));
            }
        });
        row.push(render(&cell));
    }
    table.row_owned(row);
    // TwoActive.
    let mut row = vec!["TwoActive (|A| = 2)".to_string()];
    for (_, mode) in &modes {
        let cell = run_cell(*mode, trials, cap, |_, exec| {
            exec.add_node(TwoActive::new(64, n));
            exec.add_node(TwoActive::new(64, n));
        });
        row.push(render(&cell));
    }
    table.row_owned(row);
    // CD tournament.
    let mut row = vec!["CD tournament".to_string()];
    for (_, mode) in &modes {
        let cell = run_cell(*mode, trials, cap, |_, exec| {
            for _ in 0..active {
                exec.add_node(CdTournament::new());
            }
        });
        row.push(render(&cell));
    }
    table.row_owned(row);
    // Decay — the one that genuinely needs nothing.
    let mut row = vec!["decay (designed for no CD)".to_string()];
    for (_, mode) in &modes {
        let cell = run_cell(*mode, trials, cap, |_, exec| {
            for _ in 0..active {
                exec.add_node(Decay::new(n));
            }
        });
        row.push(render(&cell));
    }
    table.row_owned(row);

    report.section(
        format!("Solve behavior by feedback model (C = 64, |A| = {active}, cap {cap} rounds)"),
        table,
    );
    report.note(
        "The paper's algorithms rely on transmitter-side collision detection \
         ('broadcasts without collision', Fig. 2; renaming via own-transmission \
         feedback, §4/§5.2): under receiver-only or no CD they stall — any entry \
         other than a clean round count marks runs that only 'solved' through an \
         accidental lone transmission, not through the algorithm's logic. Decay, \
         designed for no CD, is unaffected across the whole row."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_cd_column_always_solves() {
        let cell = run_cell(CdMode::Strong, 8, 3_000, |_, exec| {
            for _ in 0..100 {
                exec.add_node(FullAlgorithm::new(Params::practical(), 64, 1 << 12));
            }
        });
        assert_eq!(cell.solved, cell.trials);
    }

    #[test]
    fn two_active_stalls_without_transmitter_cd() {
        let cell = run_cell(CdMode::ReceiverOnly, 6, 1_000, |_, exec| {
            exec.add_node(TwoActive::new(64, 1 << 12));
            exec.add_node(TwoActive::new(64, 1 << 12));
        });
        // Renaming cannot advance; any "solve" would be a freak lone
        // transmission, which with both nodes transmitting every round on
        // 64 channels does happen — but never by clean termination. Expect
        // dramatically degraded behavior versus strong CD's ~5 rounds.
        if let Some(mean) = cell.mean_rounds {
            assert!(
                mean > 1.0,
                "receiver-only CD should not look healthy: {mean}"
            );
        }
    }

    #[test]
    fn decay_is_mode_insensitive() {
        for mode in [CdMode::Strong, CdMode::ReceiverOnly, CdMode::None] {
            let cell = run_cell(mode, 6, 100_000, |_, exec| {
                for _ in 0..100 {
                    exec.add_node(Decay::new(1 << 12));
                }
            });
            assert_eq!(cell.solved, cell.trials, "mode {mode:?}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 1);
        assert_eq!(r.sections[0].table.len(), 4);
    }
}
