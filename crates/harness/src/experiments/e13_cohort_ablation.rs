//! **E13** — ablation of the paper's main technique: what do *coalescing
//! cohorts* actually buy? We run `LeafElection` twice — once with the
//! cohort-accelerated `(p+1)`-ary `SplitSearch` (the paper) and once with
//! the search degraded to plain binary search (what a cohort-free design
//! would do). The paper predicts `O(log h · log log x)` vs
//! `O(log h · log x)` rounds, so the speed-up factor must *grow with `x`*.
//!
//! The ablation is run under **dense occupancy** (leaves `1..=x`), the
//! regime where cohorts actually coalesce all the way to size `x`; under
//! sparse random occupancy most cohorts retire unpaired after 2–4 phases
//! and neither search strategy dominates (that regime is reported too, as
//! a second table, because it is an honest finding about the technique).

use contention_analysis::{Summary, Table};

use super::e08_leaf_election::{measure, Occupancy};
use super::seed_base;
use crate::{ExperimentReport, Scale};

fn mean_rounds(c: u32, x: u32, trials: usize, seed: u64, binary: bool, occ: Occupancy) -> Summary {
    Summary::from_u64(
        &measure(c, x, trials, seed, binary, occ)
            .iter()
            .map(|d| d.0)
            .collect::<Vec<_>>(),
    )
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E13",
        "Coalescing-cohorts ablation: (p+1)-ary vs binary SplitSearch",
    );
    let c = 1u32 << 14; // 8192-leaf tree, h = 13
    let xs: Vec<u32> = scale.thin(&[4, 16, 64, 512, 4096]);
    let trials = scale.trials().min(40);

    let mut table = Table::new(&[
        "x (dense leaves)",
        "cohort search mean rounds",
        "binary search mean rounds",
        "speed-up",
    ]);
    let mut speedups = Vec::new();
    for &x in &xs {
        let cohort = mean_rounds(
            c,
            x,
            trials,
            seed_base("e13c", u64::from(x), 0),
            false,
            Occupancy::Dense,
        );
        let binary = mean_rounds(
            c,
            x,
            trials,
            seed_base("e13b", u64::from(x), 0),
            true,
            Occupancy::Dense,
        );
        let speedup = binary.mean / cohort.mean;
        speedups.push((x, speedup));
        table.row_owned(vec![
            x.to_string(),
            format!("{:.1}", cohort.mean),
            format!("{:.1}", binary.mean),
            format!("{speedup:.2}×"),
        ]);
    }
    report.section(
        format!("Dense occupancy at C = 2^14 ({trials} trials/point)"),
        table,
    );

    // Sparse counterpoint: with random leaves the pairing rule retires most
    // cohorts before they grow, so the two variants tie.
    let mut sparse = Table::new(&["x (random leaves)", "cohort", "binary", "speed-up"]);
    for &x in &[64u32, 512] {
        let cohort = mean_rounds(
            c,
            x,
            trials,
            seed_base("e13cs", u64::from(x), 0),
            false,
            Occupancy::Random,
        );
        let binary = mean_rounds(
            c,
            x,
            trials,
            seed_base("e13bs", u64::from(x), 0),
            true,
            Occupancy::Random,
        );
        sparse.row_owned(vec![
            x.to_string(),
            format!("{:.1}", cohort.mean),
            format!("{:.1}", binary.mean),
            format!("{:.2}×", binary.mean / cohort.mean),
        ]);
    }
    report.section("Sparse (random) occupancy counterpoint", sparse);

    let (first, last) = (
        speedups.first().expect("nonempty"),
        speedups.last().expect("nonempty"),
    );
    report.note(format!(
        "Dense occupancy: speed-up grows from {:.2}× at x = {} to {:.2}× at x = {} — \
         the log x vs log log x separation the coalescing-cohorts technique was \
         invented for.",
        first.1, first.0, last.1, last.0
    ));
    report.note(
        "Sparse occupancy: near-1× speed-up, because Fig. 3's pairing rule retires \
         unpaired cohorts and runs finish before cohorts grow — the technique's \
         payoff is specifically the adversarial dense case its worst-case bound \
         covers."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_search_beats_binary_when_dense() {
        let c = 1u32 << 14;
        let cohort = mean_rounds(c, 512, 8, 11, false, Occupancy::Dense).mean;
        let binary = mean_rounds(c, 512, 8, 11, true, Occupancy::Dense).mean;
        assert!(
            cohort < binary,
            "cohorts must accelerate the dense search: {cohort} vs {binary}"
        );
    }

    #[test]
    fn both_variants_always_elect() {
        // measure() panics if no leader emerges, so surviving is the test.
        let _ = measure(1 << 10, 64, 5, 1, true, Occupancy::Dense);
        let _ = measure(1 << 10, 64, 5, 1, false, Occupancy::Random);
    }

    #[test]
    fn speedup_grows_with_x_when_dense() {
        let c = 1u32 << 14;
        let ratio = |x: u32| {
            mean_rounds(c, x, 8, 11, true, Occupancy::Dense).mean
                / mean_rounds(c, x, 8, 11, false, Occupancy::Dense).mean
        };
        let small = ratio(4);
        let large = ratio(4096);
        assert!(
            large > small,
            "ablation gap must widen with x: {small:.2} -> {large:.2}"
        );
        assert!(
            large > 1.3,
            "dense speed-up should be substantial: {large:.2}"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
