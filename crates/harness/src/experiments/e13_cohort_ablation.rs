//! **E13** — ablation of the paper's main technique: what do *coalescing
//! cohorts* actually buy? We run `LeafElection` twice — once with the
//! cohort-accelerated `(p+1)`-ary `SplitSearch` (the paper) and once with
//! the search degraded to plain binary search (what a cohort-free design
//! would do). The paper predicts `O(log h · log log x)` vs
//! `O(log h · log x)` rounds, so the speed-up factor must *grow with `x`*.
//!
//! The ablation is run under **dense occupancy** (leaves `1..=x`), the
//! regime where cohorts actually coalesce all the way to size `x`; under
//! sparse random occupancy most cohorts retire unpaired after 2–4 phases
//! and neither search strategy dominates (that regime is reported too, as
//! a second table, because it is an honest finding about the technique).

#[cfg(test)]
use contention_analysis::Summary;
use mac_sim::campaign::SeedStream;

#[cfg(test)]
use super::e08_leaf_election::measure;
use super::e08_leaf_election::{measure_one, Occupancy};
use super::seed_base;
use crate::{cell_f64, ExperimentReport, RunCtx, Samples};

#[cfg(test)]
fn mean_rounds(c: u32, x: u32, trials: usize, seed: u64, binary: bool, occ: Occupancy) -> Summary {
    Summary::from_u64(
        &measure(c, x, trials, seed, binary, occ)
            .iter()
            .map(|d| d.0)
            .collect::<Vec<_>>(),
    )
}

/// Renders one ablation row off its paired aggregates.
fn ablation_cells(x: u32, cohort: &Samples, binary: &Samples) -> Vec<String> {
    let cohort = cohort.0.finish().mean;
    let binary = binary.0.finish().mean;
    vec![
        x.to_string(),
        format!("{cohort:.1}"),
        format!("{binary:.1}"),
        format!("{:.2}×", binary / cohort),
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E13",
        "Coalescing-cohorts ablation: (p+1)-ary vs binary SplitSearch",
    );
    let c = 1u32 << 14; // 8192-leaf tree, h = 13
    let xs: Vec<u32> = scale.thin(&[4, 16, 64, 512, 4096]);
    let trials = scale.trials().min(40);

    let caption = format!("Dense occupancy at C = 2^14 ({trials} trials/point)");
    let mut sweep = ctx.sweep::<(Samples, Samples)>(
        &caption,
        &[
            "x (dense leaves)",
            "cohort search mean rounds",
            "binary search mean rounds",
            "speed-up",
        ],
    );
    for &x in &xs {
        let cb = seed_base("e13c", u64::from(x), 0);
        let bb = seed_base("e13b", u64::from(x), 0);
        sweep.row(
            trials,
            SeedStream::Offset(0),
            <(Samples, Samples)>::default,
            move |i, acc| {
                acc.0
                    .push(measure_one(c, x, cb.wrapping_add(i), false, Occupancy::Dense).0);
                acc.1
                    .push(measure_one(c, x, bb.wrapping_add(i), true, Occupancy::Dense).0);
            },
            move |(cohort, binary)| ablation_cells(x, &cohort, &binary),
        );
    }
    let dense_table = sweep.run();
    let speedups: Vec<(u32, f64)> = dense_table
        .rows()
        .iter()
        .zip(&xs)
        .map(|(row, &x)| (x, cell_f64(row[3].trim_end_matches('×'))))
        .collect();
    report.section(caption, dense_table);

    // Sparse counterpoint: with random leaves the pairing rule retires most
    // cohorts before they grow, so the two variants tie.
    let caption_sparse = "Sparse (random) occupancy counterpoint";
    let mut sparse = ctx.sweep::<(Samples, Samples)>(
        caption_sparse,
        &["x (random leaves)", "cohort", "binary", "speed-up"],
    );
    for &x in &[64u32, 512] {
        let cb = seed_base("e13cs", u64::from(x), 0);
        let bb = seed_base("e13bs", u64::from(x), 0);
        sparse.row(
            trials,
            SeedStream::Offset(0),
            <(Samples, Samples)>::default,
            move |i, acc| {
                acc.0
                    .push(measure_one(c, x, cb.wrapping_add(i), false, Occupancy::Random).0);
                acc.1
                    .push(measure_one(c, x, bb.wrapping_add(i), true, Occupancy::Random).0);
            },
            move |(cohort, binary)| ablation_cells(x, &cohort, &binary),
        );
    }
    report.section(caption_sparse, sparse.run());

    let (first, last) = (
        speedups.first().expect("nonempty"),
        speedups.last().expect("nonempty"),
    );
    report.note(format!(
        "Dense occupancy: speed-up grows from {:.2}× at x = {} to {:.2}× at x = {} — \
         the log x vs log log x separation the coalescing-cohorts technique was \
         invented for.",
        first.1, first.0, last.1, last.0
    ));
    report.note(
        "Sparse occupancy: near-1× speed-up, because Fig. 3's pairing rule retires \
         unpaired cohorts and runs finish before cohorts grow — the technique's \
         payoff is specifically the adversarial dense case its worst-case bound \
         covers."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn cohort_search_beats_binary_when_dense() {
        let c = 1u32 << 14;
        let cohort = mean_rounds(c, 512, 8, 11, false, Occupancy::Dense).mean;
        let binary = mean_rounds(c, 512, 8, 11, true, Occupancy::Dense).mean;
        assert!(
            cohort < binary,
            "cohorts must accelerate the dense search: {cohort} vs {binary}"
        );
    }

    #[test]
    fn both_variants_always_elect() {
        // measure() panics if no leader emerges, so surviving is the test.
        let _ = measure(1 << 10, 64, 5, 1, true, Occupancy::Dense);
        let _ = measure(1 << 10, 64, 5, 1, false, Occupancy::Random);
    }

    #[test]
    fn speedup_grows_with_x_when_dense() {
        let c = 1u32 << 14;
        let ratio = |x: u32| {
            mean_rounds(c, x, 8, 11, true, Occupancy::Dense).mean
                / mean_rounds(c, x, 8, 11, false, Occupancy::Dense).mean
        };
        let small = ratio(4);
        let large = ratio(4096);
        assert!(
            large > small,
            "ablation gap must widen with x: {small:.2} -> {large:.2}"
        );
        assert!(
            large > 1.3,
            "dense speed-up should be substantial: {large:.2}"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 2);
        assert!(!r.notes.is_empty());
    }
}
