//! **E12** — the §3 transform: any simultaneous-start solution lifts to the
//! non-simultaneous model at ×2 rounds (+ a constant). We wrap the full
//! algorithm in [`contention::wakeup::StaggeredStart`] and attack it with
//! adversarial wake-up schedules, including the offset-1 pattern that
//! requires the 3-round listen window (see the module docs of
//! `contention::wakeup`).

use contention::wakeup::{StaggeredStart, LISTEN_ROUNDS};
use contention::{FullAlgorithm, Params};
use contention_analysis::Summary;
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig};

use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};
use mac_sim::trials::run_trials;

/// One wrapped run under a wake-up schedule.
fn wrapped_one(c: u32, n: u64, offsets: &[u64], seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
    for &off in offsets {
        exec.add_node_at(
            StaggeredStart::new(FullAlgorithm::new(Params::practical(), c, n)),
            off,
        );
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

#[cfg(test)]
fn wrapped_rounds(c: u32, n: u64, offsets: &[u64], trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| wrapped_one(c, n, offsets, seed.wrapping_add(i)))
        .collect()
}

fn bare_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    run_trials(trials, seed, |s| {
        let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_to_solve().expect("solved"))
    .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E12",
        "Non-simultaneous wake-up transform (§3): ×2 rounds, any adversary",
    );
    let (c, n, active) = (64u32, 1u64 << 12, 48usize);
    let trials = scale.trials().min(40);

    let schedules: Vec<(&str, Vec<u64>)> = vec![
        ("simultaneous", vec![0; active]),
        (
            "offset-1 alternating",
            (0..active as u64).map(|i| i % 2).collect(),
        ),
        (
            "ramp (i mod 11)",
            (0..active as u64).map(|i| i % 11).collect(),
        ),
        (
            "two waves (0 / 5)",
            (0..active as u64)
                .map(|i| if i < 24 { 0 } else { 5 })
                .collect(),
        ),
    ];

    // The unwrapped baseline is a deterministic batch (same seeds on every
    // run and on resume); the per-schedule rows stream through the sweep.
    let base = Summary::from_u64(&bare_rounds(c, n, active, trials, seed_base("e12b", 0, 0)));
    let k = 2 * LISTEN_ROUNDS + 4;
    let caption = "Wrapped full algorithm under adversarial wake-ups";
    let mut sweep = ctx.sweep::<Samples>(
        caption,
        &[
            "schedule",
            "rounds mean",
            "rounds max",
            "unwrapped base mean",
            "mean/(2·base+K)",
        ],
    );
    for (idx, (name, offsets)) in schedules.into_iter().enumerate() {
        let base_mean = base.mean;
        sweep.row(
            trials,
            SeedStream::Offset(seed_base("e12", idx as u64, 0)),
            Samples::default,
            move |seed, acc| {
                acc.push(wrapped_one(c, n, &offsets, seed));
            },
            move |acc| {
                let rounds = acc.0.finish();
                #[allow(clippy::cast_precision_loss)]
                let cap = 2.0 * base_mean + k as f64;
                vec![
                    name.to_string(),
                    format!("{:.1}", rounds.mean),
                    format!("{:.0}", rounds.max),
                    format!("{base_mean:.1}"),
                    format!("{:.2}", rounds.mean / cap),
                ]
            },
        );
    }
    report.section(caption, sweep.run());
    report.note(format!(
        "Every schedule solves, and mean rounds stay within 2× the simultaneous \
         baseline plus the constant K = 2·{LISTEN_ROUNDS}+4 — the transform's claimed cost \
         (ratio column < 1). The offset-1 row is the adversary that breaks the \
         paper's literal 2-round listen (our 3-round strengthening handles it; \
         see contention::wakeup docs)."
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn adversarial_offsets_all_solve_within_double() {
        let (c, n, active) = (32u32, 1u64 << 10, 24usize);
        let base = bare_rounds(c, n, active, 10, 1);
        let base_mean = base.iter().sum::<u64>() as f64 / base.len() as f64;
        let offsets: Vec<u64> = (0..active as u64).map(|i| i % 2).collect();
        let wrapped = wrapped_rounds(c, n, &offsets, 10, 2);
        for r in wrapped {
            assert!(
                (r as f64) <= 2.0 * base_mean * 2.5 + 20.0,
                "wrapped run took {r} rounds vs base mean {base_mean}"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
    }
}
