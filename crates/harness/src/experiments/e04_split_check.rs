//! **E4** — Lemma 3: `SplitCheck` is a deterministic binary search over the
//! `lg C + 1` levels of the channel tree, so it costs `O(log log C)` probe
//! rounds regardless of which two leaves are occupied.
//!
//! The probe count is a pure function of the tree height `h` and the
//! divergence level `L`; we enumerate it exhaustively for every `L` and
//! cross-check against real protocol executions.

use contention::tree::ChannelTree;
use contention::TwoActive;
use contention_analysis::Table;
use mac_sim::{Engine, SimConfig, StopWhen};

use super::seed_base;
use crate::{ExperimentReport, RunCtx};
use mac_sim::trials::run_trials_with;

/// Probe rounds `SplitCheck` spends to locate divergence level `target` in
/// a tree of height `h` — the recursion of Fig. 1, counted exactly.
#[must_use]
pub fn split_check_probes(h: u32, target: u32) -> u32 {
    assert!(target >= 1 && target <= h, "divergence level in 1..=h");
    let (mut l, mut r, mut probes) = (0u32, h, 0u32);
    while l < r {
        let m = (l + r) / 2;
        probes += 1;
        if target > m {
            // Collision: paths still shared at level m.
            l = m + 1;
        } else {
            r = m;
        }
    }
    debug_assert_eq!(l, target);
    probes
}

/// Runs the experiment.
///
/// The probe table is pure math (no trials); the protocol cross-check runs
/// on the trial layer, which is itself a single-cell campaign.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E4",
        "SplitCheck probe count (Lemma 3: deterministic O(log log C))",
    );
    let cs: Vec<u32> = scale.thin(&[4, 16, 64, 256, 1024, 4096, 1 << 14]);

    let mut table = Table::new(&[
        "C",
        "h = lg C",
        "min probes",
        "max probes",
        "budget ⌈lg h⌉+1",
    ]);
    for &c in &cs {
        let h = c.trailing_zeros();
        let probes: Vec<u32> = (1..=h).map(|t| split_check_probes(h, t)).collect();
        let budget = (f64::from(h)).log2().ceil() as u32 + 1;
        table.row_owned(vec![
            c.to_string(),
            h.to_string(),
            probes.iter().min().expect("nonempty").to_string(),
            probes.iter().max().expect("nonempty").to_string(),
            budget.to_string(),
        ]);
    }
    report.section("Exhaustive probe counts over all divergence levels", table);

    // Cross-check against real executions at one configuration.
    let c = 1024u32;
    let measured: Vec<(u32, u32, u64)> = run_trials_with(
        scale.trials(),
        seed_base("e4", u64::from(c), 0),
        |s| {
            let cfg = SimConfig::new(c)
                .seed(s)
                .stop_when(StopWhen::AllTerminated)
                .max_rounds(100_000);
            let mut exec = Engine::new(cfg);
            exec.add_node(TwoActive::new(c, 1 << 20));
            exec.add_node(TwoActive::new(c, 1 << 20));
            exec
        },
        |exec, _| {
            let stats: Vec<_> = exec.iter_nodes().map(TwoActive::stats).collect();
            (
                stats[0].adopted_id.expect("renamed"),
                stats[1].adopted_id.expect("renamed"),
                stats[0].search_rounds,
            )
        },
    );
    let tree = ChannelTree::new(c);
    let mut mismatches = 0usize;
    for &(a, b, rounds) in &measured {
        let level = tree.divergence_level(a, b).expect("distinct ids");
        if u64::from(split_check_probes(tree.height(), level)) != rounds {
            mismatches += 1;
        }
    }
    report.note(format!(
        "Protocol cross-check at C=1024: {} of {} executions matched the closed-form \
         probe count exactly.",
        measured.len() - mismatches,
        measured.len()
    ));
    assert_eq!(mismatches, 0, "protocol probes diverge from the recursion");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_count_is_within_lg_h_plus_one() {
        for h in 1..=20u32 {
            let budget = (f64::from(h)).log2().ceil() as u32 + 1;
            for target in 1..=h {
                let p = split_check_probes(h, target);
                assert!(p <= budget, "h={h} target={target}: {p} > {budget}");
                assert!(p >= 1);
            }
        }
    }

    #[test]
    fn height_one_needs_exactly_one_probe() {
        assert_eq!(split_check_probes(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "divergence level")]
    fn target_zero_rejected() {
        let _ = split_check_probes(4, 0);
    }

    #[test]
    fn report_renders_and_cross_check_passes() {
        let r = run(&crate::RunCtx::new(crate::Scale::Quick));
        assert_eq!(r.sections.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
