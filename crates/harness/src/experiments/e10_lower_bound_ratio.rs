//! **E10** — optimality against the lower bound of \[Newport 2014\]:
//! `Ω(log n / log C + log log n)` rounds are necessary. If the paper's
//! upper bound is tight (up to the `log log log n` factor), the ratio
//! `measured / (lg n/lg C + lg lg n)` must stay bounded over the whole
//! `(n, C)` grid — no drift as either parameter grows.

use mac_sim::campaign::SeedStream;

use super::e09_full_vs_baselines::full_one_with_spine;
use super::{seed_base, theory_two_active};
use crate::{cell_f64, ExperimentReport, RunCtx, Samples};

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E10",
        "Measured rounds / lower-bound curve stays a bounded constant",
    );
    let ns: Vec<u64> = scale.thin(&[1u64 << 10, 1 << 14, 1 << 18]);
    let cs: Vec<u32> = scale.thin(&[8, 32, 128, 512, 2048]);
    let active = 256usize;
    let trials = scale.trials().min(30);

    let caption = format!("Ratio sweep, |A| = {active}");
    let mut sweep = ctx.sweep::<(Samples, u64)>(
        &caption,
        &[
            "n",
            "C",
            "mean rounds",
            "lower-bound curve",
            "ratio",
            "% solved in reduce",
        ],
    );
    for &n in &ns {
        for &c in &cs {
            sweep.row(
                trials,
                SeedStream::Offset(seed_base("e10", u64::from(c), n)),
                <(Samples, u64)>::default,
                move |seed, acc| {
                    // One execution per seed: the rounds and the solver's
                    // phase spine come off the same run. A spine still in
                    // its first record means the run never left Reduce.
                    let (rounds, spine) = full_one_with_spine(c, n, active, seed);
                    acc.0.push(rounds);
                    if spine.last().map(|r| r.name) == Some("reduce") {
                        acc.1 += 1;
                    }
                },
                move |(rounds, in_reduce)| {
                    let mean = rounds.0.finish().mean;
                    let bound = theory_two_active(n, c);
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let ne = (n as f64).log2() as u32;
                    #[allow(clippy::cast_precision_loss)]
                    let pct = 100.0 * in_reduce as f64 / trials.max(1) as f64;
                    vec![
                        format!("2^{ne}"),
                        c.to_string(),
                        format!("{mean:.1}"),
                        format!("{bound:.1}"),
                        format!("{:.2}", mean / bound),
                        format!("{pct:.0}%"),
                    ]
                },
            );
        }
    }
    let table = sweep.run();
    let ratios: Vec<f64> = table.rows().iter().map(|row| cell_f64(&row[4])).collect();
    report.section(caption, table);

    report.note(
        "A least-squares decomposition of these means into Theorem 4's two terms is \
         deliberately NOT reported: at a fixed activation density the pipeline \
         frequently solves inside Reduce (whose cost depends on where the 1/n̂ \
         schedule meets |A|) — the last column, read straight off the solver's \
         phase-telemetry spine, quantifies exactly how often — so typical-case \
         means do not split along worst-case term boundaries. The bounded ratio \
         above is the meaningful optimality check; per-term behavior is isolated \
         by E1-E3 (log n/log C) and E5/E8 (the log log terms) instead."
            .to_string(),
    );
    let max = ratios.iter().copied().fold(f64::MIN, f64::max);
    let min = ratios.iter().copied().fold(f64::MAX, f64::min);
    report.note(format!(
        "Ratios span [{min:.2}, {max:.2}] across the grid — a bounded constant band \
         (the paper's upper bound is a log log log n factor above the lower bound, \
         which at these n is ≤ {:.1} and absorbed into the band).",
        (((1u64 << 18) as f64).log2().log2().log2()).max(1.0)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::super::e09_full_vs_baselines::full_rounds;
    use super::*;
    use crate::Scale;

    #[test]
    fn ratio_band_is_bounded() {
        let mut ratios = Vec::new();
        for (n, c) in [(1u64 << 10, 32u32), (1 << 14, 32), (1 << 18, 512)] {
            let rounds = full_rounds(c, n, 128, 8, 4);
            let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
            ratios.push(mean / theory_two_active(n, c));
        }
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 12.0, "ratio drifted: {ratios:?}");
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
    }
}
