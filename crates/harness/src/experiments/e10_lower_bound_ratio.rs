//! **E10** — optimality against the lower bound of \[Newport 2014\]:
//! `Ω(log n / log C + log log n)` rounds are necessary. If the paper's
//! upper bound is tight (up to the `log log log n` factor), the ratio
//! `measured / (lg n/lg C + lg lg n)` must stay bounded over the whole
//! `(n, C)` grid — no drift as either parameter grows.

use contention_analysis::Table;

use super::e09_full_vs_baselines::{full_rounds, full_solver_spines};
use super::{seed_base, theory_two_active};
use crate::{ExperimentReport, Scale};

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E10",
        "Measured rounds / lower-bound curve stays a bounded constant",
    );
    let ns: Vec<u64> = scale.thin(&[1u64 << 10, 1 << 14, 1 << 18]);
    let cs: Vec<u32> = scale.thin(&[8, 32, 128, 512, 2048]);
    let active = 256usize;
    let trials = scale.trials().min(30);

    let mut table = Table::new(&[
        "n",
        "C",
        "mean rounds",
        "lower-bound curve",
        "ratio",
        "% solved in reduce",
    ]);
    let mut ratios = Vec::new();
    for &n in &ns {
        for &c in &cs {
            let seed = seed_base("e10", u64::from(c), n);
            let rounds = full_rounds(c, n, active, trials, seed);
            let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
            let bound = theory_two_active(n, c);
            let ratio = mean / bound;
            ratios.push(ratio);
            // Same seed → the same trials: the solver's phase spine says
            // which step the solving transmission came from. A spine still
            // in its first record means the run never left Reduce.
            let spines = full_solver_spines(c, n, active, trials, seed);
            let in_reduce = spines
                .iter()
                .filter(|s| s.last().map(|r| r.name) == Some("reduce"))
                .count();
            table.row_owned(vec![
                format!("2^{}", (n as f64).log2() as u32),
                c.to_string(),
                format!("{mean:.1}"),
                format!("{bound:.1}"),
                format!("{ratio:.2}"),
                format!(
                    "{:.0}%",
                    100.0 * in_reduce as f64 / spines.len().max(1) as f64
                ),
            ]);
        }
    }
    report.section(format!("Ratio sweep, |A| = {active}"), table);

    report.note(
        "A least-squares decomposition of these means into Theorem 4's two terms is          deliberately NOT reported: at a fixed activation density the pipeline          frequently solves inside Reduce (whose cost depends on where the 1/n̂          schedule meets |A|) — the last column, read straight off the solver's          phase-telemetry spine, quantifies exactly how often — so typical-case          means do not split along worst-case term boundaries. The bounded ratio          above is the meaningful optimality check; per-term behavior is isolated          by E1-E3 (log n/log C) and E5/E8 (the log log terms) instead."
            .to_string(),
    );
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
    report.note(format!(
        "Ratios span [{min:.2}, {max:.2}] across the grid — a bounded constant band \
         (the paper's upper bound is a log log log n factor above the lower bound, \
         which at these n is ≤ {:.1} and absorbed into the band).",
        (((1u64 << 18) as f64).log2().log2().log2()).max(1.0)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_band_is_bounded() {
        let mut ratios = Vec::new();
        for (n, c) in [(1u64 << 10, 32u32), (1 << 14, 32), (1 << 18, 512)] {
            let rounds = full_rounds(c, n, 128, 8, 4);
            let mean = rounds.iter().sum::<u64>() as f64 / rounds.len() as f64;
            ratios.push(mean / theory_two_active(n, c));
        }
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 12.0, "ratio drifted: {ratios:?}");
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 1);
    }
}
