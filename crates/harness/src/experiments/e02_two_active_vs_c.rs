//! **E2** — Theorem 1, the `C` axis. Two effects superpose:
//!
//! * the *w.h.p. budget* `2·log_C n + ⌈lg lg C⌉ + 2` falls as `1/lg C`
//!   until the additive `lg lg` term takes over — the crossover the lower
//!   bound of \[14\] says must exist;
//! * the *typical* completion is `≈ C/(C−1) + ⌈lg lg C⌉ + 2` rounds: more
//!   channels make the rename step certain in one round but grow the
//!   deterministic search by `lg lg C`. Channels buy **confidence**, not
//!   typical speed — which is exactly why the lower bound's `log n/log C`
//!   term is a high-probability statement.

use contention::TwoActive;
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig, StopWhen};

use super::e01_two_active_vs_n::{completion_rounds, solve_rounds, whp_budget};
use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};

/// Search (SplitCheck) rounds of one run, from protocol stats.
fn search_rounds_one(c: u32, n: u64, seed: u64) -> u64 {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    exec.add_node(TwoActive::new(c, n));
    exec.add_node(TwoActive::new(c, n));
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    let stats = exec.iter_nodes().next().expect("has nodes").stats();
    stats.search_rounds
}

/// Mean search rounds over `trials` consecutive seeds. Test helper.
#[cfg(test)]
pub(crate) fn mean_search_rounds(c: u32, n: u64, trials: usize, seed: u64) -> f64 {
    let rounds: Vec<u64> = (0..trials as u64)
        .map(|i| search_rounds_one(c, n, seed.wrapping_add(i)))
        .collect();
    rounds.iter().sum::<u64>() as f64 / rounds.len() as f64
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E2",
        "TwoActive vs C: the w.h.p. budget falls as 1/lg C to a lg lg floor",
    );
    let c_exps: Vec<u32> = scale.thin(&[1, 2, 3, 4, 6, 8, 10, 12, 14]);
    let ns = [1u64 << 12, 1u64 << 20];

    let caption = "Rounds to solve / complete vs channel count, |A| = 2";
    let mut sweep = ctx.sweep::<(Samples, Samples, u64, Samples)>(
        caption,
        &[
            "n",
            "C",
            "solved mean",
            "completed mean",
            "search mean (lg lg C part)",
            "whp budget",
            "trials > budget",
        ],
    );
    for &n in &ns {
        for &ce in &c_exps {
            let c = 1u32 << ce;
            let budget = whp_budget(n, c);
            let solve_base = seed_base("e2s", u64::from(c), n);
            let complete_base = seed_base("e2c", u64::from(c), n);
            let search_base = seed_base("e2x", u64::from(c), n);
            let search_trials = scale.trials().min(30) as u64;
            sweep.row(
                scale.trials(),
                SeedStream::Offset(0),
                <(Samples, Samples, u64, Samples)>::default,
                move |i, acc| {
                    acc.0.push(solve_rounds(c, n, solve_base.wrapping_add(i)));
                    let completed = completion_rounds(c, n, complete_base.wrapping_add(i));
                    acc.1.push(completed);
                    #[allow(clippy::cast_precision_loss)]
                    if completed as f64 > budget {
                        acc.2 += 1;
                    }
                    if i < search_trials {
                        acc.3
                            .push(search_rounds_one(c, n, search_base.wrapping_add(i)));
                    }
                },
                move |(solved, completed, over, search)| {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let n_exp = (n as f64).log2() as u32;
                    vec![
                        format!("2^{n_exp}"),
                        c.to_string(),
                        format!("{:.2}", solved.0.finish().mean),
                        format!("{:.2}", completed.0.finish().mean),
                        format!("{:.2}", search.0.finish().mean),
                        format!("{budget:.1}"),
                        over.to_string(),
                    ]
                },
            );
        }
    }
    report.section(caption, sweep.run());
    report.note(
        "The w.h.p. budget column reproduces the theorem's shape: it falls as \
         1/lg C and flattens at the lg lg floor. Typical completion stays ~5 \
         rounds everywhere — with two nodes, extra channels buy confidence \
         (the n^-2 tail), not typical speed, while the search term grows \
         gently as lg lg C (see the search column)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn budget_shape_falls_then_flattens() {
        let n = 1u64 << 20;
        let b2 = whp_budget(n, 2);
        let b256 = whp_budget(n, 256);
        let b16k = whp_budget(n, 1 << 14);
        assert!(b256 < b2 / 2.0, "budget must fall steeply: {b2} -> {b256}");
        assert!(
            (b256 - b16k).abs() < 0.6 * b256,
            "budget must flatten near the lg lg floor: {b256} vs {b16k}"
        );
    }

    #[test]
    fn completion_stays_within_budget_across_c() {
        use super::super::e01_two_active_vs_n::measure_completion;
        let n = 1u64 << 16;
        for ce in [1u32, 4, 8, 12] {
            let c = 1u32 << ce;
            let completed = measure_completion(c, n, 20, 11);
            let budget = whp_budget(n, c);
            for r in &completed {
                assert!((*r as f64) <= budget, "C={c}: {r} > {budget}");
            }
        }
    }

    #[test]
    fn search_rounds_grow_like_lglg_c() {
        let n = 1u64 << 16;
        let narrow = mean_search_rounds(4, n, 15, 2);
        let wide = mean_search_rounds(1 << 12, n, 15, 2);
        assert!(wide > narrow, "search must grow with C: {narrow} vs {wide}");
        assert!(wide <= 5.0, "but only as lg lg C: got {wide}");
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
        assert!(!r.notes.is_empty());
    }
}
