//! **E6** — Theorem 6 / Lemmas 7–10: starting from `|A| = O(log n)`,
//! `IdReduction` terminates within `O(log n / log C)` rounds w.h.p., leaving
//! at most `C/2` survivors with distinct ids from `[C/2]`.

use contention::{IdReduction, IdReductionOutcome, Params};
use contention_analysis::{Summary, Table};
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig, StopWhen, TraceLevel};
use std::collections::HashSet;

use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};
use mac_sim::trials::run_trials_with;

/// One trial's digest: (rounds, surviving ids).
type Digest = (u64, Vec<u32>);

/// One `IdReduction` execution at one seed.
fn measure_one(c: u32, active: usize, params: Params, seed: u64) -> Digest {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..active {
        exec.add_node(IdReduction::new(params, c));
    }
    let report = exec
        .run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    let ids: Vec<u32> = exec
        .iter_nodes()
        .filter_map(|p| match p.outcome().expect("terminated") {
            IdReductionOutcome::Renamed(id) => Some(id),
            IdReductionOutcome::Eliminated => None,
        })
        .collect();
    (report.rounds_executed, ids)
}

#[cfg(test)]
pub(crate) fn measure(
    c: u32,
    active: usize,
    params: Params,
    trials: usize,
    seed: u64,
) -> Vec<Digest> {
    (0..trials as u64)
        .map(|i| measure_one(c, active, params, seed.wrapping_add(i)))
        .collect()
}

/// Streaming per-row state for the invariant table.
#[derive(Default)]
struct IdRow {
    rounds: Samples,
    survivors: Samples,
    not_within: u64,
    not_unique: u64,
}

impl mac_sim::campaign::Aggregate for IdRow {
    fn merge(&mut self, other: Self) {
        self.rounds.merge(other.rounds);
        self.survivors.merge(other.survivors);
        self.not_within += other.not_within;
        self.not_unique += other.not_unique;
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E6",
        "IdReduction (Theorem 6: unique ids from [C/2] in O(log n/log C) rounds)",
    );
    let c_exps: Vec<u32> = scale.thin(&[4, 6, 8, 10, 12, 14]);
    // |A| = Θ(log n): 24 models n = 2^24; 200 stresses the reduction path.
    let actives = [24usize, 200];

    let caption = "Rounds and survivors (practical constants)";
    let mut sweep = ctx.sweep::<IdRow>(
        caption,
        &[
            "C",
            "|A|",
            "rounds mean",
            "rounds p95",
            "survivors mean",
            "survivors ≤ C/2?",
            "ids always unique?",
        ],
    );
    for &ce in &c_exps {
        let c = 1u32 << ce;
        for &active in &actives {
            sweep.row(
                scale.trials(),
                SeedStream::Offset(seed_base("e6", u64::from(c), active as u64)),
                IdRow::default,
                move |seed, acc| {
                    let (rounds, ids) = measure_one(c, active, Params::practical(), seed);
                    acc.rounds.push(rounds);
                    acc.survivors.push(ids.len() as u64);
                    if ids.len() as u32 > c / 2 {
                        acc.not_within += 1;
                    }
                    let set: HashSet<u32> = ids.iter().copied().collect();
                    if set.len() != ids.len() || ids.iter().any(|&id| id < 1 || id > c / 2) {
                        acc.not_unique += 1;
                    }
                },
                move |acc| {
                    let within = acc.not_within == 0;
                    let unique = acc.not_unique == 0;
                    assert!(within && unique, "C={c} |A|={active}: invariant violated");
                    let rounds = acc.rounds.0.finish();
                    vec![
                        c.to_string(),
                        active.to_string(),
                        format!("{:.1}", rounds.mean),
                        format!("{:.0}", rounds.p95),
                        format!("{:.1}", acc.survivors.0.finish().mean),
                        "yes".to_string(),
                        "yes".to_string(),
                    ]
                },
            );
        }
    }
    report.section(caption, sweep.run());

    // A second, smaller sweep with the paper's literal constants.
    let caption_paper = "Paper-literal constants";
    let mut paper_sweep = ctx.sweep::<Samples>(
        caption_paper,
        &["C", "|A|", "rounds mean (paper k=√C/144, clamped ≥3)"],
    );
    for &c in &[1u32 << 8, 1 << 12] {
        paper_sweep.row(
            scale.trials(),
            SeedStream::Offset(seed_base("e6p", u64::from(c), 0)),
            Samples::default,
            move |seed, acc| {
                acc.push(measure_one(c, 24, Params::paper(), seed).0);
            },
            move |acc| {
                vec![
                    c.to_string(),
                    "24".into(),
                    format!("{:.1}", acc.0.finish().mean),
                ]
            },
        );
    }
    report.section(caption_paper, paper_sweep.run());

    // Lemma 7's dynamics: the active-set trajectory, read off the traces
    // (in a rename round every active node transmits, so the total
    // transmitter count in that round *is* |A_r|). One bounded batch on the
    // trial layer — itself a single-cell campaign — feeding several rows.
    let (c, active) = (64u32, 200usize);
    let trajectories: Vec<Vec<u64>> = run_trials_with(
        scale.trials().min(30),
        super::seed_base("e6traj", u64::from(c), active as u64),
        |s| {
            let cfg = SimConfig::new(c)
                .seed(s)
                .stop_when(StopWhen::AllTerminated)
                .trace_level(TraceLevel::Channels)
                .max_rounds(1_000_000);
            let mut exec = Engine::new(cfg);
            for _ in 0..active {
                exec.add_node(IdReduction::new(Params::practical(), c));
            }
            exec
        },
        |_, report| {
            report
                .trace
                .rounds()
                .iter()
                .filter(|rt| rt.round % 3 == 0)
                .map(|rt| rt.outcomes.iter().map(|oc| oc.transmitters as u64).sum())
                .collect()
        },
    );
    let mut traj_table = Table::new(&["rename attempt", "|A| mean", "|A| max", "target C/6"]);
    let attempts = trajectories.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..attempts.min(8) {
        let vals: Vec<u64> = trajectories
            .iter()
            .filter_map(|t| t.get(i).copied())
            .collect();
        let s = Summary::from_u64(&vals);
        traj_table.row_owned(vec![
            (i + 1).to_string(),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.max),
            format!("{:.1}", f64::from(c) / 6.0),
        ]);
    }
    report.section(
        format!("Active-set trajectory (Lemma 7) at C = {c}, |A|0 = {active}"),
        traj_table,
    );
    report.note(
        "The trajectory shows Lemma 7's mechanism: each reduction round cuts the \
         active set geometrically; renaming then succeeds within a couple of \
         attempts (Lemmas 9-10; the C/6 threshold in the analysis is \
         conservative — empirically renaming already succeeds well above it)."
            .to_string(),
    );
    report.note(
        "All runs end with ≤ C/2 survivors holding distinct ids from [C/2]; \
         rounds shrink as C grows, matching the lg n/lg C shape of Theorem 6."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn invariants_hold_at_every_point() {
        for (c, active) in [(16u32, 24usize), (256, 200), (4096, 24)] {
            let data = measure(c, active, Params::practical(), 8, 5);
            for (rounds, ids) in &data {
                assert!(*rounds >= 1);
                assert!(!ids.is_empty(), "C={c} |A|={active}: nobody renamed");
                assert!(ids.len() as u32 <= c / 2);
                let set: HashSet<u32> = ids.iter().copied().collect();
                assert_eq!(set.len(), ids.len(), "C={c}: duplicates");
            }
        }
    }

    #[test]
    fn rounds_decrease_with_channels() {
        let mean = |c: u32| {
            let data = measure(c, 64, Params::practical(), 15, 9);
            data.iter().map(|d| d.0).sum::<u64>() as f64 / data.len() as f64
        };
        let narrow = mean(16);
        let wide = mean(1 << 12);
        assert!(
            wide <= narrow,
            "C=4096 ({wide}) should not exceed C=16 ({narrow})"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 3);
    }
}
