//! **E7** — Lemma 9: throwing `b = m/β` balls into `m` bins (`3 ≤ β < m`),
//! `P[no ball lands alone] < 2^{-b/2}` — the engine behind `IdReduction`'s
//! renaming success probability.

use contention_analysis::balls::{lemma9_bound, no_lone_ball_probability};
use mac_sim::campaign::{Collect, SeedStream};

use super::seed_base;
use crate::{ExperimentReport, RunCtx};

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report =
        ExperimentReport::new("E7", "Balls-in-bins (Lemma 9: P[no lone ball] < 2^(-b/2))");
    let betas = [3usize, 4, 8, 16];
    let ms: Vec<usize> = scale.thin(&[48, 128, 512, 2048]);
    let mc_trials = scale.mc_trials();

    let caption = "Measured no-lone-ball probability vs the Lemma 9 bound";
    let mut sweep = ctx.sweep::<Collect<f64>>(
        caption,
        &[
            "β",
            "m (bins)",
            "b = m/β (balls)",
            "measured P",
            "bound 2^(-b/2)",
            "holds?",
        ],
    );
    for &beta in &betas {
        for &m in &ms {
            if beta >= m {
                continue;
            }
            let b = m / beta;
            sweep.row(
                1,
                SeedStream::Offset(seed_base("e7", beta as u64, m as u64)),
                Collect::default,
                move |seed, acc| {
                    acc.0.push(no_lone_ball_probability(b, m, mc_trials, seed));
                },
                move |acc| {
                    let p = acc.0[0];
                    let bound = lemma9_bound(b);
                    #[allow(clippy::cast_precision_loss)]
                    let holds = p <= bound || p < 3.0 / mc_trials as f64;
                    vec![
                        beta.to_string(),
                        m.to_string(),
                        b.to_string(),
                        format!("{p:.6}"),
                        format!("{bound:.6}"),
                        if holds { "yes" } else { "NO" }.to_string(),
                    ]
                },
            );
        }
    }
    let table = sweep.run();
    let violations = table
        .rows()
        .iter()
        .filter(|row| row.last().is_some_and(|cell| cell == "NO"))
        .count();
    report.section(caption, table);
    report.note(format!(
        "The bound held at {} of {} grid points (0 expected failures: Lemma 9 is \
         conservative — measured probabilities sit orders of magnitude below it).",
        table_points(&betas, &ms) - violations,
        table_points(&betas, &ms),
    ));
    assert_eq!(violations, 0, "Lemma 9 bound violated empirically");
    report
}

fn table_points(betas: &[usize], ms: &[usize]) -> usize {
    betas
        .iter()
        .flat_map(|&b| ms.iter().filter(move |&&m| b < m))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn bound_holds_on_a_spot_grid() {
        for (beta, m) in [(3usize, 48usize), (8, 256)] {
            let b = m / beta;
            let p = no_lone_ball_probability(b, m, 10_000, 3);
            assert!(p <= lemma9_bound(b) + 0.01, "beta={beta} m={m}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
        assert!(!r.sections[0].table.is_empty());
    }
}
