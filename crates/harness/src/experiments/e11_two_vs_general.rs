//! **E11** — §4 vs §5 on the restricted case: with `|A| = 2`, the dedicated
//! `TwoActive` algorithm is exactly optimal while the general pipeline pays
//! its fixed `Reduce`/`IdReduction` scaffolding plus the `log log log n`
//! search factor. Both solve; the specialist should never lose.

use contention::{FullAlgorithm, Params};
use contention_analysis::{Summary, Table};
use mac_sim::{Engine, SimConfig, StopWhen};

use super::e01_two_active_vs_n::measure_completion as two_active_rounds;
use super::seed_base;
use crate::{ExperimentReport, Scale};
use mac_sim::trials::run_trials;

fn general_rounds(c: u32, n: u64, trials: usize, seed: u64) -> Vec<u64> {
    // Completion time (all nodes terminated), matching the specialist's
    // metric: the time the algorithm itself needs, immune to lucky early
    // lone transmissions.
    run_trials(trials, seed, |s| {
        let cfg = SimConfig::new(c)
            .seed(s)
            .stop_when(StopWhen::AllTerminated)
            .max_rounds(1_000_000);
        let mut exec = Engine::new(cfg);
        for _ in 0..2 {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_executed)
    .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new("E11", "TwoActive vs the general algorithm on |A| = 2");
    let n_exps: Vec<u32> = scale.thin(&[8, 12, 16, 20]);
    let cs = [64u32, 1024];

    let mut table = Table::new(&[
        "C",
        "n",
        "TwoActive completion mean",
        "general completion mean",
        "general/TwoActive",
    ]);
    for &c in &cs {
        for &ne in &n_exps {
            let n = 1u64 << ne;
            let two = Summary::from_u64(&two_active_rounds(
                c,
                n,
                scale.trials(),
                seed_base("e11t", u64::from(c), n),
            ));
            let gen = Summary::from_u64(&general_rounds(
                c,
                n,
                scale.trials(),
                seed_base("e11g", u64::from(c), n),
            ));
            table.row_owned(vec![
                c.to_string(),
                format!("2^{ne}"),
                format!("{:.1}", two.mean),
                format!("{:.1}", gen.mean),
                format!("{:.2}", gen.mean / two.mean),
            ]);
        }
    }
    report.section("Mean rounds with exactly two active nodes", table);
    report.note(
        "The specialist wins at every point, by a factor that grows slowly with n — \
         consistent with the general algorithm's extra lg lg lg n factor plus its \
         fixed Reduce overhead (2⌈lg lg n⌉ rounds spent before renaming even starts)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialist_beats_generalist() {
        let (c, n) = (64u32, 1u64 << 16);
        let two = two_active_rounds(c, n, 15, 1);
        let gen = general_rounds(c, n, 15, 1);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&two) <= mean(&gen),
            "TwoActive ({}) must not lose to the general algorithm ({})",
            mean(&two),
            mean(&gen)
        );
    }

    #[test]
    fn both_always_solve() {
        let (c, n) = (1024u32, 1u64 << 12);
        assert_eq!(two_active_rounds(c, n, 10, 2).len(), 10);
        assert_eq!(general_rounds(c, n, 10, 2).len(), 10);
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 1);
    }
}
