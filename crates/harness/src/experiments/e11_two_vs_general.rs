//! **E11** — §4 vs §5 on the restricted case: with `|A| = 2`, the dedicated
//! `TwoActive` algorithm is exactly optimal while the general pipeline pays
//! its fixed `Reduce`/`IdReduction` scaffolding plus the `log log log n`
//! search factor. Both solve; the specialist should never lose.

use contention::phase::PhaseTelemetry;
use contention::{FullAlgorithm, Params};
use contention_analysis::{Summary, Table};
use mac_sim::{Engine, SimConfig, StopWhen};

use super::e01_two_active_vs_n::measure_completion as two_active_rounds;
use super::seed_base;
use crate::{ExperimentReport, Scale};
use mac_sim::trials::{run_trials, run_trials_with};

fn general_engine(c: u32, n: u64, s: u64) -> Engine<FullAlgorithm> {
    let cfg = SimConfig::new(c)
        .seed(s)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..2 {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    exec
}

fn general_rounds(c: u32, n: u64, trials: usize, seed: u64) -> Vec<u64> {
    // Completion time (all nodes terminated), matching the specialist's
    // metric: the time the algorithm itself needs, immune to lucky early
    // lone transmissions.
    run_trials(trials, seed, |s| general_engine(c, n, s))
        .iter()
        .map(|r| r.rounds_executed)
        .collect()
}

/// Mean rounds the eventual leader spent inside `Reduce`, read off its
/// phase-telemetry spine — the "fixed scaffolding" share of the general
/// algorithm's cost that the specialist never pays (same engines as
/// [`general_rounds`] at the same seed).
fn general_reduce_rounds(c: u32, n: u64, trials: usize, seed: u64) -> f64 {
    let per_trial = run_trials_with(
        trials,
        seed,
        |s| general_engine(c, n, s),
        |exec, report| {
            report
                .solver
                .map(|id| {
                    exec.node(id)
                        .phase_stats()
                        .iter()
                        .filter(|r| r.name == "reduce")
                        .map(|r| r.rounds)
                        .sum::<u64>()
                })
                .unwrap_or_default()
        },
    );
    per_trial.iter().sum::<u64>() as f64 / per_trial.len().max(1) as f64
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new("E11", "TwoActive vs the general algorithm on |A| = 2");
    let n_exps: Vec<u32> = scale.thin(&[8, 12, 16, 20]);
    let cs = [64u32, 1024];

    let mut table = Table::new(&[
        "C",
        "n",
        "TwoActive completion mean",
        "general completion mean",
        "general/TwoActive",
        "leader rounds in Reduce",
    ]);
    for &c in &cs {
        for &ne in &n_exps {
            let n = 1u64 << ne;
            let seed = seed_base("e11g", u64::from(c), n);
            let two = Summary::from_u64(&two_active_rounds(
                c,
                n,
                scale.trials(),
                seed_base("e11t", u64::from(c), n),
            ));
            let gen = Summary::from_u64(&general_rounds(c, n, scale.trials(), seed));
            // Same seed → the same trials: the leader's phase-telemetry
            // spine splits the general mean into scaffolding vs search.
            let reduce = general_reduce_rounds(c, n, scale.trials(), seed);
            table.row_owned(vec![
                c.to_string(),
                format!("2^{ne}"),
                format!("{:.1}", two.mean),
                format!("{:.1}", gen.mean),
                format!("{:.2}", gen.mean / two.mean),
                format!("{reduce:.1}"),
            ]);
        }
    }
    report.section("Mean rounds with exactly two active nodes", table);
    report.note(
        "The specialist wins at every point, by a factor that grows slowly with n — \
         consistent with the general algorithm's extra lg lg lg n factor plus its \
         fixed Reduce overhead (2⌈lg lg n⌉ rounds spent before renaming even starts). \
         The last column reads that overhead straight off the leader's phase-telemetry \
         spine: with only two contenders almost every trial is decided inside Reduce, \
         so the scaffolding is most of the generalist's bill."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialist_beats_generalist() {
        let (c, n) = (64u32, 1u64 << 16);
        let two = two_active_rounds(c, n, 15, 1);
        let gen = general_rounds(c, n, 15, 1);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&two) <= mean(&gen),
            "TwoActive ({}) must not lose to the general algorithm ({})",
            mean(&two),
            mean(&gen)
        );
    }

    #[test]
    fn reduce_overhead_is_within_the_total() {
        let (c, n) = (64u32, 1u64 << 16);
        let total = general_rounds(c, n, 10, 3);
        let mean_total = total.iter().sum::<u64>() as f64 / total.len() as f64;
        let reduce = general_reduce_rounds(c, n, 10, 3);
        assert!(reduce > 0.0, "the pipeline always enters Reduce");
        assert!(
            reduce <= mean_total,
            "spine rounds ({reduce}) cannot exceed completion rounds ({mean_total})"
        );
    }

    #[test]
    fn both_always_solve() {
        let (c, n) = (1024u32, 1u64 << 12);
        assert_eq!(two_active_rounds(c, n, 10, 2).len(), 10);
        assert_eq!(general_rounds(c, n, 10, 2).len(), 10);
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 1);
    }
}
