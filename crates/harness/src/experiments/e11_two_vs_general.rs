//! **E11** — §4 vs §5 on the restricted case: with `|A| = 2`, the dedicated
//! `TwoActive` algorithm is exactly optimal while the general pipeline pays
//! its fixed `Reduce`/`IdReduction` scaffolding plus the `log log log n`
//! search factor. Both solve; the specialist should never lose.

use contention::phase::PhaseTelemetry;
use contention::{FullAlgorithm, Params};
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig, StopWhen};

use super::e01_two_active_vs_n::completion_rounds as two_active_one;
use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};

fn general_engine(c: u32, n: u64, s: u64) -> Engine<FullAlgorithm> {
    let cfg = SimConfig::new(c)
        .seed(s)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    for _ in 0..2 {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    exec
}

/// One general-pipeline run: completion rounds (all nodes terminated,
/// matching the specialist's metric and immune to lucky early lone
/// transmissions) plus the eventual leader's rounds inside `Reduce`, read
/// off its phase-telemetry spine — the "fixed scaffolding" share the
/// specialist never pays.
fn general_one(c: u32, n: u64, seed: u64) -> (u64, u64) {
    let mut exec = general_engine(c, n, seed);
    let report = exec
        .run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    let reduce = report
        .solver
        .map(|id| {
            exec.node(id)
                .phase_stats()
                .iter()
                .filter(|r| r.name == "reduce")
                .map(|r| r.rounds)
                .sum::<u64>()
        })
        .unwrap_or_default();
    (report.rounds_executed, reduce)
}

#[cfg(test)]
fn general_rounds(c: u32, n: u64, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| general_one(c, n, seed.wrapping_add(i)).0)
        .collect()
}

#[cfg(test)]
fn general_reduce_rounds(c: u32, n: u64, trials: usize, seed: u64) -> f64 {
    let total: u64 = (0..trials as u64)
        .map(|i| general_one(c, n, seed.wrapping_add(i)).1)
        .sum();
    total as f64 / trials.max(1) as f64
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new("E11", "TwoActive vs the general algorithm on |A| = 2");
    let n_exps: Vec<u32> = scale.thin(&[8, 12, 16, 20]);
    let cs = [64u32, 1024];
    let trials = scale.trials();

    let caption = "Mean rounds with exactly two active nodes";
    let mut sweep = ctx.sweep::<(Samples, Samples, u64)>(
        caption,
        &[
            "C",
            "n",
            "TwoActive completion mean",
            "general completion mean",
            "general/TwoActive",
            "leader rounds in Reduce",
        ],
    );
    for &c in &cs {
        for &ne in &n_exps {
            let n = 1u64 << ne;
            let two_base = seed_base("e11t", u64::from(c), n);
            let gen_base = seed_base("e11g", u64::from(c), n);
            sweep.row(
                trials,
                SeedStream::Offset(0),
                <(Samples, Samples, u64)>::default,
                move |i, acc| {
                    acc.0.push(two_active_one(c, n, two_base.wrapping_add(i)));
                    let (completion, reduce) = general_one(c, n, gen_base.wrapping_add(i));
                    acc.1.push(completion);
                    acc.2 += reduce;
                },
                move |(two, gen, reduce_total)| {
                    let two_mean = two.0.finish().mean;
                    let gen_mean = gen.0.finish().mean;
                    #[allow(clippy::cast_precision_loss)]
                    let reduce = reduce_total as f64 / trials.max(1) as f64;
                    vec![
                        c.to_string(),
                        format!("2^{ne}"),
                        format!("{two_mean:.1}"),
                        format!("{gen_mean:.1}"),
                        format!("{:.2}", gen_mean / two_mean),
                        format!("{reduce:.1}"),
                    ]
                },
            );
        }
    }
    report.section(caption, sweep.run());
    report.note(
        "The specialist wins at every point, by a factor that grows slowly with n — \
         consistent with the general algorithm's extra lg lg lg n factor plus its \
         fixed Reduce overhead (2⌈lg lg n⌉ rounds spent before renaming even starts). \
         The last column reads that overhead straight off the leader's phase-telemetry \
         spine: with only two contenders almost every trial is decided inside Reduce, \
         so the scaffolding is most of the generalist's bill."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::super::e01_two_active_vs_n::measure_completion as two_active_rounds;
    use super::*;
    use crate::Scale;

    #[test]
    fn specialist_beats_generalist() {
        let (c, n) = (64u32, 1u64 << 16);
        let two = two_active_rounds(c, n, 15, 1);
        let gen = general_rounds(c, n, 15, 1);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&two) <= mean(&gen),
            "TwoActive ({}) must not lose to the general algorithm ({})",
            mean(&two),
            mean(&gen)
        );
    }

    #[test]
    fn reduce_overhead_is_within_the_total() {
        let (c, n) = (64u32, 1u64 << 16);
        let total = general_rounds(c, n, 10, 3);
        let mean_total = total.iter().sum::<u64>() as f64 / total.len() as f64;
        let reduce = general_reduce_rounds(c, n, 10, 3);
        assert!(reduce > 0.0, "the pipeline always enters Reduce");
        assert!(
            reduce <= mean_total,
            "spine rounds ({reduce}) cannot exceed completion rounds ({mean_total})"
        );
    }

    #[test]
    fn both_always_solve() {
        let (c, n) = (1024u32, 1u64 << 12);
        assert_eq!(two_active_rounds(c, n, 10, 2).len(), 10);
        assert_eq!(general_rounds(c, n, 10, 2).len(), 10);
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 1);
    }
}
