//! **E18** (robustness extension) — breakdown thresholds under injected
//! faults. The paper's guarantees assume a *clean* strong-CD channel; this
//! experiment measures how far each algorithm survives away from that
//! assumption, by sweeping the fault-injection layers of [`mac_sim::fault`]
//! and locating where success degrades through 50%:
//!
//! * **noisy CD** — collision ↔ silence flips with probability `p`;
//! * **lossy channel** — per-channel frame erasure with probability `p`;
//! * **crash-stop** — a seeded adversary crashes a fraction of the nodes
//!   early in the run;
//! * **budgeted jamming** — a reactive jammer vetoes the first `B`
//!   would-be-solving rounds.
//!
//! Every cell runs under [`mac_sim::SimConfig::round_budget`], so a
//! fault-wedged protocol terminates with a structured
//! [`mac_sim::SimError::BudgetExhausted`] that is counted as "unsolved"
//! rather than hanging the sweep.

use contention::baselines::{CdTournament, Decay};
use contention::phase::{PhaseStats, PhaseTelemetry};
use contention::{FullAlgorithm, Params, TwoActive};
use contention_analysis::threshold_crossing;
use mac_sim::campaign::{Aggregate, SeedStream};
use mac_sim::fault::{CrashStop, JamBudget, Layered, LossyChannel, NoisyCd};
use mac_sim::{guarded_verdict, CdMode, Engine, FeedbackModel, Protocol, SimConfig, TrialVerdict};

use super::e09_full_vs_baselines::mean_phase_rounds;
use super::seed_base;
use crate::{ExperimentReport, RunCtx};

/// Channels, contender universe, and active-set size for every sweep.
const C: u32 = 64;
const N: u64 = 1 << 12;
const ACTIVE: usize = 96;
/// Watchdog: a run that executes this many rounds is counted as unsolved.
const BUDGET: u64 = 1_000;
/// Crashes land uniformly in the first `CRASH_WINDOW` rounds.
const CRASH_WINDOW: u64 = 50;

/// Outcomes of one (algorithm, fault level) cell across trials.
struct Cell {
    trials: usize,
    /// Rounds-to-solve of the trials that solved.
    rounds: Vec<u64>,
}

impl Cell {
    fn success(&self) -> f64 {
        self.rounds.len() as f64 / self.trials as f64
    }

    fn median(&self) -> Option<u64> {
        if self.rounds.is_empty() {
            return None;
        }
        let mut sorted = self.rounds.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    fn render(&self) -> String {
        match self.median() {
            Some(med) => format!("{:.0}% ({med}r)", 100.0 * self.success()),
            None => "dead".to_string(),
        }
    }
}

/// One streamed table row: the solved-trial rounds of every fault level of
/// one algorithm. Shards merge by element-wise concatenation in seed order,
/// so the per-level vectors are identical whatever the worker count.
struct FaultCells {
    rounds: Vec<Vec<u64>>,
}

impl Aggregate for FaultCells {
    fn merge(&mut self, other: Self) {
        for (mine, theirs) in self.rounds.iter_mut().zip(other.rounds) {
            mine.extend(theirs);
        }
    }
}

/// One seeded engine under one fault model, with budget exhaustion and
/// timeouts counted as unsolved.
///
/// The paper's protocols carry `debug_assert!`s encoding clean-channel
/// invariants ("colliding cohorts cannot sit at the root", …); injected
/// faults legitimately violate those, so in debug builds a tripped
/// assertion is caught and counted as a wedged (unsolved) trial — the same
/// verdict the round budget delivers in release builds. All of that
/// classification lives in [`mac_sim::guarded_verdict`], the one accounting
/// path shared with the campaign layer's quarantine reports and E19.
fn run_one<P, FM>(seed: u64, feedback: FM, nodes: Vec<P>) -> Option<u64>
where
    P: Protocol,
    FM: FeedbackModel,
{
    let cfg = SimConfig::new(C).seed(seed).round_budget(BUDGET);
    let verdict = guarded_verdict(|| {
        let mut engine = Engine::with_feedback(cfg, feedback);
        for node in nodes {
            engine.add_node(node);
        }
        engine.run_summary().map(|s| s.rounds_to_solve())
    });
    match verdict {
        TrialVerdict::Solved(rounds) => Some(rounds),
        TrialVerdict::Wedged(_) => None,
        TrialVerdict::Failed(e) => panic!("unexpected simulation error: {e}"),
    }
}

/// Sequential cell used by the unit tests: `trials` seeded engines with a
/// fresh fault model and population each.
#[cfg(test)]
fn run_cell<P, FM>(
    trials: usize,
    base_seed: u64,
    make_feedback: impl Fn() -> FM,
    make_nodes: &impl Fn() -> Vec<P>,
) -> Cell
where
    P: Protocol,
    FM: FeedbackModel,
{
    let rounds = (0..trials as u64)
        .filter_map(|t| run_one(base_seed.wrapping_add(t), make_feedback(), make_nodes()))
        .collect();
    Cell { trials, rounds }
}

/// One pipeline run under symmetric CD-noise `p`: `Some(spine)` when it
/// solved with an elected solver, read through the same
/// [`contention::phase::PhaseTelemetry`] API the sessions and E9–E11 use.
fn pipeline_profile_one(p: f64, seed: u64) -> Option<Vec<PhaseStats>> {
    let cfg = SimConfig::new(C).seed(seed).round_budget(BUDGET);
    let verdict = guarded_verdict(|| {
        let mut engine =
            Engine::with_feedback(cfg, Layered::new(NoisyCd::symmetric(p), CdMode::Strong));
        for _ in 0..ACTIVE {
            engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
        }
        engine
            .run()
            .map(|report| report.solver.map(|id| engine.node(id).phase_stats()))
    });
    match verdict {
        TrialVerdict::Solved(spine) => Some(spine),
        TrialVerdict::Wedged(_) => None,
        TrialVerdict::Failed(e) => panic!("unexpected simulation error: {e}"),
    }
}

/// Success rate and solver spines under CD-noise `p` (sequential form,
/// used by the tests).
#[cfg(test)]
fn pipeline_phase_profile(p: f64, trials: usize, base_seed: u64) -> (f64, Vec<Vec<PhaseStats>>) {
    let spines: Vec<Vec<PhaseStats>> = (0..trials as u64)
        .filter_map(|t| pipeline_profile_one(p, base_seed.wrapping_add(t)))
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let success = spines.len() as f64 / trials.max(1) as f64;
    (success, spines)
}

/// Fault levels shared by every algorithm in one run of the experiment.
struct Grids {
    noise_ps: Vec<f64>,
    loss_ps: Vec<f64>,
    crash_fracs: Vec<f64>,
    jam_budgets: Vec<u64>,
    trials: usize,
}

impl Grids {
    fn for_scale(scale: crate::Scale) -> Self {
        Grids {
            noise_ps: scale.thin(&[0.0, 0.1, 0.25, 0.5, 0.75, 1.0]),
            loss_ps: scale.thin(&[0.0, 0.1, 0.25, 0.5, 0.75, 0.95]),
            crash_fracs: scale.thin(&[0.0, 0.25, 0.5, 0.9]),
            jam_budgets: scale.thin(&[0, 4, 16, 64]),
            trials: match scale {
                crate::Scale::Quick => 8,
                crate::Scale::Full => 40,
            },
        }
    }
}

/// Node factories, one per algorithm row — plain `fn`s so the same factory
/// can be reused across all four fault sweeps.
fn pipeline_nodes() -> Vec<FullAlgorithm> {
    (0..ACTIVE)
        .map(|_| FullAlgorithm::new(Params::practical(), C, N))
        .collect()
}

fn two_active_nodes() -> Vec<TwoActive> {
    vec![TwoActive::new(C, N), TwoActive::new(C, N)]
}

fn tournament_nodes() -> Vec<CdTournament> {
    (0..ACTIVE).map(|_| CdTournament::new()).collect()
}

fn decay_nodes() -> Vec<Decay> {
    (0..ACTIVE).map(|_| Decay::new(N)).collect()
}

/// Headers for one fault-kind table: algorithm, a column per fault level,
/// plus the interpolated 50%-success breakdown threshold.
fn fault_headers(levels: &[f64], level_label: impl Fn(f64) -> String) -> Vec<String> {
    let mut headers: Vec<String> = vec!["algorithm".to_string()];
    headers.extend(levels.iter().map(|&l| level_label(l)));
    headers.push("50% breakdown".to_string());
    headers
}

/// Streams one algorithm's row of a fault-kind sweep: trial `i` of level
/// `j` runs at `seed_base(tag, kind, j) + i` — the historical seeding,
/// expressed through the campaign's index stream.
#[allow(clippy::too_many_arguments)]
fn fault_row<P, FM>(
    sweep: &mut crate::Sweep<FaultCells>,
    name: &'static str,
    tag: &'static str,
    kind: u64,
    trials: usize,
    levels: &[f64],
    feedback: impl Fn(usize, usize) -> FM + Send + Sync + 'static,
    make_nodes: fn() -> Vec<P>,
) where
    P: Protocol + 'static,
    FM: FeedbackModel + 'static,
{
    let n_levels = levels.len();
    let levels = levels.to_vec();
    let node_count = make_nodes().len();
    sweep.row(
        trials,
        SeedStream::Offset(0),
        move || FaultCells {
            rounds: vec![Vec::new(); n_levels],
        },
        move |i, acc| {
            for (j, cell) in acc.rounds.iter_mut().enumerate() {
                let seed = seed_base(tag, kind, j as u64).wrapping_add(i);
                if let Some(r) = run_one(seed, feedback(j, node_count), make_nodes()) {
                    cell.push(r);
                }
            }
        },
        move |acc| {
            let mut row = vec![name.to_string()];
            let mut success = Vec::with_capacity(acc.rounds.len());
            for rounds in &acc.rounds {
                let cell = Cell {
                    trials,
                    rounds: rounds.clone(),
                };
                success.push(cell.success());
                row.push(cell.render());
            }
            row.push(match threshold_crossing(&levels, &success, 0.5) {
                Some(x) => format!("~{x:.3}"),
                None if success.first().copied().unwrap_or(0.0) < 0.5 => "below at 0".to_string(),
                None => "none in range".to_string(),
            });
            row
        },
    );
}

/// Adds all four algorithm rows of one fault-kind sweep.
fn fault_section<FM>(
    sweep: &mut crate::Sweep<FaultCells>,
    kind: u64,
    trials: usize,
    levels: &[f64],
    feedback: impl Fn(usize, usize) -> FM + Clone + Send + Sync + 'static,
) where
    FM: FeedbackModel + 'static,
{
    fault_row(
        sweep,
        "this paper (pipeline)",
        "e18full",
        kind,
        trials,
        levels,
        feedback.clone(),
        pipeline_nodes,
    );
    fault_row(
        sweep,
        "TwoActive (|A| = 2)",
        "e18two",
        kind,
        trials,
        levels,
        feedback.clone(),
        two_active_nodes,
    );
    fault_row(
        sweep,
        "CD tournament",
        "e18cdt",
        kind,
        trials,
        levels,
        feedback.clone(),
        tournament_nodes,
    );
    fault_row(
        sweep,
        "decay (no-CD baseline)",
        "e18dec",
        kind,
        trials,
        levels,
        feedback,
        decay_nodes,
    );
}

/// Per-row streamed aggregate for the phase-profile table: solved count
/// plus the solver spines of the solved trials.
#[derive(Default)]
struct PhaseProf {
    solved: u64,
    spines: Vec<Vec<PhaseStats>>,
}

impl Aggregate for PhaseProf {
    fn merge(&mut self, other: Self) {
        self.solved += other.solved;
        self.spines.extend(other.spines);
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E18",
        "Fault-injection breakdown thresholds: how much channel abuse each algorithm survives",
    );
    let grids = Grids::for_scale(ctx.scale);
    let trials = grids.trials;

    let caption_noise = format!(
        "Noisy collision detection: success (median rounds) by symmetric flip probability \
         (C = {C}, |A| = {ACTIVE}, budget {BUDGET} rounds, {trials} trials)"
    );
    let headers = fault_headers(&grids.noise_ps, |p| format!("p = {p}"));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut sweep = ctx.sweep::<FaultCells>(&caption_noise, &header_refs);
    let ps = grids.noise_ps.clone();
    fault_section(&mut sweep, 1, trials, &grids.noise_ps, move |j, _| {
        Layered::new(NoisyCd::symmetric(ps[j]), CdMode::Strong)
    });
    report.section(caption_noise, sweep.run());

    let caption_loss =
        "Lossy channel: success (median rounds) by per-channel erasure probability".to_string();
    let headers = fault_headers(&grids.loss_ps, |p| format!("p = {p}"));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut sweep = ctx.sweep::<FaultCells>(&caption_loss, &header_refs);
    let ps = grids.loss_ps.clone();
    fault_section(&mut sweep, 2, trials, &grids.loss_ps, move |j, _| {
        Layered::new(LossyChannel::new(ps[j]), CdMode::Strong)
    });
    report.section(caption_loss, sweep.run());

    let caption_crash = format!(
        "Crash-stop: success (median rounds) by fraction of nodes crashed in the first \
         {CRASH_WINDOW} rounds"
    );
    let headers = fault_headers(&grids.crash_fracs, |f| format!("{:.0}% crash", 100.0 * f));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut sweep = ctx.sweep::<FaultCells>(&caption_crash, &header_refs);
    let fracs = grids.crash_fracs.clone();
    fault_section(
        &mut sweep,
        3,
        trials,
        &grids.crash_fracs,
        move |j, nodes| {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_precision_loss)]
            let f = (fracs[j] * nodes as f64).round() as usize;
            Layered::new(CrashStop::random(f, nodes, CRASH_WINDOW), CdMode::Strong)
        },
    );
    report.section(caption_crash, sweep.run());

    let caption_jam = "Reactive jamming: success (median rounds) by jam budget B — each unit \
                       vetoes one would-be-solving round"
        .to_string();
    #[allow(clippy::cast_precision_loss)]
    let jam_levels: Vec<f64> = grids.jam_budgets.iter().map(|&b| b as f64).collect();
    let headers = fault_headers(&jam_levels, |b| format!("B = {b:.0}"));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut sweep = ctx.sweep::<FaultCells>(&caption_jam, &header_refs);
    let budgets = grids.jam_budgets.clone();
    fault_section(&mut sweep, 4, trials, &jam_levels, move |j, _| {
        JamBudget::new(CdMode::Strong, budgets[j])
    });
    report.section(caption_jam, sweep.run());

    // Where the surviving pipeline runs spend their rounds as CD noise
    // rises: the solver's per-phase telemetry spine, averaged over the
    // solved trials of each noise level.
    let caption_prof = "Pipeline phase profile under CD noise: mean solver rounds per phase \
                        (solved trials only)"
        .to_string();
    let mut profile = ctx.sweep::<PhaseProf>(
        &caption_prof,
        &[
            "noise p",
            "solved",
            "reduce",
            "id-reduction",
            "leaf-election",
            "solver total",
        ],
    );
    for (i, &p) in grids.noise_ps.iter().enumerate() {
        profile.row(
            trials,
            SeedStream::Offset(seed_base("e18prof", 5, i as u64)),
            PhaseProf::default,
            move |seed, acc| {
                if let Some(spine) = pipeline_profile_one(p, seed) {
                    acc.solved += 1;
                    acc.spines.push(spine);
                }
            },
            move |acc| {
                let total: u64 = acc.spines.iter().flatten().map(|r| r.rounds).sum();
                #[allow(clippy::cast_precision_loss)]
                let success = acc.solved as f64 / trials.max(1) as f64;
                #[allow(clippy::cast_precision_loss)]
                let mean_total = total as f64 / acc.spines.len().max(1) as f64;
                vec![
                    format!("{p}"),
                    format!("{:.0}%", 100.0 * success),
                    format!("{:.1}", mean_phase_rounds(&acc.spines, "reduce")),
                    format!("{:.1}", mean_phase_rounds(&acc.spines, "id-reduction")),
                    format!("{:.1}", mean_phase_rounds(&acc.spines, "leaf-election")),
                    format!("{mean_total:.1}"),
                ]
            },
        );
    }
    report.section(caption_prof, profile.run());

    report.note(
        "Feedback faults (noise, loss) hit the paper's pipeline hardest: its renaming and \
         search phases act on per-round CD feedback, so a single flipped observation can \
         derail a whole phase, while decay — which barely listens — degrades last. The \
         breakdown column interpolates the fault level at which the success rate crosses 50%."
            .to_string(),
    );
    report.note(
        "Crash-stop faults are comparatively benign before the solve: crashed contenders only \
         lower contention, and the engine's validity rail guarantees a crashed node is never \
         the elected transmitter. Reactive jamming shifts the solve round by at least the \
         budget B; protocols that misread the jam-round collisions can lose more than B rounds."
            .to_string(),
    );
    report.note(
        "The phase-profile table reads the solver's telemetry spine (the same API the \
         sessions and E9-E11 use): as noise rises, surviving runs lean on lucky early \
         solves — the mix shifts toward Reduce because runs that reach the \
         feedback-hungry renaming and search phases are exactly the ones noise kills."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use mac_sim::SimError;

    /// The ad-hoc `catch_unwind` + error match this experiment carried
    /// before `mac_sim::guarded_verdict` existed — kept verbatim here so
    /// the parity test below can assert the shared helper counts wedged
    /// trials exactly the way the legacy inline accounting did.
    fn legacy_run_one<P, FM>(seed: u64, feedback: FM, nodes: Vec<P>) -> Option<u64>
    where
        P: Protocol,
        FM: FeedbackModel,
    {
        let cfg = SimConfig::new(C).seed(seed).round_budget(BUDGET);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut engine = Engine::with_feedback(cfg, feedback);
            for node in nodes {
                engine.add_node(node);
            }
            engine.run_summary()
        }));
        match outcome {
            Ok(Ok(summary)) => summary.rounds_to_solve(),
            Ok(Err(SimError::BudgetExhausted { .. } | SimError::Timeout { .. })) | Err(_) => None,
            Ok(Err(e)) => panic!("unexpected simulation error: {e}"),
        }
    }

    #[test]
    fn verdict_helper_matches_legacy_inline_accounting() {
        // Sweep mixed fault regimes — some solving, some wedging — and
        // assert the unified verdict path reproduces the legacy per-seed
        // solved/unsolved decisions exactly.
        for (kind, p) in [(0usize, 0.0), (0, 0.4), (1, 0.6), (1, 0.95)] {
            for t in 0..4u64 {
                let seed = seed_base("e18parity", kind as u64, t);
                let (new, old) = if kind == 0 {
                    (
                        run_one(
                            seed,
                            Layered::new(NoisyCd::symmetric(p), CdMode::Strong),
                            pipeline_nodes(),
                        ),
                        legacy_run_one(
                            seed,
                            Layered::new(NoisyCd::symmetric(p), CdMode::Strong),
                            pipeline_nodes(),
                        ),
                    )
                } else {
                    (
                        run_one(
                            seed,
                            Layered::new(LossyChannel::new(p), CdMode::Strong),
                            pipeline_nodes(),
                        ),
                        legacy_run_one(
                            seed,
                            Layered::new(LossyChannel::new(p), CdMode::Strong),
                            pipeline_nodes(),
                        ),
                    )
                };
                assert_eq!(new, old, "kind {kind} p {p} trial {t} diverged");
            }
        }
    }

    #[test]
    fn fault_free_column_solves() {
        // p = 0 noise over strong CD must behave exactly like the clean
        // engine: the paper's pipeline solves every trial.
        let cell = run_cell(
            6,
            seed_base("e18t", 0, 0),
            || Layered::new(NoisyCd::symmetric(0.0), CdMode::Strong),
            &pipeline_nodes,
        );
        assert_eq!(cell.rounds.len(), cell.trials);
    }

    #[test]
    fn total_loss_kills_everything() {
        let cell = run_cell(
            4,
            seed_base("e18t", 1, 0),
            || Layered::new(LossyChannel::new(1.0), CdMode::Strong),
            &two_active_nodes,
        );
        assert_eq!(cell.rounds.len(), 0);
        assert_eq!(cell.render(), "dead");
    }

    #[test]
    fn jam_budget_inflates_rounds() {
        let make = || (0..32).map(|_| CdTournament::new()).collect::<Vec<_>>();
        let clean = run_cell(
            6,
            seed_base("e18t", 2, 0),
            || JamBudget::new(CdMode::Strong, 0),
            &make,
        );
        let jammed = run_cell(
            6,
            seed_base("e18t", 2, 0),
            || JamBudget::new(CdMode::Strong, 16),
            &make,
        );
        let clean_med = clean.median().expect("clean runs solve");
        if let Some(jam_med) = jammed.median() {
            // 16 would-be-solving rounds are vetoed before one can land, so
            // any solved jammed run needs at least 17 lone-transmission
            // rounds — strictly more than the clean run's handful.
            assert!(
                jam_med >= 17,
                "jam budget 16 must delay the solve past 17 rounds \
                 (clean {clean_med}, jammed {jam_med})"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 5);
        for section in &r.sections[..4] {
            assert_eq!(section.table.len(), 4, "{}", section.caption);
        }
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn clean_phase_profile_is_pipeline_shaped() {
        let (success, spines) = pipeline_phase_profile(0.0, 5, seed_base("e18t", 5, 0));
        assert!((success - 1.0).abs() < f64::EPSILON, "p = 0 always solves");
        assert_eq!(spines.len(), 5);
        for spine in &spines {
            assert_eq!(spine.first().map(|r| r.name), Some("reduce"));
        }
    }
}
