//! **E18** (robustness extension) — breakdown thresholds under injected
//! faults. The paper's guarantees assume a *clean* strong-CD channel; this
//! experiment measures how far each algorithm survives away from that
//! assumption, by sweeping the fault-injection layers of [`mac_sim::fault`]
//! and locating where success degrades through 50%:
//!
//! * **noisy CD** — collision ↔ silence flips with probability `p`;
//! * **lossy channel** — per-channel frame erasure with probability `p`;
//! * **crash-stop** — a seeded adversary crashes a fraction of the nodes
//!   early in the run;
//! * **budgeted jamming** — a reactive jammer vetoes the first `B`
//!   would-be-solving rounds.
//!
//! Every cell runs under [`mac_sim::SimConfig::round_budget`], so a
//! fault-wedged protocol terminates with a structured
//! [`mac_sim::SimError::BudgetExhausted`] that is counted as "unsolved"
//! rather than hanging the sweep.

use contention::baselines::{CdTournament, Decay};
use contention::phase::{PhaseStats, PhaseTelemetry};
use contention::{FullAlgorithm, Params, TwoActive};
use contention_analysis::{threshold_crossing, Table};
use mac_sim::fault::{CrashStop, JamBudget, Layered, LossyChannel, NoisyCd};
use mac_sim::{CdMode, Engine, FeedbackModel, Protocol, SimConfig, SimError};

use super::e09_full_vs_baselines::mean_phase_rounds;
use super::seed_base;
use crate::{ExperimentReport, Scale};

/// Channels, contender universe, and active-set size for every sweep.
const C: u32 = 64;
const N: u64 = 1 << 12;
const ACTIVE: usize = 96;
/// Watchdog: a run that executes this many rounds is counted as unsolved.
const BUDGET: u64 = 1_000;
/// Crashes land uniformly in the first `CRASH_WINDOW` rounds.
const CRASH_WINDOW: u64 = 50;

/// Outcomes of one (algorithm, fault level) cell across trials.
struct Cell {
    trials: usize,
    /// Rounds-to-solve of the trials that solved.
    rounds: Vec<u64>,
}

impl Cell {
    fn success(&self) -> f64 {
        self.rounds.len() as f64 / self.trials as f64
    }

    fn median(&self) -> Option<u64> {
        if self.rounds.is_empty() {
            return None;
        }
        let mut sorted = self.rounds.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    fn render(&self) -> String {
        match self.median() {
            Some(med) => format!("{:.0}% ({med}r)", 100.0 * self.success()),
            None => "dead".to_string(),
        }
    }
}

/// Runs `trials` seeded engines with a fresh fault model and population
/// each, counting budget exhaustion and timeouts as unsolved.
///
/// The paper's protocols carry `debug_assert!`s encoding clean-channel
/// invariants ("colliding cohorts cannot sit at the root", …); injected
/// faults legitimately violate those, so in debug builds a tripped
/// assertion is caught and counted as a wedged (unsolved) trial — the same
/// verdict the round budget delivers in release builds.
fn run_cell<P, FM>(
    trials: usize,
    base_seed: u64,
    make_feedback: impl Fn() -> FM,
    make_nodes: &impl Fn() -> Vec<P>,
) -> Cell
where
    P: Protocol,
    FM: FeedbackModel,
{
    let mut rounds = Vec::new();
    for t in 0..trials as u64 {
        let cfg = SimConfig::new(C)
            .seed(base_seed.wrapping_add(t))
            .round_budget(BUDGET);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut engine = Engine::with_feedback(cfg, make_feedback());
            for node in make_nodes() {
                engine.add_node(node);
            }
            engine.run_summary()
        }));
        match outcome {
            Ok(Ok(summary)) => {
                if let Some(r) = summary.rounds_to_solve() {
                    rounds.push(r);
                }
            }
            Ok(Err(SimError::BudgetExhausted { .. } | SimError::Timeout { .. })) | Err(_) => {}
            Ok(Err(e)) => panic!("unexpected simulation error: {e}"),
        }
    }
    Cell { trials, rounds }
}

/// Success rate and solver phase-telemetry spines for the paper's pipeline
/// under symmetric CD-noise `p`. The breakdown tables say *whether* the
/// pipeline still solves; the spines say *where* the surviving runs spend
/// their rounds as the channel degrades — read through the same
/// [`PhaseTelemetry`] API the sessions and E9–E11 use.
fn pipeline_phase_profile(p: f64, trials: usize, base_seed: u64) -> (f64, Vec<Vec<PhaseStats>>) {
    let mut spines = Vec::new();
    let mut solved = 0usize;
    for t in 0..trials as u64 {
        let cfg = SimConfig::new(C)
            .seed(base_seed.wrapping_add(t))
            .round_budget(BUDGET);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut engine =
                Engine::with_feedback(cfg, Layered::new(NoisyCd::symmetric(p), CdMode::Strong));
            for _ in 0..ACTIVE {
                engine.add_node(FullAlgorithm::new(Params::practical(), C, N));
            }
            engine
                .run()
                .map(|report| report.solver.map(|id| engine.node(id).phase_stats()))
        }));
        match outcome {
            Ok(Ok(Some(spine))) => {
                solved += 1;
                spines.push(spine);
            }
            Ok(Ok(None)) => {}
            Ok(Err(SimError::BudgetExhausted { .. } | SimError::Timeout { .. })) | Err(_) => {}
            Ok(Err(e)) => panic!("unexpected simulation error: {e}"),
        }
    }
    (solved as f64 / trials.max(1) as f64, spines)
}

/// All four fault sweeps for one algorithm.
struct AlgoRows {
    name: &'static str,
    noise: Vec<Cell>,
    loss: Vec<Cell>,
    crash: Vec<Cell>,
    jam: Vec<Cell>,
}

/// Fault levels shared by every algorithm in one run of the experiment.
struct Grids {
    noise_ps: Vec<f64>,
    loss_ps: Vec<f64>,
    crash_fracs: Vec<f64>,
    jam_budgets: Vec<u64>,
    trials: usize,
}

impl Grids {
    fn for_scale(scale: Scale) -> Self {
        Grids {
            noise_ps: scale.thin(&[0.0, 0.1, 0.25, 0.5, 0.75, 1.0]),
            loss_ps: scale.thin(&[0.0, 0.1, 0.25, 0.5, 0.75, 0.95]),
            crash_fracs: scale.thin(&[0.0, 0.25, 0.5, 0.9]),
            jam_budgets: scale.thin(&[0, 4, 16, 64]),
            trials: match scale {
                Scale::Quick => 8,
                Scale::Full => 40,
            },
        }
    }
}

fn sweep_algorithm<P: Protocol>(
    name: &'static str,
    tag: &str,
    grids: &Grids,
    make_nodes: impl Fn() -> Vec<P>,
) -> AlgoRows {
    let node_count = make_nodes().len();
    let noise = grids
        .noise_ps
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            run_cell(
                grids.trials,
                seed_base(tag, 1, i as u64),
                || Layered::new(NoisyCd::symmetric(p), CdMode::Strong),
                &make_nodes,
            )
        })
        .collect();
    let loss = grids
        .loss_ps
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            run_cell(
                grids.trials,
                seed_base(tag, 2, i as u64),
                || Layered::new(LossyChannel::new(p), CdMode::Strong),
                &make_nodes,
            )
        })
        .collect();
    let crash = grids
        .crash_fracs
        .iter()
        .enumerate()
        .map(|(i, &frac)| {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let f = (frac * node_count as f64).round() as usize;
            run_cell(
                grids.trials,
                seed_base(tag, 3, i as u64),
                || {
                    Layered::new(
                        CrashStop::random(f, node_count, CRASH_WINDOW),
                        CdMode::Strong,
                    )
                },
                &make_nodes,
            )
        })
        .collect();
    let jam = grids
        .jam_budgets
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            run_cell(
                grids.trials,
                seed_base(tag, 4, i as u64),
                || JamBudget::new(CdMode::Strong, b),
                &make_nodes,
            )
        })
        .collect();
    AlgoRows {
        name,
        noise,
        loss,
        crash,
        jam,
    }
}

/// Builds one fault-kind table: a row per algorithm, a column per fault
/// level, plus the interpolated 50%-success breakdown threshold.
fn fault_table(
    algos: &[AlgoRows],
    levels: &[f64],
    level_label: impl Fn(f64) -> String,
    pick: impl Fn(&AlgoRows) -> &Vec<Cell>,
) -> Table {
    let mut headers: Vec<String> = vec!["algorithm".to_string()];
    headers.extend(levels.iter().map(|&l| level_label(l)));
    headers.push("50% breakdown".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for algo in algos {
        let cells = pick(algo);
        let mut row = vec![algo.name.to_string()];
        row.extend(cells.iter().map(Cell::render));
        let success: Vec<f64> = cells.iter().map(Cell::success).collect();
        row.push(match threshold_crossing(levels, &success, 0.5) {
            Some(x) => format!("~{x:.3}"),
            None if success.first().copied().unwrap_or(0.0) < 0.5 => "below at 0".to_string(),
            None => "none in range".to_string(),
        });
        table.row_owned(row);
    }
    table
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E18",
        "Fault-injection breakdown thresholds: how much channel abuse each algorithm survives",
    );
    let grids = Grids::for_scale(scale);

    let algos = vec![
        sweep_algorithm("this paper (pipeline)", "e18full", &grids, || {
            (0..ACTIVE)
                .map(|_| FullAlgorithm::new(Params::practical(), C, N))
                .collect()
        }),
        sweep_algorithm("TwoActive (|A| = 2)", "e18two", &grids, || {
            vec![TwoActive::new(C, N), TwoActive::new(C, N)]
        }),
        sweep_algorithm("CD tournament", "e18cdt", &grids, || {
            (0..ACTIVE).map(|_| CdTournament::new()).collect()
        }),
        sweep_algorithm("decay (no-CD baseline)", "e18dec", &grids, || {
            (0..ACTIVE).map(|_| Decay::new(N)).collect()
        }),
    ];

    report.section(
        format!(
            "Noisy collision detection: success (median rounds) by symmetric flip probability \
             (C = {C}, |A| = {ACTIVE}, budget {BUDGET} rounds, {} trials)",
            grids.trials
        ),
        fault_table(
            &algos,
            &grids.noise_ps,
            |p| format!("p = {p}"),
            |a| &a.noise,
        ),
    );
    report.section(
        "Lossy channel: success (median rounds) by per-channel erasure probability".to_string(),
        fault_table(&algos, &grids.loss_ps, |p| format!("p = {p}"), |a| &a.loss),
    );
    report.section(
        format!(
            "Crash-stop: success (median rounds) by fraction of nodes crashed in the first \
             {CRASH_WINDOW} rounds"
        ),
        fault_table(
            &algos,
            &grids.crash_fracs,
            |f| format!("{:.0}% crash", 100.0 * f),
            |a| &a.crash,
        ),
    );
    #[allow(clippy::cast_precision_loss)]
    let jam_levels: Vec<f64> = grids.jam_budgets.iter().map(|&b| b as f64).collect();
    report.section(
        "Reactive jamming: success (median rounds) by jam budget B — each unit vetoes one \
         would-be-solving round"
            .to_string(),
        fault_table(&algos, &jam_levels, |b| format!("B = {b:.0}"), |a| &a.jam),
    );

    // Where the surviving pipeline runs spend their rounds as CD noise
    // rises: the solver's per-phase telemetry spine, averaged over the
    // solved trials of each noise level.
    let mut profile = Table::new(&[
        "noise p",
        "solved",
        "reduce",
        "id-reduction",
        "leaf-election",
        "solver total",
    ]);
    for (i, &p) in grids.noise_ps.iter().enumerate() {
        let (success, spines) =
            pipeline_phase_profile(p, grids.trials, seed_base("e18prof", 5, i as u64));
        let total: u64 = spines.iter().flatten().map(|r| r.rounds).sum();
        profile.row_owned(vec![
            format!("{p}"),
            format!("{:.0}%", 100.0 * success),
            format!("{:.1}", mean_phase_rounds(&spines, "reduce")),
            format!("{:.1}", mean_phase_rounds(&spines, "id-reduction")),
            format!("{:.1}", mean_phase_rounds(&spines, "leaf-election")),
            format!("{:.1}", total as f64 / spines.len().max(1) as f64),
        ]);
    }
    report.section(
        "Pipeline phase profile under CD noise: mean solver rounds per phase (solved trials only)"
            .to_string(),
        profile,
    );

    report.note(
        "Feedback faults (noise, loss) hit the paper's pipeline hardest: its renaming and \
         search phases act on per-round CD feedback, so a single flipped observation can \
         derail a whole phase, while decay — which barely listens — degrades last. The \
         breakdown column interpolates the fault level at which the success rate crosses 50%."
            .to_string(),
    );
    report.note(
        "Crash-stop faults are comparatively benign before the solve: crashed contenders only \
         lower contention, and the engine's validity rail guarantees a crashed node is never \
         the elected transmitter. Reactive jamming shifts the solve round by at least the \
         budget B; protocols that misread the jam-round collisions can lose more than B rounds."
            .to_string(),
    );
    report.note(
        "The phase-profile table reads the solver's telemetry spine (the same API the \
         sessions and E9-E11 use): as noise rises, surviving runs lean on lucky early \
         solves — the mix shifts toward Reduce because runs that reach the \
         feedback-hungry renaming and search phases are exactly the ones noise kills."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_column_solves() {
        // p = 0 noise over strong CD must behave exactly like the clean
        // engine: the paper's pipeline solves every trial.
        let cell = run_cell(
            6,
            seed_base("e18t", 0, 0),
            || Layered::new(NoisyCd::symmetric(0.0), CdMode::Strong),
            &|| {
                (0..ACTIVE)
                    .map(|_| FullAlgorithm::new(Params::practical(), C, N))
                    .collect::<Vec<_>>()
            },
        );
        assert_eq!(cell.rounds.len(), cell.trials);
    }

    #[test]
    fn total_loss_kills_everything() {
        let cell = run_cell(
            4,
            seed_base("e18t", 1, 0),
            || Layered::new(LossyChannel::new(1.0), CdMode::Strong),
            &|| vec![TwoActive::new(C, N), TwoActive::new(C, N)],
        );
        assert_eq!(cell.rounds.len(), 0);
        assert_eq!(cell.render(), "dead");
    }

    #[test]
    fn jam_budget_inflates_rounds() {
        let make = || (0..32).map(|_| CdTournament::new()).collect::<Vec<_>>();
        let clean = run_cell(
            6,
            seed_base("e18t", 2, 0),
            || JamBudget::new(CdMode::Strong, 0),
            &make,
        );
        let jammed = run_cell(
            6,
            seed_base("e18t", 2, 0),
            || JamBudget::new(CdMode::Strong, 16),
            &make,
        );
        let clean_med = clean.median().expect("clean runs solve");
        if let Some(jam_med) = jammed.median() {
            // 16 would-be-solving rounds are vetoed before one can land, so
            // any solved jammed run needs at least 17 lone-transmission
            // rounds — strictly more than the clean run's handful.
            assert!(
                jam_med >= 17,
                "jam budget 16 must delay the solve past 17 rounds \
                 (clean {clean_med}, jammed {jam_med})"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 5);
        for section in &r.sections[..4] {
            assert_eq!(section.table.len(), 4, "{}", section.caption);
        }
        assert!(!r.notes.is_empty());
    }

    #[test]
    fn clean_phase_profile_is_pipeline_shaped() {
        let (success, spines) = pipeline_phase_profile(0.0, 5, seed_base("e18t", 5, 0));
        assert!((success - 1.0).abs() < f64::EPSILON, "p = 0 always solves");
        assert_eq!(spines.len(), 5);
        for spine in &spines {
            assert_eq!(spine.first().map(|r| r.name), Some("reduce"));
        }
    }
}
