//! **E14** (extension) — the §6 expected-time discussion: with `≈ lg n`
//! channels, contention resolution drops to **O(1) expected** rounds
//! (`contention::extensions::ExpectedConstant`), at the cost of a heavier
//! tail than the w.h.p.-optimal pipeline. This experiment charts both the
//! flattening of the mean as `C` grows and the expected-vs-tail trade-off.

use contention::baselines::{CdTournament, Willard};
use contention::extensions::ExpectedConstant;
use contention::{FullAlgorithm, Params};
use contention_analysis::Summary;
use mac_sim::campaign::SeedStream;
use mac_sim::{Engine, SimConfig};

use super::seed_base;
use crate::{ExperimentReport, RunCtx, Samples};
use mac_sim::trials::run_trials;

/// One expected-time run's rounds-to-solve.
fn expected_one(c: u32, n: u64, active: usize, seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
    for _ in 0..active {
        exec.add_node(ExpectedConstant::new(c, n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

#[cfg(test)]
fn expected_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| expected_one(c, n, active, seed.wrapping_add(i)))
        .collect()
}

/// One pipeline run's rounds-to-solve.
fn full_one(c: u32, n: u64, active: usize, seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
    for _ in 0..active {
        exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

fn willard_rounds(n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    run_trials(trials, seed, |s| {
        let mut exec = Engine::new(SimConfig::new(1).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(Willard::new(n));
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_to_solve().expect("solved"))
    .collect()
}

/// One adaptive CD-tournament run's rounds-to-solve.
fn tournament_one(c: u32, active: usize, seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
    for _ in 0..active {
        exec.add_node(CdTournament::new());
    }
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_to_solve()
        .expect("solved")
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E14",
        "Expected-O(1) with ~lg n channels (§6 discussion, implemented)",
    );
    let n = 1u64 << 16; // lg n = 16
    let active = 1024usize;
    let trials = scale.trials();

    // Mean vs C: the expected-time algorithm flattens once C >= lg n. The
    // single-channel expected-time classic (Willard, the paper's ref [5])
    // anchors the comparison — a deterministic batch shared by every row.
    let willard = Summary::from_u64(&willard_rounds(n, active, trials, seed_base("e14w", 0, n)));
    let caption = format!("Mean rounds, n = 2^16, |A| = {active}");
    let mut sweep = ctx.sweep::<(Samples, Samples, Samples)>(
        &caption,
        &[
            "C",
            "expected-O(1) mean",
            "pipeline (Thm 4) mean",
            "CD tournament mean",
            "Willard (1ch, ref [5]) mean",
        ],
    );
    for &ce in &scale.thin(&[1u32, 2, 3, 4, 5, 8]) {
        let c = 1u32 << ce;
        let xb = seed_base("e14x", u64::from(c), n);
        let fb = seed_base("e14f", u64::from(c), n);
        let tb = seed_base("e14t", u64::from(c), n);
        let willard_mean = willard.mean;
        sweep.row(
            trials,
            SeedStream::Offset(0),
            <(Samples, Samples, Samples)>::default,
            move |i, acc| {
                acc.0.push(expected_one(c, n, active, xb.wrapping_add(i)));
                acc.1.push(full_one(c, n, active, fb.wrapping_add(i)));
                acc.2.push(tournament_one(c, active, tb.wrapping_add(i)));
            },
            move |(xc, full, tour)| {
                vec![
                    c.to_string(),
                    format!("{:.1}", xc.0.finish().mean),
                    format!("{:.1}", full.0.finish().mean),
                    format!("{:.1}", tour.0.finish().mean),
                    format!("{willard_mean:.1}"),
                ]
            },
        );
    }
    report.section(caption, sweep.run());

    // Density independence at C = lg n + 2.
    let c = 18u32;
    let caption_dens = format!("Density independence at C = {c}");
    let mut dens =
        ctx.sweep::<Samples>(&caption_dens, &["|A|", "expected-O(1) mean", "p95", "max"]);
    for &a in &[1usize, 16, 256, 4096, 16384] {
        dens.row(
            trials,
            SeedStream::Offset(seed_base("e14d", a as u64, n)),
            Samples::default,
            move |seed, acc| {
                acc.push(expected_one(c, n, a, seed));
            },
            move |acc| {
                let xc = acc.0.finish();
                vec![
                    a.to_string(),
                    format!("{:.1}", xc.mean),
                    format!("{:.1}", xc.p95),
                    format!("{:.0}", xc.max),
                ]
            },
        );
    }
    report.section(caption_dens, dens.run());
    report.note(
        "Means flatten to a small constant once C approaches lg n, independently of \
         |A| — the §6 observation that expected-time solutions leave 'only a small \
         band of parameters' where collision detection can help. The max column \
         shows the price: a fatter tail than the w.h.p. pipeline."
            .to_string(),
    );
    report.note(
        "Willard's classic (single channel, ref [5]) already achieves expected \
         O(lg lg n) ≈ 5 rounds here — the bar the multi-channel variant only \
         matches, not beats, at this n. That is precisely §6's closing point: \
         expected-time solutions are already so fast that extra channels (and \
         even collision detection itself) have 'only a small band of parameters' \
         left to improve — the paper's contribution lives in the w.h.p. regime."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn expected_time_flattens_with_channels() {
        let n = 1u64 << 16;
        let mean = |c: u32| {
            let v = expected_rounds(c, n, 512, 15, 3);
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        let narrow = mean(2);
        let wide = mean(32);
        assert!(wide < narrow, "C=32 ({wide}) must beat C=2 ({narrow})");
        assert!(wide <= 16.0, "expected-constant regime: got {wide}");
    }

    #[test]
    fn mean_is_density_independent_at_log_n_channels() {
        let n = 1u64 << 16;
        let mean = |a: usize| {
            let v = expected_rounds(18, n, a, 15, 5);
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        let sparse = mean(2);
        let dense = mean(8192);
        assert!(
            (sparse - dense).abs() <= 10.0,
            "means should be density-independent: {sparse} vs {dense}"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 2);
    }
}
