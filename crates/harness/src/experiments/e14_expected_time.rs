//! **E14** (extension) — the §6 expected-time discussion: with `≈ lg n`
//! channels, contention resolution drops to **O(1) expected** rounds
//! (`contention::extensions::ExpectedConstant`), at the cost of a heavier
//! tail than the w.h.p.-optimal pipeline. This experiment charts both the
//! flattening of the mean as `C` grows and the expected-vs-tail trade-off.

use contention::baselines::{CdTournament, Willard};
use contention::extensions::ExpectedConstant;
use contention::{FullAlgorithm, Params};
use contention_analysis::{Summary, Table};
use mac_sim::{Engine, SimConfig};

use super::seed_base;
use crate::{ExperimentReport, Scale};
use mac_sim::trials::run_trials;

fn expected_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    run_trials(trials, seed, |s| {
        let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(ExpectedConstant::new(c, n));
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_to_solve().expect("solved"))
    .collect()
}

fn full_rounds(c: u32, n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    run_trials(trials, seed, |s| {
        let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(FullAlgorithm::new(Params::practical(), c, n));
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_to_solve().expect("solved"))
    .collect()
}

fn willard_rounds(n: u64, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    run_trials(trials, seed, |s| {
        let mut exec = Engine::new(SimConfig::new(1).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(Willard::new(n));
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_to_solve().expect("solved"))
    .collect()
}

fn tournament_rounds(c: u32, active: usize, trials: usize, seed: u64) -> Vec<u64> {
    run_trials(trials, seed, |s| {
        let mut exec = Engine::new(SimConfig::new(c).seed(s).max_rounds(1_000_000));
        for _ in 0..active {
            exec.add_node(CdTournament::new());
        }
        exec
    })
    .iter()
    .map(|r| r.rounds_to_solve().expect("solved"))
    .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run(scale: Scale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E14",
        "Expected-O(1) with ~lg n channels (§6 discussion, implemented)",
    );
    let n = 1u64 << 16; // lg n = 16
    let active = 1024usize;
    let trials = scale.trials();

    // Mean vs C: the expected-time algorithm flattens once C >= lg n. The
    // single-channel expected-time classic (Willard, the paper's ref [5])
    // anchors the comparison: multi-channel expected-time must at least
    // match its O(lg lg n).
    let willard = Summary::from_u64(&willard_rounds(n, active, trials, seed_base("e14w", 0, n)));
    let mut table = Table::new(&[
        "C",
        "expected-O(1) mean",
        "pipeline (Thm 4) mean",
        "CD tournament mean",
        "Willard (1ch, ref [5]) mean",
    ]);
    for &ce in &scale.thin(&[1u32, 2, 3, 4, 5, 8]) {
        let c = 1u32 << ce;
        let xc = Summary::from_u64(&expected_rounds(
            c,
            n,
            active,
            trials,
            seed_base("e14x", u64::from(c), n),
        ));
        let full = Summary::from_u64(&full_rounds(
            c,
            n,
            active,
            trials,
            seed_base("e14f", u64::from(c), n),
        ));
        let tour = Summary::from_u64(&tournament_rounds(
            c,
            active,
            trials,
            seed_base("e14t", u64::from(c), n),
        ));
        table.row_owned(vec![
            c.to_string(),
            format!("{:.1}", xc.mean),
            format!("{:.1}", full.mean),
            format!("{:.1}", tour.mean),
            format!("{:.1}", willard.mean),
        ]);
    }
    report.section(format!("Mean rounds, n = 2^16, |A| = {active}"), table);

    // Density independence at C = lg n + 2.
    let c = 18u32;
    let mut dens = Table::new(&["|A|", "expected-O(1) mean", "p95", "max"]);
    for &a in &[1usize, 16, 256, 4096, 16384] {
        let xc = Summary::from_u64(&expected_rounds(
            c,
            n,
            a,
            trials,
            seed_base("e14d", a as u64, n),
        ));
        dens.row_owned(vec![
            a.to_string(),
            format!("{:.1}", xc.mean),
            format!("{:.1}", xc.p95),
            format!("{:.0}", xc.max),
        ]);
    }
    report.section(format!("Density independence at C = {c}"), dens);
    report.note(
        "Means flatten to a small constant once C approaches lg n, independently of \
         |A| — the §6 observation that expected-time solutions leave 'only a small \
         band of parameters' where collision detection can help. The max column \
         shows the price: a fatter tail than the w.h.p. pipeline."
            .to_string(),
    );
    report.note(
        "Willard's classic (single channel, ref [5]) already achieves expected \
         O(lg lg n) ≈ 5 rounds here — the bar the multi-channel variant only \
         matches, not beats, at this n. That is precisely §6's closing point: \
         expected-time solutions are already so fast that extra channels (and \
         even collision detection itself) have 'only a small band of parameters' \
         left to improve — the paper's contribution lives in the w.h.p. regime."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_time_flattens_with_channels() {
        let n = 1u64 << 16;
        let mean = |c: u32| {
            let v = expected_rounds(c, n, 512, 15, 3);
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        let narrow = mean(2);
        let wide = mean(32);
        assert!(wide < narrow, "C=32 ({wide}) must beat C=2 ({narrow})");
        assert!(wide <= 16.0, "expected-constant regime: got {wide}");
    }

    #[test]
    fn mean_is_density_independent_at_log_n_channels() {
        let n = 1u64 << 16;
        let mean = |a: usize| {
            let v = expected_rounds(18, n, a, 15, 5);
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        let sparse = mean(2);
        let dense = mean(8192);
        assert!(
            (sparse - dense).abs() <= 10.0,
            "means should be density-independent: {sparse} vs {dense}"
        );
    }

    #[test]
    fn report_renders() {
        let r = run(Scale::Quick);
        assert_eq!(r.sections.len(), 2);
    }
}
