//! **E1** — Theorem 1, the `n` axis: `TwoActive` solves the two-node case
//! in `O(log n / log C + log log n)` rounds *with high probability in `n`*.
//!
//! An honest empirical rendering has to respect what kind of claim that is:
//! the algorithm itself never reads `n` (Fig. 1 loops "until alone"), so its
//! round *distribution* is independent of `n` — `n` enters only through the
//! confidence target `1 − 1/n`. The measurable content of Theorem 1 is
//! therefore:
//!
//! 1. the completion-time distribution is `(geometric rename) +
//!    (⌈lg lg C⌉ search) + 1`, with the rename tail decaying as `C^{-t}`
//!    (experiment E3 measures that tail directly); and
//! 2. the concrete w.h.p. budget `2·log_C n + (⌈lg lg C⌉+1) + 1` is
//!    essentially never exceeded — the exceedance probability is `≤ n^{-2}`,
//!    far below measurement resolution.
//!
//! We report both the *solve* round (the problem definition: first lone
//! transmission on channel 1, which can happen "by luck" during renaming at
//! small `C`) and the *completion* round (leader declared — the quantity
//! the theorem's mechanics bound).

use contention::TwoActive;
use contention_analysis::fit_linear;
use mac_sim::campaign::{Collect, SeedStream};
use mac_sim::{Engine, SimConfig, StopWhen};

use super::{lg, seed_base};
use crate::{cell_f64, ExperimentReport, RunCtx, Samples};

/// Rounds until solved (first lone primary-channel transmission) for one
/// seed.
pub(crate) fn solve_rounds(c: u32, n: u64, seed: u64) -> u64 {
    let mut exec = Engine::new(SimConfig::new(c).seed(seed).max_rounds(1_000_000));
    exec.add_node(TwoActive::new(c, n));
    exec.add_node(TwoActive::new(c, n));
    let report = exec
        .run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"));
    report.rounds_to_solve().expect("TwoActive always solves")
}

/// Rounds until the algorithm *completes* (winner declared, loser retired)
/// for one seed.
pub(crate) fn completion_rounds(c: u32, n: u64, seed: u64) -> u64 {
    let cfg = SimConfig::new(c)
        .seed(seed)
        .stop_when(StopWhen::AllTerminated)
        .max_rounds(1_000_000);
    let mut exec = Engine::new(cfg);
    exec.add_node(TwoActive::new(c, n));
    exec.add_node(TwoActive::new(c, n));
    exec.run()
        .unwrap_or_else(|e| panic!("trial with seed {seed} failed: {e}"))
        .rounds_executed
}

/// Rounds until solved, over `trials` consecutive seeds from `seed`.
/// Test/cross-experiment helper; the report path streams instead.
#[cfg(test)]
pub(crate) fn measure(c: u32, n: u64, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| solve_rounds(c, n, seed.wrapping_add(i)))
        .collect()
}

/// Completion rounds over `trials` consecutive seeds from `seed`.
#[cfg(test)]
pub(crate) fn measure_completion(c: u32, n: u64, trials: usize, seed: u64) -> Vec<u64> {
    (0..trials as u64)
        .map(|i| completion_rounds(c, n, seed.wrapping_add(i)))
        .collect()
}

/// The concrete w.h.p. round budget implied by Theorem 1's mechanics:
/// `2·log_C n` rename rounds (failure probability `n^{-2}`), the
/// deterministic `⌈lg lg C⌉ + 1` search rounds, and the declaration round.
#[must_use]
pub fn whp_budget(n: u64, c: u32) -> f64 {
    let c = f64::from(c.max(2));
    let search = (c.log2().log2().ceil() + 1.0).max(1.0);
    2.0 * lg(n as f64) / lg(c) + search + 1.0
}

/// Runs the experiment.
#[must_use]
pub fn run(ctx: &RunCtx) -> ExperimentReport {
    let scale = ctx.scale;
    let mut report = ExperimentReport::new(
        "E1",
        "TwoActive vs n (Theorem 1: O(log n/log C + log log n) w.h.p.)",
    );
    let n_exps: Vec<u32> = scale.thin(&[8, 12, 16, 20]);
    let cs = [4u32, 64, 1024];

    // One campaign cell per (C, n) row; both the solve and the completion
    // measurement stream into the row's aggregate, with their historical
    // seed bases recovered from the trial index.
    let mut sweep = ctx.sweep::<(Samples, Samples, u64)>(
        "Rounds for |A| = 2 (solve = problem definition; complete = leader declared)",
        &[
            "C",
            "n",
            "solved mean",
            "completed mean",
            "completed max",
            "whp budget",
            "trials > budget",
        ],
    );
    for &c in &cs {
        for &ne in &n_exps {
            let n = 1u64 << ne;
            let budget = whp_budget(n, c);
            let solve_base = seed_base("e1s", u64::from(c), n);
            let complete_base = seed_base("e1c", u64::from(c), n);
            sweep.row(
                scale.trials(),
                SeedStream::Offset(0),
                <(Samples, Samples, u64)>::default,
                move |i, acc| {
                    acc.0.push(solve_rounds(c, n, solve_base.wrapping_add(i)));
                    let completed = completion_rounds(c, n, complete_base.wrapping_add(i));
                    acc.1.push(completed);
                    #[allow(clippy::cast_precision_loss)]
                    if completed as f64 > budget {
                        acc.2 += 1;
                    }
                },
                move |(solved, completed, over)| {
                    let s = solved.0.finish();
                    let cm = completed.0.finish();
                    vec![
                        c.to_string(),
                        format!("2^{ne}"),
                        format!("{:.2}", s.mean),
                        format!("{:.2}", cm.mean),
                        format!("{:.0}", cm.max),
                        format!("{budget:.1}"),
                        over.to_string(),
                    ]
                },
            );
        }
    }
    report.section(
        "Rounds for |A| = 2 (solve = problem definition; complete = leader declared)",
        sweep.run(),
    );

    // The C-scaling of the w.h.p. term, isolated: the 99.9% quantile of the
    // renaming race (step 1) must scale as lg(1000)/lg C — exactly Theorem
    // 1's first term with the confidence target 1/1000 in place of 1/n.
    // Measured by direct Monte-Carlo of the race for tight tail resolution.
    let ces = [1u32, 2, 4, 6, 8, 10, 12];
    let mc_trials = scale.mc_trials().max(20_000);
    let mut tail_sweep = ctx.sweep::<Collect<u64>>(
        "Renaming-race 99.9% quantile vs 1/lg C",
        &["C", "rename q99.9", "theory lg(1000)/lg C"],
    );
    for &ce in &ces {
        let c = 1u32 << ce;
        tail_sweep.row(
            1,
            SeedStream::Offset(seed_base("e1q", u64::from(c), 0)),
            Collect::default,
            move |seed, acc| {
                use super::e03_rename_geometric::race_rounds;
                use rand::rngs::SmallRng;
                use rand::SeedableRng;
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut samples: Vec<u32> =
                    (0..mc_trials).map(|_| race_rounds(c, &mut rng)).collect();
                samples.sort_unstable();
                acc.0.push(u64::from(samples[samples.len() * 999 / 1000]));
            },
            move |acc| {
                let q = acc.0[0];
                let theory = 1000f64.log2() / f64::from(ce);
                vec![c.to_string(), q.to_string(), format!("{theory:.1}")]
            },
        );
    }
    let tail_table = tail_sweep.run();
    // The fit is derived from the *rendered* quantile column so a resumed
    // run (which replays rows as strings) reports the identical note.
    let xs: Vec<f64> = ces.iter().map(|&ce| 1.0 / f64::from(ce)).collect();
    let ys: Vec<f64> = tail_table
        .rows()
        .iter()
        .map(|row| cell_f64(&row[1]))
        .collect();
    let fit = fit_linear(&xs, &ys);
    report.section("Renaming-race 99.9% quantile vs 1/lg C", tail_table);
    report.note(format!(
        "The rename tail quantile fits {:.1}·(1/lg C) + {:.1} with R² = {:.2}, against \
         the exact prediction lg(1000)/lg C ≈ 10/lg C — Theorem 1's log n/log C term \
         with the measurable confidence target 10^-3 standing in for 1/n.",
        fit.coefficients[0], fit.coefficients[1], fit.r_squared
    ));
    report.note(
        "No trial exceeded the w.h.p. budget anywhere on the grid (expected: the \
         budget's failure probability is n^-2). The completion mean is flat in n \
         because Fig. 1's algorithm never reads n — n only sets the confidence \
         target. The geometric tail driving the lg n/lg C term is measured in E3."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn completion_never_exceeds_whp_budget() {
        for (c, ne) in [(4u32, 10u32), (64, 14), (1024, 18), (2, 8)] {
            let n = 1u64 << ne;
            let completed = measure_completion(c, n, 20, 7);
            let budget = whp_budget(n, c);
            for r in &completed {
                assert!(
                    (*r as f64) <= budget,
                    "C={c} n=2^{ne}: completion {r} > budget {budget}"
                );
            }
        }
    }

    #[test]
    fn solve_is_never_later_than_completion_distribution() {
        // Solve can only be earlier (lucky lone transmissions during rename).
        let (c, n) = (8u32, 1u64 << 12);
        let solved = measure(c, n, 20, 3);
        let completed = measure_completion(c, n, 20, 3);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(mean(&solved) <= mean(&completed) + 1e-9);
    }

    #[test]
    fn completion_mean_is_n_free() {
        // The distribution must not depend on n (only the budget does).
        let c = 64u32;
        let small = measure_completion(c, 1 << 8, 40, 5);
        let large = measure_completion(c, 1 << 20, 40, 5);
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            (mean(&small) - mean(&large)).abs() < 2.0,
            "completion should be n-free: {} vs {}",
            mean(&small),
            mean(&large)
        );
    }

    #[test]
    fn report_renders_with_all_sections() {
        let r = run(&RunCtx::new(Scale::Quick));
        assert_eq!(r.sections.len(), 2);
        assert!(!r.sections[0].table.is_empty());
        assert!(r.to_markdown().contains("E1"));
    }
}
