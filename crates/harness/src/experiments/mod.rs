//! The experiment suite: one module per claim reproduced. See DESIGN.md §3
//! for the claim ↔ experiment index and EXPERIMENTS.md for recorded output.

pub mod e01_two_active_vs_n;
pub mod e02_two_active_vs_c;
pub mod e03_rename_geometric;
pub mod e04_split_check;
pub mod e05_reduce;
pub mod e06_id_reduction;
pub mod e07_balls_in_bins;
pub mod e08_leaf_election;
pub mod e09_full_vs_baselines;
pub mod e10_lower_bound_ratio;
pub mod e11_two_vs_general;
pub mod e12_wakeup;
pub mod e13_cohort_ablation;
pub mod e14_expected_time;
pub mod e15_energy;
pub mod e16_cd_modes;
pub mod e17_serve_all;
pub mod e18_fault_thresholds;
pub mod e19_supervised_recovery;
pub mod e20_sparse_scale;
pub mod e21_traffic_load;

use crate::{ExperimentReport, RunCtx};

/// Base-2 logarithm, as the paper's `lg`.
#[must_use]
pub fn lg(x: f64) -> f64 {
    x.log2()
}

/// The tight two-node / lower-bound curve: `lg n / lg C + max(lg lg n, 1)`.
#[must_use]
pub fn theory_two_active(n: u64, c: u32) -> f64 {
    lg(n as f64) / lg(f64::from(c.max(2))) + lg(lg(n as f64)).max(1.0)
}

/// The general-algorithm curve of Theorem 4:
/// `lg n / lg C + lg lg n · max(lg lg lg n, 1)`.
#[must_use]
pub fn theory_general(n: u64, c: u32) -> f64 {
    let lglg = lg(lg(n as f64)).max(1.0);
    lg(n as f64) / lg(f64::from(c.max(2))) + lglg * lg(lglg).max(1.0)
}

/// A deterministic per-configuration seed base so that sweep points use
/// decorrelated seed ranges.
#[must_use]
pub fn seed_base(tag: &str, a: u64, b: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in tag.bytes().chain(a.to_le_bytes()).chain(b.to_le_bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs every experiment in the given context, in order.
///
/// # Panics
///
/// Panics with [`crate::SweepCancelled`] if the context's cancellation
/// token fires mid-run, and on record-store I/O errors.
#[must_use]
pub fn run_all(ctx: &RunCtx) -> Vec<ExperimentReport> {
    list()
        .iter()
        .map(|(id, _)| run_one(id, ctx).expect("registry ids resolve"))
        .collect()
}

/// Runs one experiment by id, wrapped in the context's record-store
/// begin/finish protocol: resumable rows are loaded before the run and the
/// final record file is written after. This is the entry point `repro`
/// uses; calling an experiment's `run` directly skips checkpointing.
///
/// # Panics
///
/// Panics with [`crate::SweepCancelled`] if the context's cancellation
/// token fires mid-run, and on record-store I/O errors.
#[must_use]
pub fn run_one(id: &str, ctx: &RunCtx) -> Option<ExperimentReport> {
    let runner = by_id(id)?;
    let canonical = canonical_id(id)?;
    ctx.begin_experiment(canonical);
    let report = runner(ctx);
    ctx.finish_experiment(&report);
    Some(report)
}

/// Normalizes any accepted id spelling (`"E07"`, `"e7"`) to the registry
/// form (`"e7"`), which doubles as the record-file stem.
#[must_use]
pub fn canonical_id(id: &str) -> Option<&'static str> {
    let norm = id.trim().to_lowercase();
    let norm = norm.strip_prefix('e').unwrap_or(&norm);
    let number: usize = norm.trim_start_matches('0').parse().ok()?;
    list().get(number.checked_sub(1)?).map(|(id, _)| *id)
}

/// All experiment ids with their one-line titles, in order.
#[must_use]
pub fn list() -> Vec<(&'static str, &'static str)> {
    vec![
        ("e1", "TwoActive vs n (Theorem 1)"),
        ("e2", "TwoActive vs C (Theorem 1 crossover)"),
        ("e3", "Renaming race tail (Lemma 2)"),
        ("e4", "SplitCheck probe count (Lemma 3)"),
        ("e5", "Reduce survivor counts (Theorem 5)"),
        ("e6", "IdReduction (Theorem 6, Lemmas 7-10)"),
        ("e7", "Balls-in-bins (Lemma 9)"),
        ("e8", "LeafElection (Theorem 17, Lemma 16)"),
        ("e9", "Full algorithm vs baselines (Theorem 4)"),
        ("e10", "Lower-bound ratio (optimality)"),
        ("e11", "TwoActive vs general on |A| = 2"),
        ("e12", "Wake-up transform (section 3)"),
        ("e13", "Coalescing-cohorts ablation"),
        ("e14", "Expected-O(1) with ~lg n channels (section 6)"),
        ("e15", "Transmission energy"),
        ("e16", "Collision-detection model matrix"),
        ("e17", "Serving all contenders (conflict resolution)"),
        ("e18", "Fault-injection breakdown thresholds"),
        ("e19", "Supervised recovery beyond the breakdown thresholds"),
        (
            "e20",
            "Sparse-scale curve: namespace 2^12..2^22 at fixed |A|",
        ),
        (
            "e21",
            "Dynamic-arrivals traffic: throughput and latency vs offered load",
        ),
    ]
}

/// Looks up a single experiment runner by id (`"e1"`, `"E07"`, …).
#[must_use]
pub fn by_id(id: &str) -> Option<fn(&RunCtx) -> ExperimentReport> {
    let norm = id.trim().to_lowercase();
    let norm = norm.strip_prefix('e').unwrap_or(&norm);
    match norm.trim_start_matches('0') {
        "1" => Some(e01_two_active_vs_n::run),
        "2" => Some(e02_two_active_vs_c::run),
        "3" => Some(e03_rename_geometric::run),
        "4" => Some(e04_split_check::run),
        "5" => Some(e05_reduce::run),
        "6" => Some(e06_id_reduction::run),
        "7" => Some(e07_balls_in_bins::run),
        "8" => Some(e08_leaf_election::run),
        "9" => Some(e09_full_vs_baselines::run),
        "10" => Some(e10_lower_bound_ratio::run),
        "11" => Some(e11_two_vs_general::run),
        "12" => Some(e12_wakeup::run),
        "13" => Some(e13_cohort_ablation::run),
        "14" => Some(e14_expected_time::run),
        "15" => Some(e15_energy::run),
        "16" => Some(e16_cd_modes::run),
        "17" => Some(e17_serve_all::run),
        "18" => Some(e18_fault_thresholds::run),
        "19" => Some(e19_supervised_recovery::run),
        "20" => Some(e20_sparse_scale::run),
        "21" => Some(e21_traffic_load::run),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theory_curves_are_monotone_sensibly() {
        assert!(theory_two_active(1 << 20, 4) > theory_two_active(1 << 10, 4));
        assert!(theory_two_active(1 << 20, 1024) < theory_two_active(1 << 20, 4));
        assert!(theory_general(1 << 20, 4) >= theory_two_active(1 << 20, 4));
    }

    #[test]
    fn seed_bases_differ() {
        assert_ne!(seed_base("a", 1, 2), seed_base("a", 2, 1));
        assert_ne!(seed_base("a", 1, 2), seed_base("b", 1, 2));
        assert_eq!(seed_base("a", 1, 2), seed_base("a", 1, 2));
    }

    #[test]
    fn list_is_complete_and_resolvable() {
        let listed = list();
        assert_eq!(listed.len(), 21);
        for (id, title) in listed {
            assert!(by_id(id).is_some(), "{id} listed but unresolvable");
            assert!(!title.is_empty());
        }
    }

    #[test]
    fn canonical_ids_normalize_to_registry_form() {
        assert_eq!(canonical_id("E07"), Some("e7"));
        assert_eq!(canonical_id("e7"), Some("e7"));
        assert_eq!(canonical_id(" e18 "), Some("e18"));
        assert_eq!(canonical_id("e19"), Some("e19"));
        assert_eq!(canonical_id("e20"), Some("e20"));
        assert_eq!(canonical_id("e21"), Some("e21"));
        assert_eq!(canonical_id("e22"), None);
        assert_eq!(canonical_id("banana"), None);
    }

    #[test]
    fn by_id_resolves_all_twenty_one() {
        for i in 1..=21 {
            assert!(by_id(&format!("e{i}")).is_some(), "e{i} missing");
            assert!(by_id(&format!("E{i:02}")).is_some(), "E{i:02} missing");
        }
        assert!(by_id("e22").is_none());
        assert!(by_id("banana").is_none());
    }
}
