//! Experiment sizing.

/// How big an experiment run should be.
///
/// `Quick` keeps every experiment under a few seconds (used by the test
/// suite and `repro --quick`); `Full` is the publication-grade sweep the
/// numbers in `EXPERIMENTS.md` come from — still laptop-scale, minutes not
/// hours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Reduced trial counts and parameter grids.
    Quick,
    /// The full sweep.
    #[default]
    Full,
}

impl Scale {
    /// Number of trials per configuration point.
    #[must_use]
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 15,
            Scale::Full => 100,
        }
    }

    /// Trials for the cheap Monte-Carlo experiments (balls-in-bins).
    #[must_use]
    pub fn mc_trials(self) -> usize {
        match self {
            Scale::Quick => 5_000,
            Scale::Full => 100_000,
        }
    }

    /// Thins a parameter grid: `Quick` keeps ~half the points (always
    /// retaining the first and last), `Full` keeps all.
    #[must_use]
    pub fn thin<T: Copy>(self, grid: &[T]) -> Vec<T> {
        match self {
            Scale::Full => grid.to_vec(),
            Scale::Quick => {
                if grid.len() <= 2 {
                    return grid.to_vec();
                }
                let mut out: Vec<T> = grid.iter().copied().step_by(2).collect();
                if grid.len().is_multiple_of(2) {
                    // step_by(2) missed the final element; include it so the
                    // endpoints of the sweep are always present.
                    out.push(grid[grid.len() - 1]);
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        assert!(Scale::Quick.trials() < Scale::Full.trials());
        assert!(Scale::Quick.mc_trials() < Scale::Full.mc_trials());
    }

    #[test]
    fn thin_preserves_endpoints() {
        let grid = [1, 2, 3, 4, 5, 6];
        let thinned = Scale::Quick.thin(&grid);
        assert_eq!(thinned.first(), Some(&1));
        assert_eq!(thinned.last(), Some(&6));
        assert!(thinned.len() < grid.len());
        assert_eq!(Scale::Full.thin(&grid), grid.to_vec());
    }

    #[test]
    fn thin_tiny_grids_untouched() {
        assert_eq!(Scale::Quick.thin(&[7]), vec![7]);
        assert_eq!(Scale::Quick.thin(&[7, 9]), vec![7, 9]);
    }
}
