//! Experiment output: captioned tables plus prose notes.

use contention_analysis::Table;
use std::fmt;

/// One captioned table within an experiment report.
#[derive(Debug, Clone)]
pub struct Section {
    /// Human-readable caption.
    pub caption: String,
    /// The data.
    pub table: Table,
}

/// The rendered result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Short id, e.g. `"E1"`.
    pub id: &'static str,
    /// One-line title naming the claim being reproduced.
    pub title: &'static str,
    /// Captioned result tables.
    pub sections: Vec<Section>,
    /// Free-form observations (the paper-vs-measured verdicts).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(id: &'static str, title: &'static str) -> Self {
        ExperimentReport {
            id,
            title,
            sections: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a captioned table.
    pub fn section(&mut self, caption: impl Into<String>, table: Table) {
        self.sections.push(Section {
            caption: caption.into(),
            table,
        });
    }

    /// Adds a prose note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the whole report as markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n", self.id, self.title);
        for section in &self.sections {
            out.push_str(&format!("\n**{}**\n\n{}\n", section.caption, section.table));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for note in &self.notes {
                out.push_str(&format!("- {note}\n"));
            }
        }
        out
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut r = ExperimentReport::new("E0", "smoke");
        let mut t = Table::new(&["x"]);
        t.row(&["1"]);
        r.section("numbers", t);
        r.note("looks fine");
        let md = r.to_markdown();
        assert!(md.contains("## E0 — smoke"));
        assert!(md.contains("**numbers**"));
        assert!(md.contains("- looks fine"));
        assert_eq!(md, r.to_string());
    }
}
