//! Structured JSONL record emission for experiment runs.
//!
//! The markdown tables in `EXPERIMENTS.md` are for humans; this module
//! writes the same results as machine-diffable JSONL so `obsdiff` (and CI)
//! can answer "did E9's Reduce phase get slower than last PR?" without a
//! human re-reading tables.
//!
//! One record file holds, in order:
//!
//! 1. a `kind: "manifest"` line — provenance (experiment, scale, git rev,
//!    crate versions); for trial batches, [`mac_sim::obs::RunManifest`]
//!    carries the full `SimConfig`;
//! 2. `kind: "trial"` lines — one [`mac_sim::obs::RunRecord`] per run,
//!    when the producer records at trial granularity;
//! 3. `kind: "cell"` lines — one per table row of the experiment report,
//!    carrying every column as a typed value.
//!
//! Benches write `kind: "bench"` lines in the same schema (see
//! `BENCH_round_engine.json`). Every line is validated by
//! [`validate_line`], which the `schema_check` test runs over everything
//! the suite emits.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::report::ExperimentReport;
use crate::Scale;
use mac_sim::obs::Json;

pub use mac_sim::obs::SCHEMA_VERSION;

/// The git revision of the working tree, when running inside a checkout
/// with `git` on the PATH. Best-effort: failures degrade to `None`.
#[must_use]
pub fn git_rev() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let rev = String::from_utf8(output.stdout).ok()?;
    let rev = rev.trim();
    if rev.is_empty() {
        None
    } else {
        Some(rev.to_string())
    }
}

/// Parses a table cell into the most specific JSON value: `u64`, then
/// `f64`, then string. Percentages and dimension labels (`"2^10"`) stay
/// strings.
#[must_use]
pub fn cell_value(cell: &str) -> Json {
    if let Ok(v) = cell.parse::<u64>() {
        return Json::UInt(v);
    }
    if let Ok(v) = cell.parse::<f64>() {
        if v.is_finite() {
            return Json::Float(v);
        }
    }
    Json::Str(cell.to_string())
}

/// The manifest line for an experiment-level record file (no single
/// `SimConfig` exists at this granularity — trial-batch producers use
/// [`mac_sim::obs::RunManifest`] instead).
#[must_use]
pub fn experiment_manifest(report: &ExperimentReport, scale: Scale) -> Json {
    Json::obj(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("kind".into(), "manifest".into()),
        ("algorithm".into(), report.id.into()),
        ("title".into(), report.title.into()),
        ("scale".into(), format!("{scale:?}").into()),
        ("git_rev".into(), git_rev().into()),
        (
            "crates".into(),
            Json::Obj(vec![
                (
                    "contention-harness".into(),
                    env!("CARGO_PKG_VERSION").into(),
                ),
                ("mac-sim".into(), mac_sim_version().into()),
            ]),
        ),
    ])
}

fn mac_sim_version() -> &'static str {
    // The workspace pins one version for every member crate.
    env!("CARGO_PKG_VERSION")
}

/// Turns a finished experiment report into JSONL lines: one manifest, then
/// one `cell` record per table row. Row identity is `(experiment, section
/// caption, row index)`; the first column doubles as a human-readable key.
#[must_use]
pub fn experiment_records(report: &ExperimentReport, scale: Scale) -> Vec<String> {
    let mut lines = vec![experiment_manifest(report, scale).render()];
    for section in &report.sections {
        let headers = section.table.headers();
        for (row_idx, row) in section.table.rows().iter().enumerate() {
            let values = Json::Obj(
                headers
                    .iter()
                    .zip(row)
                    .map(|(header, cell)| (header.clone(), cell_value(cell)))
                    .collect(),
            );
            let record = Json::obj(vec![
                ("schema_version".into(), SCHEMA_VERSION.into()),
                ("kind".into(), "cell".into()),
                ("experiment".into(), report.id.into()),
                ("section".into(), section.caption.as_str().into()),
                ("row".into(), row_idx.into()),
                (
                    "key".into(),
                    row.first().map(String::as_str).unwrap_or("").into(),
                ),
                ("values".into(), values),
            ]);
            lines.push(record.render());
        }
    }
    lines
}

/// A `kind: "bench"` record line.
#[must_use]
pub fn bench_record(name: &str, mean_ns: f64, iters: u64) -> Json {
    Json::obj(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("kind".into(), "bench".into()),
        ("name".into(), name.into()),
        ("mean_ns".into(), mean_ns.into()),
        ("iters".into(), iters.into()),
    ])
}

/// Writes JSONL lines to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_jsonl(path: &Path, lines: &[String]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut body = String::new();
    for line in lines {
        let _ = writeln!(body, "{line}");
    }
    fs::write(path, body)
}

/// Loads a JSONL record file, parsing every non-empty line.
///
/// # Errors
///
/// Returns a message naming the offending line on parse failure.
pub fn load_jsonl(path: &Path) -> Result<Vec<Json>, String> {
    let body =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    body.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(idx, line)| {
            Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), idx + 1))
        })
        .collect()
}

/// Validates one JSONL line against the record schema: every record needs
/// `schema_version` and a known `kind`, and each kind has required typed
/// fields. This is the repo's schema validator — no external tool.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_line(line: &str) -> Result<(), String> {
    let value = Json::parse(line)?;
    validate_record(&value)
}

/// [`validate_line`] for an already-parsed record.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_record(value: &Json) -> Result<(), String> {
    let version = value
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing or mistyped 'schema_version'")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing or mistyped 'kind'")?;
    let need_str = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(|_| ())
            .ok_or(format!("{kind} record: missing or mistyped '{key}'"))
    };
    let need_u64 = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .map(|_| ())
            .ok_or(format!("{kind} record: missing or mistyped '{key}'"))
    };
    let need_num = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_f64)
            .map(|_| ())
            .ok_or(format!("{kind} record: missing or mistyped '{key}'"))
    };
    match kind {
        "manifest" => {
            need_str("algorithm")?;
        }
        "trial" => {
            for key in [
                "seed",
                "rounds",
                "transmissions",
                "listens",
                "max_node_transmissions",
                "wall_ns",
            ] {
                need_u64(key)?;
            }
            let spans = value
                .get("spans")
                .and_then(Json::as_arr)
                .ok_or("trial record: missing or mistyped 'spans'")?;
            for span in spans {
                span.get("label")
                    .and_then(Json::as_str)
                    .ok_or("trial span: missing 'label'")?;
                for key in [
                    "start_round",
                    "end_round",
                    "rounds",
                    "transmissions",
                    "listens",
                    "wall_ns",
                ] {
                    span.get(key)
                        .and_then(Json::as_u64)
                        .ok_or(format!("trial span: missing or mistyped '{key}'"))?;
                }
            }
            let channels = value
                .get("channels")
                .and_then(Json::as_arr)
                .ok_or("trial record: missing or mistyped 'channels'")?;
            for tally in channels {
                for key in ["channel", "silences", "messages", "collisions"] {
                    tally
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or(format!("trial channel tally: missing or mistyped '{key}'"))?;
                }
            }
        }
        "cell" => {
            need_str("experiment")?;
            need_str("section")?;
            need_u64("row")?;
            value
                .get("values")
                .and_then(Json::as_obj)
                .ok_or("cell record: missing or mistyped 'values'")?;
        }
        "bench" => {
            need_str("name")?;
            need_num("mean_ns")?;
            need_u64("iters")?;
        }
        other => return Err(format!("unknown record kind '{other}'")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use contention_analysis::Table;

    fn sample_report() -> ExperimentReport {
        let mut report = ExperimentReport::new("E0", "sample");
        let mut table = Table::new(&["n", "rounds", "ratio"]);
        table.row(&["2^10", "123", "1.5"]);
        table.row(&["2^12", "145", "1.6"]);
        report.section("rounds vs n", table);
        report
    }

    #[test]
    fn experiment_records_emit_manifest_then_cells() {
        let lines = experiment_records(&sample_report(), Scale::Quick);
        assert_eq!(lines.len(), 3);
        for line in &lines {
            validate_line(line).unwrap();
        }
        let manifest = Json::parse(&lines[0]).unwrap();
        assert_eq!(
            manifest.get("kind").and_then(Json::as_str),
            Some("manifest")
        );
        assert_eq!(manifest.get("algorithm").and_then(Json::as_str), Some("E0"));
        let cell = Json::parse(&lines[1]).unwrap();
        assert_eq!(cell.get("kind").and_then(Json::as_str), Some("cell"));
        assert_eq!(cell.get("key").and_then(Json::as_str), Some("2^10"));
        let values = cell.get("values").unwrap();
        assert_eq!(values.get("rounds").and_then(Json::as_u64), Some(123));
        assert_eq!(values.get("ratio").and_then(Json::as_f64), Some(1.5));
        assert_eq!(values.get("n").and_then(Json::as_str), Some("2^10"));
    }

    #[test]
    fn validate_rejects_bad_records() {
        assert!(validate_line("{}").is_err());
        assert!(validate_line(r#"{"schema_version":99,"kind":"cell"}"#).is_err());
        assert!(validate_line(r#"{"schema_version":1,"kind":"wat"}"#).is_err());
        assert!(validate_line(r#"{"schema_version":1,"kind":"bench","name":"x"}"#).is_err());
        assert!(validate_line(
            r#"{"schema_version":1,"kind":"bench","name":"x","mean_ns":1.5,"iters":10}"#
        )
        .is_ok());
    }

    #[test]
    fn trial_records_validate() {
        use mac_sim::trials::run_trials_recorded;
        use mac_sim::{Action, ChannelId, Engine, SimConfig};
        use rand::rngs::SmallRng;

        struct Beacon;
        impl mac_sim::Protocol for Beacon {
            type Msg = u8;
            fn act(&mut self, _: &mac_sim::RoundContext, _: &mut SmallRng) -> Action<u8> {
                Action::transmit(ChannelId::PRIMARY, 0)
            }
            fn observe(
                &mut self,
                _: &mac_sim::RoundContext,
                _: mac_sim::Feedback<u8>,
                _: &mut SmallRng,
            ) {
            }
            fn status(&self) -> mac_sim::Status {
                mac_sim::Status::Active
            }
        }

        let pairs = run_trials_recorded(3, 7, |seed| {
            let mut engine = Engine::new(SimConfig::new(2).seed(seed));
            engine.add_node(Beacon);
            engine
        });
        for (_, record) in &pairs {
            validate_line(&record.to_jsonl_line()).unwrap();
        }
    }

    #[test]
    fn jsonl_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("contention-record-test");
        let path = dir.join("e0.jsonl");
        let lines = experiment_records(&sample_report(), Scale::Quick);
        write_jsonl(&path, &lines).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back.len(), lines.len());
        for record in &back {
            validate_record(record).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_value_types() {
        assert_eq!(cell_value("42"), Json::UInt(42));
        assert_eq!(cell_value("1.25"), Json::Float(1.25));
        assert_eq!(cell_value("2^10"), Json::Str("2^10".into()));
        assert_eq!(cell_value(""), Json::Str(String::new()));
    }
}
